#!/usr/bin/env python
"""Cost-based planner vs the fixed strategies on the six paper queries.

For every figure query (Figures 4-9) this runs each fixed reference
strategy and the ``strategy="auto"`` cost-based planner on the same
database, captures the planner's decision (chosen strategy plus the
full costed candidate table), writes a ``BENCH_planner.json`` artifact,
and **fails** (exit 1) if ``auto`` is slower than ``1/--min-ratio``
times the best fixed strategy on any query (default: auto must stay
within 1.25x of the best, i.e. at least 0.8x its speed).

Every strategy is measured through a prepared session query — the API
users actually hit — so ``auto`` benefits from the session's memoized
:class:`~repro.core.optimizer.PlannerDecision` exactly as production
traffic does; the first (unmeasured) execution pays the planning cost.

Usage::

    REPRO_BENCH_SF=0.01 python scripts/bench_planner.py [--out benchmarks]

Environment:
    REPRO_BENCH_SF       TPC-H scale factor (default 0.01)
    REPRO_BENCH_REPEATS  best-of-N wall times (default 3)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro  # noqa: E402
from repro.core.optimizer import choose  # noqa: E402
from repro.core.stats import collect_stats  # noqa: E402
from repro.tpch import query1, query2, query3  # noqa: E402

#: the six figure queries, keyed by artifact stem
PAPER_QUERIES = {
    "fig4_q1": query1("1992-01-01", "1994-06-01"),
    "fig5_q2a": query2("any", 1, 30, 6000, 25),
    "fig6_q2b": query2("all", 1, 30, 6000, 25),
    "fig7_q3a": query3("all", "exists", "a", 1, 30, 6000, 25),
    "fig8_q3b": query3("all", "not exists", "b", 1, 30, 6000, 25),
    "fig9_q3c": query3("any", "exists", "c", 1, 30, 6000, 25),
}

#: fixed reference strategies the planner has to keep up with
FIXED_STRATEGIES = (
    "nested-relational",
    "nested-relational-optimized",
    "nested-relational-vectorized",
)


def best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks",
                        help="directory for the BENCH_planner.json artifact")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="required best-fixed/auto wall-time ratio per "
                             "query (0.8 = auto within 1.25x of the best)")
    parser.add_argument("--sf", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SF", "0.01")))
    parser.add_argument("--repeats", type=int,
                        default=int(os.environ.get("REPRO_BENCH_REPEATS", "3")))
    args = parser.parse_args(argv)

    print(f"generating TPC-H sf={args.sf} ...", flush=True)
    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=args.sf, seed=2005))
    collect_stats(db)  # one-off warm-up, shared by every auto run below

    queries = {}
    worst_ratio = None
    worst_stem = None
    session = repro.connect(db)
    for stem, sql in PAPER_QUERIES.items():
        prepared = session.prepare(sql)
        decision = choose(prepared.query, db)
        fixed = {}
        for name in FIXED_STRATEGIES:
            prepared.execute(strategy=name)  # warm the plan cache
            fixed[name] = best_of(
                lambda n=name: prepared.execute(strategy=n), args.repeats
            )
        prepared.execute()  # warm-up: pays the one-off planning cost
        auto_seconds = best_of(lambda: prepared.execute(), args.repeats)
        best_name = min(fixed, key=fixed.get)
        ratio = fixed[best_name] / auto_seconds if auto_seconds else float("inf")
        if worst_ratio is None or ratio < worst_ratio:
            worst_ratio, worst_stem = ratio, stem
        queries[stem] = {
            "sql": sql.strip(),
            "chosen": decision.chosen,
            "est_rows": round(decision.est_rows, 1),
            "candidates": [
                {
                    "name": c.name,
                    "backend": c.backend,
                    "est_cost": round(c.est_cost, 1),
                    "costed": c.costed,
                    "chosen": c.chosen,
                }
                for c in decision.candidates
            ],
            "fixed_seconds": {k: round(v, 6) for k, v in fixed.items()},
            "auto_seconds": round(auto_seconds, 6),
            "best_fixed": best_name,
            "ratio_best_over_auto": round(ratio, 3),
        }
        print(
            f"  {stem}: auto={decision.chosen} {auto_seconds:.4f}s, "
            f"best fixed={best_name} {fixed[best_name]:.4f}s "
            f"(ratio {ratio:.2f})"
        )

    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_planner.json")
    with open(path, "w") as handle:
        json.dump(
            {
                "bench": "planner",
                "scale_factor": args.sf,
                "repeats": args.repeats,
                "min_ratio": args.min_ratio,
                "fixed_strategies": list(FIXED_STRATEGIES),
                "queries": queries,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"wrote {path}")

    if worst_ratio < args.min_ratio:
        print(
            f"FAIL: on {worst_stem} the auto planner reaches only "
            f"{worst_ratio:.2f}x the best fixed strategy "
            f"(required {args.min_ratio:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: auto within {1 / args.min_ratio:.2f}x of the best fixed "
        f"strategy on every paper query (worst ratio {worst_ratio:.2f} "
        f"on {worst_stem})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
