#!/usr/bin/env python
"""Out-of-core benchmark: the six paper queries from a stored dataset
under a memory cap smaller than the dataset, spilling to disk.

Usage::

    python scripts/bench_sf1.py --sf 1.0 --store data/sf1 \
        --memory-limit-mb 256 --out benchmarks/BENCH_sf1.json

The script

1. writes (or reuses) a memory-mapped column store at ``--store`` via
   :func:`repro.tpch.generate_stored` (streaming; generator memory stays
   at one chunk per table),
2. runs Query 1, 2a, 2b and 3a/b/c once each on the vectorized engine,
   governed by ``--memory-limit-mb`` with spilling enabled into
   ``--spill-dir`` — the cap must be smaller than the on-disk dataset,
   and at least one query must actually spill (``kind='spill'`` spans),
3. validates every captured trace against ``schemas/trace.schema.json``
   (via :func:`repro.engine.trace.validate_trace_dict`, plus
   ``jsonschema`` when installed) and the trace invariants,
4. optionally re-checks correctness at ``--parity-sf`` against the
   in-memory engine (same seed, ungoverned row backend) and compares
   stored-scan vs in-RAM vectorized wall time on the Figure 4 query,
5. writes the ``BENCH_sf1.json`` artifact (same shape as the
   ``BENCH_<figure>.json`` files: experiments -> points -> measurements,
   traces embedded).

Exits non-zero if any query fails, any result diverges at parity scale,
no query spills, or a trace fails validation.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro  # noqa: E402
from repro.bench.figures import (  # noqa: E402
    Q1_OUTER_FRACTIONS,
    Q23_OUTER_FRACTIONS,
    QUANTITY_EQ,
    _q23_availqty,
)
from repro.bench.harness import (  # noqa: E402
    Experiment,
    SeriesPoint,
    StrategyMeasurement,
    write_bench_artifact,
)
from repro.engine.colstore import load_stored_database, store_size_bytes  # noqa: E402
from repro.engine.metrics import collect  # noqa: E402
from repro.engine.trace import (  # noqa: E402
    KIND_SPILL,
    trace_invariant_violations,
    validate_trace_dict,
)
from repro.tpch import (  # noqa: E402
    TpchConfig,
    generate,
    generate_stored,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)

STRATEGY = "nested-relational"


def paper_queries(db):
    """The six figure queries, instantiated at paper-proportional
    selection constants on *db* (smallest paper point of each series)."""
    n_orders = len(db.relation("orders"))
    n_part = len(db.relation("part"))
    lo_d, hi_d = pick_date_window(db, max(4, int(Q1_OUTER_FRACTIONS[0] * n_orders)))
    lo_s, hi_s = pick_size_window(db, max(4, int(Q23_OUTER_FRACTIONS[0] * n_part)))
    availqty = _q23_availqty(db)
    return [
        ("query1", query1(lo_d, hi_d)),
        ("query2a", query2("any", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query2b", query2("all", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3a", query3("all", "exists", "a", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3b", query3("all", "not exists", "b", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3c", query3("any", "exists", "c", lo_s, hi_s, availqty, QUANTITY_EQ)),
    ]


def spill_spans(trace):
    return [s for s in trace.spans() if s.kind == KIND_SPILL]


def ensure_store(path: str, sf: float, seed: int, chunk_rows: int) -> None:
    manifest = os.path.join(path, "manifest.json")
    if os.path.exists(manifest):
        with open(manifest) as handle:
            meta = json.load(handle)
        if meta.get("scale_factor") == sf and meta.get("seed") == seed:
            print(f"reusing stored dataset at {path}/")
            return
        raise SystemExit(
            f"{path}/ holds sf={meta.get('scale_factor')} seed={meta.get('seed')}, "
            f"wanted sf={sf} seed={seed}; remove it or pass a fresh --store"
        )
    print(f"generating stored dataset sf={sf} at {path}/ ...")
    start = time.perf_counter()
    generate_stored(path, TpchConfig(scale_factor=sf, seed=seed), chunk_rows=chunk_rows)
    print(f"  wrote {store_size_bytes(path) / 1e6:.1f} MB in "
          f"{time.perf_counter() - start:.1f}s")


def run_governed(session, sql, name):
    """One traced, governed execution -> (measurement, trace, problems)."""
    prepared = session.prepare(sql)
    problems = []
    with collect() as metrics:
        start = time.perf_counter()
        result, trace = prepared.trace(strategy=STRATEGY, backend="vector")
        elapsed = time.perf_counter() - start
    spans = spill_spans(trace)
    spilled = sum(s.counters.get("bytes_spilled", 0) for s in spans)
    trace_dict = trace.to_dict()
    problems += [f"{name}: {p}" for p in validate_trace_dict(trace_dict)]
    problems += [f"{name}: {v}" for v in trace_invariant_violations(trace)]
    try:
        import jsonschema

        schema_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "schemas", "trace.schema.json",
        )
        with open(schema_path) as handle:
            jsonschema.validate(trace_dict, json.load(handle))
    except ImportError:
        pass
    except Exception as exc:  # jsonschema.ValidationError
        problems.append(f"{name}: schema: {exc}")
    snapshot = metrics.snapshot()
    snapshot["spill_spans"] = len(spans)
    snapshot["spill_bytes"] = spilled
    measurement = StrategyMeasurement(
        strategy=STRATEGY,
        seconds=elapsed,
        result_rows=len(result),
        metrics=snapshot,
        trace=trace_dict,
    )
    print(f"  {name}: {len(result)} row(s) in {elapsed:.2f}s, "
          f"{len(spans)} spill span(s), {spilled / 1e6:.1f} MB spilled")
    return measurement, result, problems


def parity_check(sf: float, seed: int, cap_mb: float, spill_dir: str, chunk_rows: int):
    """Stored+governed results must equal the in-memory row engine."""
    print(f"parity check at sf={sf} ...")
    db = generate(TpchConfig(scale_factor=sf, seed=seed))
    store = tempfile.mkdtemp(prefix="repro-parity-store-")
    failures = []
    try:
        generate_stored(store, TpchConfig(scale_factor=sf, seed=seed),
                        chunk_rows=chunk_rows)
        sdb = load_stored_database(store)
        ref_session = repro.connect(db)
        gov_session = repro.connect(sdb, memory_limit_mb=cap_mb, spill_dir=spill_dir)
        for name, sql in paper_queries(db):
            expected = ref_session.prepare(sql).execute(
                strategy=STRATEGY, backend="row"
            )
            got = gov_session.prepare(sql).execute(
                strategy=STRATEGY, backend="vector"
            )
            status = "ok" if got == expected else "DIVERGED"
            print(f"  {name}: {status} ({len(got)} rows)")
            if got != expected:
                failures.append(name)
        # Figure 4 wall time: stored-scan vectorized vs in-RAM vectorized
        fig4 = paper_queries(db)[0][1]
        mem_session = repro.connect(db)

        def best_of(session, runs=3):
            prepared = session.prepare(fig4)
            times = []
            for _ in range(runs):
                start = time.perf_counter()
                prepared.execute(strategy=STRATEGY, backend="vector")
                times.append(time.perf_counter() - start)
            return min(times)

        in_ram = best_of(mem_session)
        stored = best_of(repro.connect(sdb))
        ratio = stored / in_ram if in_ram > 0 else float("inf")
        print(f"  figure4 vectorized: in-RAM {in_ram:.3f}s, "
              f"stored {stored:.3f}s (stored/in-RAM = {ratio:.2f}x)")
    finally:
        shutil.rmtree(store, ignore_errors=True)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=1.0,
                        help="scale factor of the stored dataset (default 1.0)")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--store", required=True,
                        help="column-store directory (created if absent)")
    parser.add_argument("--memory-limit-mb", type=float, default=256.0,
                        dest="memory_limit_mb",
                        help="execution memory cap; must be below the "
                             "on-disk dataset size")
    parser.add_argument("--spill-dir", dest="spill_dir",
                        help="spill directory (default: a fresh temp dir)")
    parser.add_argument("--out", default="BENCH_sf1.json",
                        help="artifact path (directory part may exist)")
    parser.add_argument("--parity-sf", type=float, default=0.1,
                        dest="parity_sf",
                        help="scale factor for the in-memory parity check "
                             "(0 disables)")
    parser.add_argument("--chunk-rows", type=int, default=100_000,
                        dest="chunk_rows")
    args = parser.parse_args(argv)

    ensure_store(args.store, args.sf, args.seed, args.chunk_rows)
    dataset_bytes = store_size_bytes(args.store)
    cap_bytes = args.memory_limit_mb * 1024 * 1024
    print(f"dataset {dataset_bytes / 1e6:.1f} MB on disk, "
          f"memory cap {cap_bytes / 1e6:.1f} MB")
    if cap_bytes >= dataset_bytes:
        print("error: --memory-limit-mb does not undercut the dataset size; "
              "the run would not demonstrate out-of-core execution",
              file=sys.stderr)
        return 2

    spill_dir = args.spill_dir or tempfile.mkdtemp(prefix="repro-sf1-spill-")
    own_spill_dir = args.spill_dir is None
    os.makedirs(spill_dir, exist_ok=True)

    problems = []
    total_spill_spans = 0
    try:
        db = load_stored_database(args.store)
        session = repro.connect(
            db, memory_limit_mb=args.memory_limit_mb, spill_dir=spill_dir
        )
        experiment = Experiment(
            "SF1", f"six paper queries, stored sf={args.sf}, "
                   f"cap {args.memory_limit_mb:.0f} MB"
        )
        print(f"running {STRATEGY} [vector] governed ...")
        for name, sql in paper_queries(db):
            measurement, _result, query_problems = run_governed(session, sql, name)
            problems += query_problems
            total_spill_spans += measurement.metrics["spill_spans"]
            experiment.points.append(SeriesPoint(
                label=name,
                block_sizes=(),
                intermediate_rows=0,
                measurements={STRATEGY: measurement},
            ))

        out_dir = os.path.dirname(os.path.abspath(args.out)) or "."
        artifact = write_bench_artifact(
            os.path.basename(args.out)[len("BENCH_"):-len(".json")]
            if os.path.basename(args.out).startswith("BENCH_")
            else "sf1",
            [experiment],
            out_dir,
            args.sf,
        )
        wanted = os.path.abspath(args.out)
        if os.path.abspath(artifact) != wanted:
            shutil.move(artifact, wanted)
            artifact = wanted
        print(f"wrote {artifact}")

        if total_spill_spans == 0:
            problems.append(
                "no query spilled: the cap did not force any out-of-core "
                "pass — lower --memory-limit-mb"
            )
        if args.parity_sf > 0:
            problems += [
                f"parity diverged: {name}"
                for name in parity_check(
                    args.parity_sf, args.seed, args.memory_limit_mb,
                    spill_dir, args.chunk_rows,
                )
            ]
    finally:
        if own_spill_dir:
            shutil.rmtree(spill_dir, ignore_errors=True)

    if problems:
        print("FAILURES:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"OK: {total_spill_spans} spill span(s) across the six queries, "
          "all traces valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
