#!/usr/bin/env python
"""Serving benchmark: the six paper queries under concurrent clients.

Usage::

    python scripts/bench_serve.py --sf 0.01 --clients 64 --requests 10 \
        --out benchmarks/BENCH_serve.json

The script

1. starts ``repro serve`` as a subprocess on an ephemeral port over an
   in-memory TPC-H instance at ``--sf`` (quotas sized for the client
   count),
2. drives a mixed six-paper-query workload from ``--clients``
   concurrent keep-alive HTTP clients spread across tenants, measuring
   sustained QPS and per-request p50/p99 latency (after one warm-up
   pass per query to populate the shared plan cache),
3. snapshots the server's ``/stats`` endpoint,
4. starts a SECOND, deliberately slow server (``REPRO_FAULT=
   slow_morsel``) with a one-query quota tenant to prove admission
   control: over-quota bursts are rejected with the typed 429 while the
   in-flight query completes,
5. sends that server SIGTERM mid-query to prove graceful drain: the
   in-flight request still answers 200, the process exits 0,
6. writes the ``BENCH_serve.json`` artifact.

Exits non-zero if any measured request fails, the quota burst sees no
typed rejection, the drain is unclean, or (unless ``--no-qps-floor``)
sustained QPS falls below ``--qps-floor``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import statistics
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro  # noqa: E402
from repro.bench.figures import (  # noqa: E402
    Q1_OUTER_FRACTIONS,
    Q23_OUTER_FRACTIONS,
    QUANTITY_EQ,
    _q23_availqty,
)
from repro.tpch import (  # noqa: E402
    TpchConfig,
    generate,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)

SEED = 42


def paper_queries(db):
    """Same instantiation as scripts/bench_sf1.py (smallest paper point)."""
    n_orders = len(db.relation("orders"))
    n_part = len(db.relation("part"))
    lo_d, hi_d = pick_date_window(db, max(4, int(Q1_OUTER_FRACTIONS[0] * n_orders)))
    lo_s, hi_s = pick_size_window(db, max(4, int(Q23_OUTER_FRACTIONS[0] * n_part)))
    availqty = _q23_availqty(db)
    return [
        ("query1", query1(lo_d, hi_d)),
        ("query2a", query2("any", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query2b", query2("all", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3a", query3("all", "exists", "a", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3b", query3("all", "not exists", "b", lo_s, hi_s, availqty, QUANTITY_EQ)),
        ("query3c", query3("any", "exists", "c", lo_s, hi_s, availqty, QUANTITY_EQ)),
    ]


# --------------------------------------------------------------------- #
# minimal async HTTP client (keep-alive)
# --------------------------------------------------------------------- #


def _request_bytes(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    return head.encode() + body


async def _read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return status, json.loads(body) if body else None


async def _one_shot(host, port, path, payload, timeout=60.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes(path, payload))
        await writer.drain()
        return await asyncio.wait_for(_read_response(reader), timeout)
    finally:
        writer.close()


async def _get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
        )
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


# --------------------------------------------------------------------- #
# server process management
# --------------------------------------------------------------------- #


def start_server(extra_args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
        + extra_args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 300
    while True:
        line = proc.stdout.readline()
        if "serving on http://" in line:
            port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
            return proc, port
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"server failed to start: {line!r}")


# --------------------------------------------------------------------- #
# phases
# --------------------------------------------------------------------- #


async def run_workload(host, port, queries, clients, requests_each):
    """Drive the mixed workload; return (latencies_ms, errors, per_query)."""
    latencies, errors = [], []
    per_query = {name: [] for name, _ in queries}

    async def client(index: int):
        tenant = f"client-{index % 8}"
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(requests_each):
                name, sql = queries[(index + i) % len(queries)]
                started = time.perf_counter()
                writer.write(_request_bytes(
                    "/query", {"sql": sql, "tenant": tenant}))
                await writer.drain()
                status, payload = await _read_response(reader)
                elapsed = (time.perf_counter() - started) * 1000.0
                if status == 200:
                    latencies.append(elapsed)
                    per_query[name].append(elapsed)
                else:
                    errors.append({"status": status, "error": payload,
                                   "query": name})
        finally:
            writer.close()

    await asyncio.gather(*(client(i) for i in range(clients)))
    return latencies, errors, per_query


async def quota_check(host, port, sql, burst):
    """Burst *burst* concurrent requests at a 1-running/0-queued tenant;
    expect typed 429 rejections alongside completed in-flight work."""
    outcomes = await asyncio.gather(
        *(_one_shot(host, port, "/query",
                    {"sql": sql, "tenant": "quota-probe"})
          for _ in range(burst))
    )
    completed = sum(1 for status, _ in outcomes if status == 200)
    rejected = [
        body for status, body in outcomes
        if status == 429
        and body["error"]["type"] == "TenantQuotaExceededError"
    ]
    return {
        "burst": burst,
        "completed": completed,
        "rejected": len(rejected),
        "ok": completed >= 1 and len(rejected) >= 1,
    }


async def drain_check(proc, host, port, sql):
    """SIGTERM mid-query: the in-flight request answers 200, exit is 0."""
    inflight = asyncio.ensure_future(
        _one_shot(host, port, "/query", {"sql": sql, "tenant": "drainer"}))
    await asyncio.sleep(0.3)  # the slow query is now executing
    proc.send_signal(signal.SIGTERM)
    status, _body = await inflight
    loop = asyncio.get_running_loop()
    exit_code = await loop.run_in_executor(None, proc.wait)
    return {
        "inflight_status": status,
        "exit_code": exit_code,
        "ok": status == 200 and exit_code == 0,
    }


def percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sf", type=float, default=0.01)
    ap.add_argument("--clients", type=int, default=64)
    ap.add_argument("--requests", type=int, default=10,
                    help="measured requests per client")
    ap.add_argument("--workers", type=int, default=8)
    ap.add_argument("--qps-floor", type=float, default=50.0,
                    dest="qps_floor")
    ap.add_argument("--no-qps-floor", action="store_true",
                    dest="no_qps_floor",
                    help="report QPS without enforcing the floor")
    ap.add_argument("--out", default="BENCH_serve.json")
    args = ap.parse_args()

    print(f"generating TPC-H sf={args.sf} for query parameters ...",
          flush=True)
    db = generate(TpchConfig(scale_factor=args.sf, seed=SEED))
    queries = paper_queries(db)

    # ---- phase 1: throughput over the mixed workload ------------------ #
    proc, port = start_server([
        "--tpch", str(args.sf), "--seed", str(SEED),
        "--workers", str(args.workers),
        "--queue-size", str(max(256, args.clients * 4)),
        "--max-concurrent", str(args.clients),
        "--max-queued", str(args.clients * 4),
    ])
    try:
        print(f"server on :{port}; warming plan cache ...", flush=True)
        for _name, sql in queries:
            status, body = asyncio.run(_one_shot(
                "127.0.0.1", port, "/query", {"sql": sql}))
            if status != 200:
                raise RuntimeError(f"warm-up failed: {body}")
        print(f"measuring: {args.clients} clients x {args.requests} "
              f"requests ...", flush=True)
        started = time.perf_counter()
        latencies, errors, per_query = asyncio.run(run_workload(
            "127.0.0.1", port, queries, args.clients, args.requests))
        wall_s = time.perf_counter() - started
        _status, stats = asyncio.run(_get("127.0.0.1", port, "/stats"))
        proc.send_signal(signal.SIGTERM)
        bench_exit = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    total = args.clients * args.requests
    qps = len(latencies) / wall_s if wall_s > 0 else 0.0
    ordered = sorted(latencies)
    artifact = {
        "benchmark": "serve",
        "scale_factor": args.sf,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "workers": args.workers,
        "total_requests": total,
        "completed": len(latencies),
        "errors": len(errors),
        "wall_s": round(wall_s, 3),
        "qps": round(qps, 1),
        "p50_ms": round(percentile(ordered, 0.50), 3) if ordered else None,
        "p99_ms": round(percentile(ordered, 0.99), 3) if ordered else None,
        "mean_ms": round(statistics.fmean(ordered), 3) if ordered else None,
        "per_query": {
            name: {
                "requests": len(values),
                "mean_ms": round(statistics.fmean(values), 3)
                if values else None,
            }
            for name, values in per_query.items()
        },
        "stats": stats,
        "bench_server_exit": bench_exit,
    }
    print(f"QPS {artifact['qps']}  p50 {artifact['p50_ms']} ms  "
          f"p99 {artifact['p99_ms']} ms  errors {len(errors)}", flush=True)

    # ---- phase 2: admission control + graceful drain ------------------ #
    # a deliberately slow server (every checkpoint sleeps) makes the
    # quota burst and the mid-query SIGTERM deterministic
    tenants_path = args.out + ".tenants.json"
    with open(tenants_path, "w") as handle:
        json.dump({"quota-probe": {"max_concurrent": 1, "max_queued": 0}},
                  handle)
    slow_proc, slow_port = start_server(
        ["--tpch", "0.001", "--seed", str(SEED), "--workers", "2",
         "--tenants", tenants_path],
        env_extra={"REPRO_FAULT": "slow_morsel", "REPRO_FAULT_MS": "120"},
    )
    try:
        slow_sql = ("select o_orderkey from orders "
                    "where o_totalprice > 1000")
        artifact["quota_check"] = asyncio.run(quota_check(
            "127.0.0.1", slow_port, slow_sql, burst=4))
        artifact["drain_check"] = asyncio.run(drain_check(
            slow_proc, "127.0.0.1", slow_port, slow_sql))
    finally:
        if slow_proc.poll() is None:
            slow_proc.kill()
        os.unlink(tenants_path)
    print(f"quota: {artifact['quota_check']}", flush=True)
    print(f"drain: {artifact['drain_check']}", flush=True)

    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2)
    print(f"wrote {args.out}", flush=True)

    failures = []
    if errors:
        failures.append(f"{len(errors)} request(s) failed: {errors[:3]}")
    if bench_exit != 0:
        failures.append(f"bench server exited {bench_exit}")
    if not artifact["quota_check"]["ok"]:
        failures.append(f"quota check failed: {artifact['quota_check']}")
    if not artifact["drain_check"]["ok"]:
        failures.append(f"drain check failed: {artifact['drain_check']}")
    if not args.no_qps_floor and qps < args.qps_floor:
        failures.append(f"QPS {qps:.1f} below floor {args.qps_floor}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
