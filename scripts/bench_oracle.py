#!/usr/bin/env python
"""External-engine baseline for the six paper queries (CI gate).

Runs Figures 4-9 on a real engine (SQLite by default, DuckDB with
``--engine duckdb``) over the same TPC-H database our strategies use,
captures the engine's plan text and wall time alongside ours, writes a
``BENCH_oracle_<engine>.json`` artifact, and **fails** (exit 1) if any
query's row bag disagrees with the engine — unless the known-divergence
registry documents the disagreement as expected.

Usage::

    PYTHONPATH=src python scripts/bench_oracle.py [--engine sqlite]

Environment:
    REPRO_BENCH_SF  TPC-H scale factor (default 0.01)
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import default_db  # noqa: E402
from repro.oracle import (  # noqa: E402
    engine_available,
    external_baseline,
    write_oracle_artifact,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", default="sqlite",
                        choices=("sqlite", "duckdb", "internal"))
    parser.add_argument("--strategy", default="auto",
                        help="our strategy to time against the engine")
    parser.add_argument("--sf", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SF", "0.01")))
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--out", default="traces",
                        help="directory for the BENCH_oracle_<engine>.json artifact")
    args = parser.parse_args(argv)

    if not engine_available(args.engine):
        print(f"error: engine {args.engine!r} is not available", file=sys.stderr)
        return 2

    print(f"generating TPC-H sf={args.sf} ...", flush=True)
    db = default_db(sf=args.sf, seed=args.seed)
    print(f"cross-checking the six paper queries against {args.engine} ...",
          flush=True)
    artifact = external_baseline(
        db, engine=args.engine, strategy=args.strategy, sf=args.sf
    )

    diverged = []
    for query in artifact["queries"]:
        status = "agree" if query["agree"] else "DIVERGE"
        if query["known_divergence"]:
            status += f" (known: {query['known_divergence']})"
        print(
            f"  {query['name']:<9} {status:<10} "
            f"rows={query['rows']:<5} "
            f"ours={query['repro_seconds']:.4f}s "
            f"{args.engine}={query['engine_seconds']:.4f}s"
        )
        if not query["agree"]:
            diverged.append(query["name"])

    path = write_oracle_artifact(artifact, args.out)
    print(f"wrote {path}")
    if diverged:
        print(
            f"error: {len(diverged)} query/queries diverge from "
            f"{args.engine}: {', '.join(diverged)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
