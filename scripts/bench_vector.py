#!/usr/bin/env python
"""Row vs. vector backend on the paper's Figure 4 workload (CI gate).

Runs Figure 4 (Query 1, one-level ``> ALL``) with the row-engine
Algorithm 1 and its columnar counterpart on the same database, captures
per-operator traces, writes a ``BENCH_vector_fig4.json`` artifact, and
**fails** (exit 1) unless the vectorized backend is at least
``--min-speedup`` (default 3×) faster in wall time at every series
point.  Traces embedded in the artifact are validated against
``schemas/trace.schema.json`` via ``scripts/validate_trace.py``.

Usage::

    REPRO_BENCH_SF=0.02 python scripts/bench_vector.py [--out traces/]

Environment:
    REPRO_BENCH_SF       TPC-H scale factor (default 0.02)
    REPRO_BENCH_REPEATS  best-of-N wall times (default 3)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import (  # noqa: E402
    capturing_traces,
    default_db,
    figure4_query1,
    write_bench_artifact,
)

STRATEGIES = ("nested-relational", "nested-relational-vectorized")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="traces",
                        help="directory for the BENCH_*.json artifact")
    parser.add_argument("--name", default="vector_fig4",
                        help="artifact name: writes BENCH_<name>.json "
                             "(e.g. 'vector_baseline' for the committed "
                             "perf-trajectory seed)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required row/vector wall-time ratio per point")
    parser.add_argument("--sf", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SF", "0.02")))
    parser.add_argument("--repeats", type=int,
                        default=int(os.environ.get("REPRO_BENCH_REPEATS", "3")))
    args = parser.parse_args(argv)

    print(f"generating TPC-H sf={args.sf} ...", flush=True)
    db = default_db(sf=args.sf)
    with capturing_traces():
        experiment = figure4_query1(db, strategies=STRATEGIES,
                                    repeats=args.repeats)

    print(experiment.format_table("seconds"))
    print()
    print(experiment.format_table("cost"))
    print()

    artifact = write_bench_artifact(args.name, [experiment], args.out,
                                    args.sf)
    print(f"wrote {artifact}")
    validator = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "validate_trace.py")
    subprocess.run([sys.executable, validator, artifact], check=True)

    speedups = experiment.speedup(*STRATEGIES)
    worst = min(speedups)
    for point, ratio in zip(experiment.points, speedups):
        print(f"  {point.label}: vectorized {ratio:.1f}x faster")
    if worst < args.min_speedup:
        print(
            f"FAIL: worst-case speedup {worst:.2f}x is below the required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: vectorized backend >= {args.min_speedup:.1f}x faster "
          f"at every point (worst {worst:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
