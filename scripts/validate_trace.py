#!/usr/bin/env python
"""Validate serialized execution traces against schemas/trace.schema.json.

Usage::

    python scripts/validate_trace.py trace.json [more.json ...]

Accepts either bare trace documents (``Trace.to_dict()`` output, as
written by ``repro run --trace=json --trace-out``) or ``BENCH_*.json``
benchmark artifacts, whose measurements embed one trace per strategy.

Validation runs twice when possible: the hand-rolled structural check in
:func:`repro.engine.trace.validate_trace_dict` (no dependencies), plus
``jsonschema`` against the schema file if the package is importable.
Exits non-zero on the first invalid document.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.engine.trace import validate_trace_dict  # noqa: E402

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "schemas",
    "trace.schema.json",
)


def _extract_traces(document):
    """Yield (label, trace_dict) pairs from a trace or bench artifact."""
    if "spans" in document:
        yield "trace", document
        return
    for experiment in document.get("experiments", []):
        for point in experiment.get("points", []):
            for name, m in point.get("measurements", {}).items():
                trace = m.get("trace")
                if trace is not None:
                    yield f"{experiment.get('experiment_id')}/{point.get('label')}/{name}", trace


def _jsonschema_check(trace, schema):
    try:
        import jsonschema
    except ImportError:
        return None
    try:
        jsonschema.validate(trace, schema)
    except jsonschema.ValidationError as exc:
        return [str(exc)]
    return []


def main(argv) -> int:
    if not argv:
        print(__doc__)
        return 2
    with open(SCHEMA_PATH) as handle:
        schema = json.load(handle)
    checked = 0
    for path in argv:
        with open(path) as handle:
            document = json.load(handle)
        traces = list(_extract_traces(document))
        if not traces:
            print(f"{path}: no traces found", file=sys.stderr)
            return 1
        for label, trace in traces:
            problems = validate_trace_dict(trace)
            schema_problems = _jsonschema_check(trace, schema)
            if schema_problems:
                problems = problems + schema_problems
            if problems:
                print(f"{path} [{label}]: INVALID", file=sys.stderr)
                for problem in problems:
                    print(f"  - {problem}", file=sys.stderr)
                return 1
            checked += 1
        via = "builtin+jsonschema" if _jsonschema_check({"version": 1, "spans": []}, schema) == [] else "builtin"
        print(f"{path}: {len(traces)} trace(s) valid ({via})")
    print(f"validated {checked} trace(s) across {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
