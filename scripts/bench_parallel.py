#!/usr/bin/env python
"""Morsel-driven parallel vs. single-thread vectorized on Figure 4 (CI gate).

Runs Figure 4 (Query 1, one-level ``> ALL``) with the single-threaded
columnar strategy and the morsel-driven parallel strategy at 1 and N
workers on the same database, captures per-operator traces (morsel spans
included), writes a ``BENCH_parallel_fig4.json`` artifact validated
against ``schemas/trace.schema.json``, and **fails** (exit 1) unless

* the parallel strategy at ``--threads`` workers is at least
  ``--min-speedup`` (default 2×) faster than the single-thread
  vectorized strategy at every series point, and
* the parallel strategy at 1 worker never regresses below the
  single-thread vectorized strategy (ratio >= ``--min-regression``).

Usage::

    REPRO_BENCH_SF=0.1 python scripts/bench_parallel.py [--out traces/]

Environment:
    REPRO_BENCH_SF       TPC-H scale factor (default 0.1)
    REPRO_BENCH_REPEATS  best-of-N wall times (default 3)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import (  # noqa: E402
    capturing_traces,
    default_db,
    figure4_query1,
    write_bench_artifact,
)
from repro.engine.vector.strategy import (  # noqa: E402
    ParallelNestedRelationalStrategy,
)
from repro.strategies import register  # noqa: E402

BASELINE = "nested-relational-vectorized"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="traces",
                        help="directory for the BENCH_*.json artifact")
    parser.add_argument("--name", default="parallel_fig4",
                        help="artifact name: writes BENCH_<name>.json")
    parser.add_argument("--threads", type=int, default=4,
                        help="worker count for the parallel series")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required vectorized/parallel@N wall-time "
                             "ratio per point")
    parser.add_argument("--min-regression", type=float, default=1.0,
                        help="required vectorized/parallel@1 wall-time "
                             "ratio per point (no-regression floor)")
    parser.add_argument("--sf", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SF", "0.1")))
    parser.add_argument("--repeats", type=int,
                        default=int(os.environ.get("REPRO_BENCH_REPEATS", "3")))
    args = parser.parse_args(argv)

    one = "nested-relational-parallel@1"
    many = f"nested-relational-parallel@{args.threads}"
    register(one, backend="vector", replace=True,
             description="bench variant: 1 worker")(
        lambda: ParallelNestedRelationalStrategy(threads=1)
    )
    register(many, backend="vector", replace=True,
             description=f"bench variant: {args.threads} workers")(
        lambda: ParallelNestedRelationalStrategy(threads=args.threads)
    )
    strategies = (BASELINE, one, many)

    print(f"generating TPC-H sf={args.sf} ...", flush=True)
    db = default_db(sf=args.sf)
    with capturing_traces():
        experiment = figure4_query1(db, strategies=strategies,
                                    repeats=args.repeats)

    print(experiment.format_table("seconds"))
    print()
    print(experiment.format_table("cost"))
    print()

    artifact = write_bench_artifact(args.name, [experiment], args.out,
                                    args.sf)
    print(f"wrote {artifact}")
    validator = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "validate_trace.py")
    subprocess.run([sys.executable, validator, artifact], check=True)

    failed = False
    speedups = experiment.speedup(BASELINE, many)
    for point, ratio in zip(experiment.points, speedups):
        print(f"  {point.label}: parallel@{args.threads} {ratio:.1f}x faster "
              f"than vectorized")
    worst = min(speedups)
    if worst < args.min_speedup:
        print(
            f"FAIL: worst-case parallel@{args.threads} speedup {worst:.2f}x "
            f"is below the required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True

    floors = experiment.speedup(BASELINE, one)
    worst_floor = min(floors)
    if worst_floor < args.min_regression:
        print(
            f"FAIL: parallel@1 regresses to {worst_floor:.2f}x of the "
            f"single-thread vectorized strategy "
            f"(floor {args.min_regression:.2f}x)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: parallel@{args.threads} >= {args.min_speedup:.1f}x at every "
        f"point (worst {worst:.1f}x); parallel@1 floor "
        f"{worst_floor:.2f}x >= {args.min_regression:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
