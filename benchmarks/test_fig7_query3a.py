"""Figure 7 — Query 3a: mixed ``< ALL`` + ``EXISTS``, tree-correlated.

The third block correlates with *both* enclosing blocks, so System A
cannot unnest even the positive EXISTS into a standalone semijoin: every
level runs by index nested loops.  Variant (b) — ``p_partkey <>
l_partkey`` — can only use the single ``l_suppkey`` index, but that index
structure is smaller than the combined one, which in the paper makes
3a(b) *faster* than 3a(a)/3a(c); in our emulation the uncovered equality
means more fetched rows instead (no page-size effects in RAM), so (b) is
the expensive variant — same mechanism, opposite sign, discussed in
EXPERIMENTS.md.  The nested relational approach is flat across variants.
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure7_query3a
from repro.bench.figures import Q23_OUTER_FRACTIONS, _q23_availqty, _q23_sizes
from repro.baselines.native import NESTED_ITERATION, SystemAEmulationStrategy
from repro.core.planner import make_strategy
from repro.tpch import query3


@pytest.mark.parametrize("variant", ["a", "b", "c"])
@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig7_largest_point(benchmark, bench_db, strategy, variant):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query3("all", "exists", variant, lo, hi, _q23_availqty(bench_db), 25)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=1, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig7_series_shape(benchmark, bench_db):
    exps = benchmark.pedantic(
        lambda: figure7_query3a(bench_db), rounds=1, iterations=1
    )
    print()
    for variant in "abc":
        print(exps[variant].format_table("seconds"))
        print(exps[variant].format_table("cost"))

    # plan: nested iteration at both levels, all variants
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[0]
    for variant in "abc":
        sql = query3("all", "exists", variant, lo, hi, _q23_availqty(bench_db), 25)
        q = repro.compile_sql(sql, bench_db)
        plan = SystemAEmulationStrategy().plan(q, bench_db)
        assert plan[2].action == NESTED_ITERATION
        assert plan[3].action == NESTED_ITERATION

    for variant in "abc":
        native = [
            p.measurements["system-a-native"].cost for p in exps[variant].points
        ]
        nr = [
            p.measurements["nested-relational"].cost for p in exps[variant].points
        ]
        # native grows with block size and loses to NR at the largest size
        assert native == sorted(native)
        assert native[-1] > nr[-1]
        # NR stays flat
        assert nr[-1] < nr[0] * 1.6
