"""T-IR — Section 5.2's in-text series: intermediate result sizes and
the nest + linking-selection processing time, original vs optimized.

Paper numbers (Query 1, IR 40K..165K rows): original 0.24→0.98 s,
optimized 0.03→0.13 s — both linear in the IR size, the optimized
variant several times faster because it makes one fused pass instead of
two.  We assert linearity and the one-pass advantage at our scale.
"""

import pytest

from repro.bench.figures import (
    default_db,
    format_profiles,
    text_intermediate_results,
)


def test_text_intermediate_profile(benchmark, bench_db):
    profiles = benchmark.pedantic(
        lambda: text_intermediate_results(bench_db, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_profiles(profiles))

    sizes = [p.intermediate_rows for p in profiles]
    original = [p.original_seconds for p in profiles]
    optimized = [p.optimized_seconds for p in profiles]

    # IR grows along the series, processing time grows with it
    assert sizes == sorted(sizes) and sizes[-1] > sizes[0] * 2
    assert original[-1] > original[0]
    # the fused single pass beats two passes at every point
    assert all(o >= p for o, p in zip(original, optimized))
    # and by a meaningful factor at the largest IR (paper: ~7x; our
    # original pipeline shares more code with the optimized one, so the
    # gap is nearer 2-3x)
    assert profiles[-1].ratio > 1.5


def test_processing_time_linear_in_ir(benchmark, bench_db):
    """Per-row processing cost is roughly constant — the paper's reason
    for reporting the IR size as the cost parameter."""
    profiles = benchmark.pedantic(
        lambda: text_intermediate_results(bench_db, repeats=3),
        rounds=1,
        iterations=1,
    )
    per_row = [
        p.original_seconds / p.intermediate_rows
        for p in profiles
        if p.intermediate_rows
    ]
    assert max(per_row) < 12 * min(per_row)
