"""Figure 8 — Query 3b: negative ``< ALL`` + ``NOT EXISTS``,
tree-correlated — the paper's worst case for the native approach.

"System A is unable to use antijoin in these queries, even though the
NOT NULL constraint is present": nested iteration over all three blocks,
with variant-dependent index choices.  The nested relational approach
is unaffected by the operators or the correlated-predicate variants.
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure6_query2b, figure8_query3b
from repro.bench.figures import Q23_OUTER_FRACTIONS, _q23_availqty, _q23_sizes
from repro.baselines.native import NESTED_ITERATION, SystemAEmulationStrategy
from repro.core.planner import make_strategy
from repro.tpch import query3


@pytest.mark.parametrize("variant", ["a", "b", "c"])
@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig8_largest_point(benchmark, bench_db, strategy, variant):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query3("all", "not exists", variant, lo, hi, _q23_availqty(bench_db), 25)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=1, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig8_series_shape(benchmark, bench_db, bench_db_not_null):
    exps = benchmark.pedantic(
        lambda: figure8_query3b(bench_db), rounds=1, iterations=1
    )
    print()
    for variant in "abc":
        print(exps[variant].format_table("seconds"))
        print(exps[variant].format_table("cost"))

    # Even WITH the NOT NULL constraint, no antijoin for Query 3's shape.
    lo, hi = _q23_sizes(bench_db_not_null, Q23_OUTER_FRACTIONS)[0]
    sql = query3(
        "all", "not exists", "a", lo, hi, _q23_availqty(bench_db_not_null), 25
    )
    q = repro.compile_sql(sql, bench_db_not_null)
    plan = SystemAEmulationStrategy().plan(q, bench_db_not_null)
    assert plan[2].action == NESTED_ITERATION
    assert plan[3].action == NESTED_ITERATION

    for variant in "abc":
        native = [
            p.measurements["system-a-native"].cost for p in exps[variant].points
        ]
        nr = [
            p.measurements["nested-relational"].cost for p in exps[variant].points
        ]
        assert native == sorted(native)
        assert all(n > r for n, r in zip(native, nr))
    # variant (b)'s uncovered partkey inequality fetches far more rows
    native_a = exps["a"].points[-1].measurements["system-a-native"].cost
    native_b = exps["b"].points[-1].measurements["system-a-native"].cost
    assert native_b > native_a * 1.5


def test_fig8_nr_insensitive_to_variant_and_operator(benchmark, bench_db):
    """NR cost is ~identical across Q3b variants AND ~equal to its
    Query 2b cost: the uniform-treatment claim at the heart of Section 5."""

    def both():
        return figure8_query3b(bench_db), figure6_query2b(bench_db)

    exps8, exp6 = benchmark.pedantic(both, rounds=1, iterations=1)
    base = [p.measurements["nested-relational"].cost for p in exps8["a"].points]
    for variant in "bc":
        other = [
            p.measurements["nested-relational"].cost
            for p in exps8[variant].points
        ]
        for a, b in zip(base, other):
            assert abs(a - b) / max(a, b) < 0.35
    q2b = [p.measurements["nested-relational"].cost for p in exp6.points]
    for a, b in zip(base, q2b):
        assert abs(a - b) / max(a, b) < 0.25
