"""Shared fixtures for the figure benchmarks.

Scale is controlled by the ``REPRO_BENCH_SF`` environment variable
(default 0.005 ≈ 7 500 orders / 30 000 lineitems): large enough that the
paper's series shapes are visible, small enough that the whole benchmark
suite finishes in minutes on a laptop.  Set it to 0.02 or higher for
slower, higher-resolution runs.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.bench import default_db

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.005"))


@pytest.fixture(scope="session")
def bench_db():
    """The nullable-price database (the paper's featured general case)."""
    return default_db(sf=BENCH_SF, seed=2005)


@pytest.fixture(scope="session")
def bench_db_not_null():
    """Same data with NOT NULL declared on the price columns."""
    return default_db(sf=BENCH_SF, seed=2005, price_not_null=True)
