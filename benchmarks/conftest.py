"""Shared fixtures for the figure benchmarks.

Scale is controlled by the ``REPRO_BENCH_SF`` environment variable
(default 0.005 ≈ 7 500 orders / 30 000 lineitems): large enough that the
paper's series shapes are visible, small enough that the whole benchmark
suite finishes in minutes on a laptop.  Set it to 0.02 or higher for
slower, higher-resolution runs.

Setting ``REPRO_TRACE_DIR`` additionally captures one per-operator
execution trace per (query, strategy) measurement — in a separate,
untimed run, so benchmark numbers are unaffected — and writes each
figure's results as a ``BENCH_<figure>.json`` artifact into that
directory.  Validate the artifacts with ``scripts/validate_trace.py``.
"""

from __future__ import annotations

import functools
import os

import pytest

import repro
import repro.bench
from repro.bench import capturing_traces, default_db, write_bench_artifact

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.005"))
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR")

# The figure entry points whose results become BENCH_*.json artifacts.
_ARTIFACT_FIGURES = {
    "figure4_query1": "fig4",
    "figure5_query2a": "fig5",
    "figure6_query2b": "fig6",
    "figure7_query3a": "fig7",
    "figure8_query3b": "fig8",
    "figure9_query3c": "fig9",
}


def _emitting(func, figure_name):
    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        result = func(*args, **kwargs)
        experiments = (
            list(result.values()) if isinstance(result, dict) else [result]
        )
        write_bench_artifact(figure_name, experiments, TRACE_DIR, BENCH_SF)
        return result

    return wrapper


if TRACE_DIR:
    # conftest imports before the test modules, so rebinding here is
    # seen by their `from repro.bench import figureN_...` imports.
    for _attr, _figure in _ARTIFACT_FIGURES.items():
        setattr(
            repro.bench, _attr, _emitting(getattr(repro.bench, _attr), _figure)
        )


@pytest.fixture(scope="session", autouse=True)
def _trace_capture():
    """Attach traces to all measurements when REPRO_TRACE_DIR is set."""
    if not TRACE_DIR:
        yield
        return
    with capturing_traces():
        yield


@pytest.fixture(scope="session")
def bench_db():
    """The nullable-price database (the paper's featured general case)."""
    return default_db(sf=BENCH_SF, seed=2005)


@pytest.fixture(scope="session")
def bench_db_not_null():
    """Same data with NOT NULL declared on the price columns."""
    return default_db(sf=BENCH_SF, seed=2005, price_not_null=True)
