"""A-NULL — the NOT NULL constraint flips System A's Query 1 plan.

Paper: "with a NOT NULL constraint on the attribute l_extendedprice,
System A directly performs an antijoin, and the performance is about the
same as ours.  However, if the NOT NULL constraint is dropped, even
though there are no null values in l_extendedprice, antijoin is not
used."  The nested relational approach is identical in both worlds.
"""

import pytest

import repro
from repro.bench import ablation_not_null
from repro.bench.figures import Q1_OUTER_FRACTIONS, _q1_windows
from repro.baselines.native import (
    ANTIJOIN_NEGATED,
    NESTED_ITERATION,
    SystemAEmulationStrategy,
)
from repro.tpch import query1


def test_constraint_flips_plan(benchmark, bench_db, bench_db_not_null):
    lo, hi = _q1_windows(bench_db, Q1_OUTER_FRACTIONS)[0]
    sql = query1(lo, hi)

    def plans():
        strategy = SystemAEmulationStrategy()
        nullable_plan = strategy.plan(repro.compile_sql(sql, bench_db), bench_db)
        notnull_plan = strategy.plan(
            repro.compile_sql(sql, bench_db_not_null), bench_db_not_null
        )
        return nullable_plan, notnull_plan

    nullable_plan, notnull_plan = benchmark.pedantic(plans, rounds=1, iterations=1)
    assert nullable_plan[2].action == NESTED_ITERATION
    assert notnull_plan[2].action == ANTIJOIN_NEGATED


def test_ablation_series(benchmark, bench_db, bench_db_not_null):
    exps = benchmark.pedantic(
        lambda: ablation_not_null(bench_db, bench_db_not_null),
        rounds=1,
        iterations=1,
    )
    print()
    for label, exp in exps.items():
        print(exp.format_table("seconds"))
        print(exp.format_table("cost"))

    # with NOT NULL, native (antijoin) is about the same as NR
    notnull = exps["not-null"]
    for point in notnull.points:
        native = point.measurements["system-a-native"].cost
        nr = point.measurements["nested-relational-optimized"].cost
        assert native < 2 * nr

    # Without the constraint, native nested iteration grows with the outer
    # block while the antijoin plan's scan cost stays flat: the nested
    # iteration must overtake it by the larger series point (at the very
    # smallest blocks a handful of probes can still undercut a full scan —
    # the crossover the paper's 4K..16K sizes sit beyond).
    nullable = exps["nullable"]
    assert (
        nullable.points[-1].measurements["system-a-native"].cost
        > notnull.points[-1].measurements["system-a-native"].cost
    )

    # the NR approach does not care about the constraint at all
    for p_null, p_nn in zip(nullable.points, notnull.points):
        a = p_null.measurements["nested-relational-optimized"].cost
        b = p_nn.measurements["nested-relational-optimized"].cost
        assert abs(a - b) / max(a, b) < 0.05


def test_classical_rewrite_matches_antijoin_world(benchmark, bench_db_not_null):
    """With NOT NULL declared, the guarded classical rewrite runs and its
    cost is in native-antijoin territory."""
    from repro.bench.harness import run_point

    lo, hi = _q1_windows(bench_db_not_null, Q1_OUTER_FRACTIONS)[1]
    sql = query1(lo, hi)
    point = benchmark.pedantic(
        lambda: run_point(
            sql,
            bench_db_not_null,
            ["classical-unnesting", "system-a-native"],
        ),
        rounds=1,
        iterations=1,
    )
    classical = point.measurements["classical-unnesting"]
    native = point.measurements["system-a-native"]
    assert classical.result_rows == native.result_rows
