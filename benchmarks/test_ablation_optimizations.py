"""A-OPT — ablation across the nested relational variants (Section 4.2)
and the related-work baselines (Section 2) on the linear Query 2b.

What the design calls out:

* the optimized single-pass pipeline sorts once where the original
  approach re-nests per level;
* bottom-up evaluation (linear correlation) keeps intermediate results
  small — only qualified tuples join upward;
* the count-rewrite and Boolean-aggregate baselines compute the same
  answers through grouped aggregation (the "special operators" the paper
  argues are unnecessary).
"""

import pytest

import repro
from repro.bench import ablation_optimizations
from repro.bench.figures import (
    Q23_OUTER_FRACTIONS,
    QUANTITY_EQ,
    _q23_availqty,
    _q23_sizes,
)
from repro.baselines import BooleanAggregateStrategy, CountRewriteStrategy
from repro.core.planner import make_strategy
from repro.engine.metrics import collect
from repro.tpch import query2

NR_VARIANTS = (
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "nested-relational-bottomup",
)


@pytest.mark.parametrize("strategy", NR_VARIANTS)
def test_nr_variant_wall_time(benchmark, bench_db, strategy):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("all", lo, hi, _q23_availqty(bench_db), QUANTITY_EQ)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=3, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


@pytest.mark.parametrize(
    "baseline_cls", [CountRewriteStrategy, BooleanAggregateStrategy]
)
def test_related_work_baselines(benchmark, bench_db, baseline_cls):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("all", lo, hi, _q23_availqty(bench_db), QUANTITY_EQ)
    query = repro.compile_sql(sql, bench_db)
    impl = baseline_cls()
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=3, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_ablation_table(benchmark, bench_db):
    exp = benchmark.pedantic(
        lambda: ablation_optimizations(bench_db), rounds=1, iterations=1
    )
    print()
    print(exp.format_table("seconds"))
    print(exp.format_table("cost"))
    # all variants compute the same result cardinality
    for point in exp.points:
        sizes = {m.result_rows for m in point.measurements.values()}
        assert len(sizes) == 1


def test_single_pass_sorts_less_than_per_level_nesting(benchmark, bench_db):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("all", lo, hi, _q23_availqty(bench_db), QUANTITY_EQ)
    query = repro.compile_sql(sql, bench_db)

    def measure():
        with collect() as m_opt:
            make_strategy("nested-relational-optimized").execute(query, bench_db)
        with collect() as m_orig:
            make_strategy("nested-relational-sorted").execute(query, bench_db)
        return m_opt.get("rows_sorted"), m_orig.get("rows_sorted")

    opt_sorted, orig_sorted = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert opt_sorted < orig_sorted


def test_bottom_up_joins_only_qualified_tuples(benchmark, bench_db):
    """Bottom-up evaluation joins upward only tuples that survived the
    deeper linking predicates, so its hash joins see no more build rows
    than the top-down pipeline's, and its overall cost stays competitive.
    (Its nest operators run over *reduced child* relations via push-down,
    which can be larger than the top-down IR — the savings show up in the
    join stage, not the nest counters.)"""
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("all", lo, hi, _q23_availqty(bench_db), QUANTITY_EQ)
    query = repro.compile_sql(sql, bench_db)

    def measure():
        with collect() as m_bu:
            make_strategy("nested-relational-bottomup").execute(query, bench_db)
        with collect() as m_td:
            make_strategy("nested-relational").execute(query, bench_db)
        return m_bu, m_td

    m_bu, m_td = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert m_bu.get("hash_build_rows") <= m_td.get("hash_build_rows")
    assert m_bu.weighted_cost() <= 1.5 * m_td.weighted_cost()
