"""Figure 5 — Query 2a: mixed ``< ANY`` + ``NOT EXISTS``, linear.

Paper result: with only positive/NOT EXISTS operators the native
approach unnests everything into a semijoin + antijoin pipeline and is
*slightly better* than the nested relational approach (whose gap is
mostly the stored-procedure communication overhead); all series are flat
to mildly growing.

Reproduction: the System A emulation picks SEMIJOIN + ANTIJOIN (asserted
below), its cost stays within a small factor of the nested relational
cost, and nobody blows up with the outer block size.
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure5_query2a
from repro.bench.figures import Q23_OUTER_FRACTIONS, _q23_availqty, _q23_sizes
from repro.baselines.native import ANTIJOIN, SEMIJOIN, SystemAEmulationStrategy
from repro.core.planner import make_strategy
from repro.tpch import query2


@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig5_largest_point(benchmark, bench_db, strategy):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("any", lo, hi, _q23_availqty(bench_db), 25)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=3, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig5_series_shape(benchmark, bench_db):
    exp = benchmark.pedantic(
        lambda: figure5_query2a(bench_db), rounds=1, iterations=1
    )
    print()
    print(exp.format_table("seconds"))
    print(exp.format_table("cost"))

    # the narrated plan: semijoin for ANY, antijoin for NOT EXISTS
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[0]
    q = repro.compile_sql(query2("any", lo, hi, _q23_availqty(bench_db), 25), bench_db)
    plan = SystemAEmulationStrategy().plan(q, bench_db)
    assert plan[2].action == SEMIJOIN
    assert plan[3].action == ANTIJOIN

    native = [p.measurements["system-a-native"].cost for p in exp.points]
    nr = [p.measurements["nested-relational"].cost for p in exp.points]
    # fully unnested native stays competitive: within 3x of NR everywhere
    # (the paper has it slightly *ahead*; our NR pays no IPC overhead)
    for n, r in zip(native, nr):
        assert n < 3 * r
    # and — unlike Figure 6 — native does not blow up with block size
    assert native[-1] < native[0] * 6
