"""Figure 6 — Query 2b: negative ``< ALL`` + ``NOT EXISTS``, linear.

Paper result: the ALL operator (on a NULLable ps_supplycost) blocks the
antijoin rewrite; the native approach must nested-iterate and "performs
significantly worse than the nested relational approach", growing with
the outer block size, while the nested relational series is flat and
essentially identical to its Figure 5 numbers (operator-independence).

Reproduction: the emulation's plan is NESTED_ITERATION at both levels;
its weighted cost grows linearly and exceeds the flat nested relational
cost at every point.
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure5_query2a, figure6_query2b
from repro.bench.figures import Q23_OUTER_FRACTIONS, _q23_availqty, _q23_sizes
from repro.baselines.native import NESTED_ITERATION, SystemAEmulationStrategy
from repro.core.planner import make_strategy
from repro.tpch import query2


@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig6_largest_point(benchmark, bench_db, strategy):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query2("all", lo, hi, _q23_availqty(bench_db), 25)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=3, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig6_series_shape(benchmark, bench_db):
    exp = benchmark.pedantic(
        lambda: figure6_query2b(bench_db), rounds=1, iterations=1
    )
    print()
    print(exp.format_table("seconds"))
    print(exp.format_table("cost"))

    # plan check: ALL on NULLable ps_supplycost forces nested iteration
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[0]
    q = repro.compile_sql(query2("all", lo, hi, _q23_availqty(bench_db), 25), bench_db)
    plan = SystemAEmulationStrategy().plan(q, bench_db)
    assert plan[2].action == NESTED_ITERATION
    assert plan[3].action == NESTED_ITERATION

    native = [p.measurements["system-a-native"].cost for p in exp.points]
    nr = [p.measurements["nested-relational"].cost for p in exp.points]
    # native grows with the outer block and loses everywhere
    assert native == sorted(native)
    assert all(n > r for n, r in zip(native, nr))
    assert native[-1] > nr[-1] * 3


def test_fig5_vs_fig6_nested_relational_operator_independence(benchmark, bench_db):
    """The NR approach has 'similar performance on nested linear queries
    regardless of the linking operators' — same sizes, ANY vs ALL."""

    def both():
        return figure5_query2a(bench_db), figure6_query2b(bench_db)

    exp5, exp6 = benchmark.pedantic(both, rounds=1, iterations=1)
    for p5, p6 in zip(exp5.points, exp6.points):
        c5 = p5.measurements["nested-relational"].cost
        c6 = p6.measurements["nested-relational"].cost
        assert abs(c5 - c6) / max(c5, c6) < 0.25
