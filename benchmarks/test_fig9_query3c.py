"""Figure 9 — Query 3c: positive ``< ANY`` + ``EXISTS``, tree-correlated.

Both operators are positive, but the tree correlation still prevents a
clean semijoin pipeline: System A "always tries to unnest the third
query block for the EXISTS linking predicate" via index nested-loop
joins — per-tuple work that grows with the outer block, though the
EXISTS/ANY short-circuiting makes it cheaper than Figure 8's negative
operators.  The nested relational approach remains flat and
operator-insensitive.
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure8_query3b, figure9_query3c
from repro.bench.figures import Q23_OUTER_FRACTIONS, _q23_availqty, _q23_sizes
from repro.core.planner import make_strategy
from repro.tpch import query3


@pytest.mark.parametrize("variant", ["a", "b", "c"])
@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig9_largest_point(benchmark, bench_db, strategy, variant):
    lo, hi = _q23_sizes(bench_db, Q23_OUTER_FRACTIONS)[-1]
    sql = query3("any", "exists", variant, lo, hi, _q23_availqty(bench_db), 25)
    query = repro.compile_sql(sql, bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=1, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig9_series_shape(benchmark, bench_db):
    def both():
        return figure9_query3c(bench_db), figure8_query3b(bench_db)

    exps9, exps8 = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    for variant in "abc":
        print(exps9[variant].format_table("seconds"))
        print(exps9[variant].format_table("cost"))

    for variant in "abc":
        native9 = [
            p.measurements["system-a-native"].cost for p in exps9[variant].points
        ]
        nr9 = [
            p.measurements["nested-relational"].cost for p in exps9[variant].points
        ]
        native8 = [
            p.measurements["system-a-native"].cost for p in exps8[variant].points
        ]
        # native grows with the outer block for the positive operators too
        assert native9 == sorted(native9)
        # and short-circuiting keeps Figure 9's native no worse than
        # Figure 8's at the largest point (the index nested loops stop at
        # the first witness either way, so the two can land very close)
        assert native9[-1] <= native8[-1] * 1.05
        # NR flat, and insensitive to the operator flip (fig8 vs fig9)
        nr8 = [
            p.measurements["nested-relational"].cost for p in exps8[variant].points
        ]
        for a, b in zip(nr9, nr8):
            assert abs(a - b) / max(a, b) < 0.35
