"""Figure 4 — Query 1: one-level ``> ALL`` (orders vs lineitem).

Paper result: both nested relational variants beat the native approach,
which evaluates the ALL subquery by nested iteration (the NOT NULL
constraint being absent); native time grows with the outer block size
while the nested relational time tracks the (flat) intermediate result.

Reproduction: the weighted cost series shows exactly that shape — native
grows linearly with the outer block and crosses the flat nested
relational cost — while raw wall time on an in-RAM engine favours
nested iteration's few probes at small absolute scale (recorded and
discussed in EXPERIMENTS.md).
"""

import pytest

import repro
from repro.bench import PAPER_STRATEGIES, figure4_query1
from repro.bench.figures import Q1_OUTER_FRACTIONS, _q1_windows
from repro.core.planner import make_strategy
from repro.tpch import query1


@pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
def test_fig4_largest_point(benchmark, bench_db, strategy):
    """Wall time of each strategy at the largest outer block (16K-scaled)."""
    lo, hi = _q1_windows(bench_db, Q1_OUTER_FRACTIONS)[-1]
    query = repro.compile_sql(query1(lo, hi), bench_db)
    impl = make_strategy(strategy)
    result = benchmark.pedantic(
        lambda: impl.execute(query, bench_db), rounds=3, iterations=1
    )
    oracle = repro.execute(query, bench_db, strategy="nested-iteration")
    assert result == oracle


def test_fig4_series_shape(benchmark, bench_db):
    """Regenerate the full Figure 4 series and check its shape."""
    exp = benchmark.pedantic(
        lambda: figure4_query1(bench_db), rounds=1, iterations=1
    )
    print()
    print(exp.format_table("seconds"))
    print(exp.format_table("cost"))

    native = [p.measurements["system-a-native"].cost for p in exp.points]
    nr = [p.measurements["nested-relational"].cost for p in exp.points]
    opt = [p.measurements["nested-relational-optimized"].cost for p in exp.points]

    # native cost grows with the outer block size...
    assert native == sorted(native)
    assert native[-1] > native[0] * 2
    # ...while the nested relational approaches stay nearly flat...
    assert nr[-1] < nr[0] * 1.5
    assert opt[-1] < opt[0] * 1.5
    # ...and win at the largest block (the paper's verdict for Query 1).
    assert nr[-1] < native[-1]
    assert opt[-1] < native[-1]
