"""Unit tests for the morsel-driven parallel executor.

The parallel kernels must be drop-in replacements for the sequential
vectorized kernels: same relations out (NULL-key semantics included),
same Metrics totals, and traces that carry the extra ``kind="morsel"``
spans while still satisfying every span-tree invariant.  The scheduler
is forced onto the partitioned path with ``min_partition_rows=1`` so
even the tiny fixtures exercise real morsel splits.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.engine import NULL, Column, Schema
from repro.engine.expressions import Col, Comparison
from repro.engine.metrics import collect
from repro.engine.parallel import (
    DEFAULT_MIN_PARTITION_ROWS,
    MorselScheduler,
    ParallelVectorBackend,
    build_side,
    default_min_partition_rows,
    default_threads,
    equi_match,
    hash_partitions,
    joint_codes,
    probe_match,
)
from repro.engine.trace import (
    KIND_MORSEL,
    reconcile_with_metrics,
    trace_invariant_violations,
    tracing,
)
from repro.engine.vector import Batch, Vector, kernels
from repro.engine.vector.backend import VectorBackend


def batch_of(**cols) -> Batch:
    names = list(cols)
    vectors = [Vector.from_values(cols[n]) for n in names]
    n = len(next(iter(cols.values()))) if cols else 0
    return Batch(Schema([Column(n) for n in names]), vectors, n)


def forced(threads: int = 3) -> MorselScheduler:
    """A scheduler that partitions everything, even two-row batches."""
    return MorselScheduler(threads=threads, min_partition_rows=1)


def rows(batch: Batch):
    return batch.to_relation().sorted().rows


class TestJointCodes:
    def test_int_keys_match_by_value(self):
        left = batch_of(a=[1, 2, 3, 2])
        right = batch_of(b=[2, 9, 1])
        codes_l, codes_r = joint_codes(left, right, ["a"], ["b"])
        assert codes_l[1] == codes_r[0]  # 2 == 2
        assert codes_l[3] == codes_r[0]
        assert codes_l[0] == codes_r[2]  # 1 == 1
        assert codes_l[2] not in set(codes_r.tolist())  # 3 unmatched

    def test_int_and_float_keys_collide_like_sql(self):
        left = batch_of(a=[1, 2])
        right = batch_of(b=[1.0, 2.5])
        codes_l, codes_r = joint_codes(left, right, ["a"], ["b"])
        assert codes_l[0] == codes_r[0]  # 1 == 1.0
        assert codes_l[1] != codes_r[1]  # 2 != 2.5

    def test_nulls_never_match_even_each_other(self):
        left = batch_of(a=[1, NULL])
        right = batch_of(b=[NULL, 1])
        codes_l, codes_r = joint_codes(left, right, ["a"], ["b"])
        assert codes_l[1] == -1 and codes_r[0] == -1

    def test_composite_keys(self):
        left = batch_of(a=[1, 1, 2], b=["x", "y", "x"])
        right = batch_of(c=[1, 2], d=["y", "x"])
        codes_l, codes_r = joint_codes(left, right, ["a", "b"], ["c", "d"])
        assert codes_l[1] == codes_r[0]  # (1, y)
        assert codes_l[2] == codes_r[1]  # (2, x)
        assert codes_l[0] not in set(codes_r.tolist())  # (1, x)

    def test_incomparable_kinds_delegate(self):
        # bool vs int keys need the row engine's group_key semantics
        left = batch_of(a=[True, False])
        right = batch_of(b=[1, 0])
        assert joint_codes(left, right, ["a"], ["b"]) is None

    def test_precision_risky_ints_delegate(self):
        left = batch_of(a=[2**53 + 1])
        right = batch_of(b=[1.5])
        assert joint_codes(left, right, ["a"], ["b"]) is None


class TestEquiMatch:
    def test_pairs_match_brute_force(self):
        rng = np.random.default_rng(7)
        codes_l = rng.integers(-1, 5, size=40)
        codes_r = rng.integers(-1, 5, size=30)
        li, ri = equi_match(codes_l, codes_r)
        got = set(zip(li.tolist(), ri.tolist()))
        want = {
            (i, j)
            for i in range(len(codes_l))
            for j in range(len(codes_r))
            if codes_l[i] == codes_r[j] and codes_l[i] >= 0
        }
        assert got == want

    def test_pair_order_is_probe_major(self):
        li, _ = equi_match(np.array([3, 1, 3]), np.array([3, 1, 3]))
        assert li.tolist() == sorted(li.tolist())

    def test_probe_match_positions_are_morsel_local(self):
        codes_r = np.array([5, 7])
        sorted_codes, build_rows = build_side(codes_r)
        li, ri = probe_match(sorted_codes, build_rows, np.array([7, 5]))
        assert li.tolist() == [0, 1]
        assert ri.tolist() == [1, 0]

    def test_null_probe_codes_find_nothing(self):
        sorted_codes, build_rows = build_side(np.array([0, 1, 2]))
        li, ri = probe_match(sorted_codes, build_rows, np.array([-1, -1]))
        assert len(li) == 0 and len(ri) == 0

    def test_null_partition_placement(self):
        parts = hash_partitions(np.array([-1, 0, 1, 2, 3]), 2)
        # numpy's -1 % 2 == 1: NULL rows ride in the last partition
        assert 0 in parts[1].tolist()


class TestKernelEquivalence:
    """Forced-partition parallel kernels == sequential kernels."""

    def _random_sides(self, seed, n_left=23, n_right=17):
        rng = np.random.default_rng(seed)
        def col(n, null_rate=0.2):
            vals = rng.integers(0, 6, size=n).tolist()
            return [
                NULL if rng.random() < null_rate else v for v in vals
            ]
        left = batch_of(a=col(n_left), p=col(n_left, 0.0))
        right = batch_of(b=col(n_right), q=col(n_right, 0.0))
        return left, right

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_hash_join(self, seed, threads):
        from repro.engine import parallel

        left, right = self._random_sides(seed)
        seq = kernels.hash_join(left, right, ["a"], ["b"])
        par = parallel.hash_join(forced(threads), left, right, ["a"], ["b"])
        assert rows(par) == rows(seq)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_left_outer_hash_join(self, seed, threads):
        from repro.engine import parallel

        left, right = self._random_sides(seed)
        seq = kernels.left_outer_hash_join(left, right, ["a"], ["b"])
        par = parallel.left_outer_hash_join(
            forced(threads), left, right, ["a"], ["b"]
        )
        assert rows(par) == rows(seq)

    @pytest.mark.parametrize("negate", [False, True])
    @pytest.mark.parametrize("threads", [1, 3])
    def test_existence_joins(self, negate, threads):
        from repro.engine import parallel

        left, right = self._random_sides(5)
        which = "anti_join" if negate else "semi_join"
        seq = getattr(kernels, which)(left, right, ["a"], ["b"])
        par = getattr(parallel, which)(
            forced(threads), left, right, ["a"], ["b"]
        )
        assert rows(par) == rows(seq)

    @pytest.mark.parametrize("threads", [1, 3])
    def test_residual_filtering(self, threads):
        from repro.engine import parallel

        left, right = self._random_sides(9)
        residual = Comparison("<", Col("p"), Col("q"))
        seq = kernels.hash_join(left, right, ["a"], ["b"], residual)
        par = parallel.hash_join(
            forced(threads), left, right, ["a"], ["b"], residual
        )
        assert rows(par) == rows(seq)

    def test_empty_probe_side_delegates(self):
        from repro.engine import parallel

        left = batch_of(a=[], p=[])
        right = batch_of(b=[1, 2], q=[3, 4])
        out = parallel.hash_join(forced(), left, right, ["a"], ["b"])
        assert len(out) == 0

    def test_incomparable_keys_fall_back_sequential(self):
        from repro.engine import parallel

        left = batch_of(a=[True, False], p=[1, 2])
        right = batch_of(b=[1, 0], q=[3, 4])
        seq = kernels.hash_join(left, right, ["a"], ["b"])
        par = parallel.hash_join(forced(), left, right, ["a"], ["b"])
        assert rows(par) == rows(seq)

    @pytest.mark.parametrize("threads", [1, 3])
    def test_cross_join(self, threads):
        from repro.engine import parallel

        left = batch_of(a=[1, 2, 3, NULL, 5])
        right = batch_of(b=[10, 20])
        seq = kernels.cross_join(left, right)
        par = parallel.cross_join(forced(threads), left, right)
        assert rows(par) == rows(seq)

    @pytest.mark.parametrize("threads", [1, 3])
    def test_filter(self, threads):
        from repro.engine import parallel

        batch = batch_of(a=[1, NULL, 3, 4, 0, 2])
        pred = Comparison(">", Col("a"), Col("a"))  # never true
        seq = kernels.filter_batch(batch, pred)
        par = parallel.filter_batch(forced(threads), batch, pred)
        assert rows(par) == rows(seq)


class TestScheduler:
    def test_small_inputs_stay_sequential(self):
        sched = MorselScheduler(threads=4, min_partition_rows=100)
        assert sched.sequential(99)
        assert not sched.sequential(100)

    def test_partition_count_caps_at_threads(self):
        sched = MorselScheduler(threads=4, min_partition_rows=10)
        assert sched.partition_count(1000) == 4
        assert sched.partition_count(25) == 2
        assert sched.partition_count(5) == 1

    def test_zero_threads_rejected(self):
        # threads=0 used to silently mean "sequential"; it is now a
        # config error
        from repro.errors import InvalidArgumentError

        with pytest.raises(InvalidArgumentError):
            MorselScheduler(threads=0, min_partition_rows=1)

    def test_one_worker_still_partitions(self):
        # the codes kernels win even single-threaded, so threads=1 is
        # not a sequential spelling — only small inputs are
        sched = MorselScheduler(threads=1, min_partition_rows=100)
        assert not sched.sequential(1000)
        assert sched.sequential(99)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "7")
        monkeypatch.setenv("REPRO_MIN_PARTITION_ROWS", "13")
        assert default_threads() == 7
        assert default_min_partition_rows() == 13
        sched = MorselScheduler()
        assert sched.threads == 7 and sched.min_partition_rows == 13

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        monkeypatch.delenv("REPRO_MIN_PARTITION_ROWS", raising=False)
        assert default_threads() >= 1
        assert default_min_partition_rows() == DEFAULT_MIN_PARTITION_ROWS

    def test_set_threads_rejects_bad_counts(self):
        # negative counts used to be silently clamped to 1; they are
        # now a config error, and good counts still apply
        from repro.errors import InvalidArgumentError

        backend = ParallelVectorBackend(threads=4)
        with pytest.raises(InvalidArgumentError):
            backend.set_threads(-3)
        assert backend.threads == 4
        backend.set_threads(2)
        assert backend.threads == 2


SQL = (
    "select o_orderkey from orders where o_totalprice > all "
    "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
)


class TestBackendEndToEnd:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_sequential_vector_backend(
        self, tiny_tpch_nulls, threads
    ):
        from repro.core.compute import NestedRelationalStrategy

        prepared = repro.connect(tiny_tpch_nulls).prepare(SQL)
        seq = prepared.execute(
            strategy=NestedRelationalStrategy(backend=VectorBackend())
        )
        par = prepared.execute(
            strategy=NestedRelationalStrategy(
                backend=ParallelVectorBackend(
                    threads=threads, min_partition_rows=1
                )
            )
        )
        assert par.sorted() == seq.sorted()

    def test_registered_strategy_resolves(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        out = prepared.execute(strategy="nested-relational-parallel")
        reference = prepared.execute(strategy="nested-relational")
        assert out.sorted() == reference.sorted()

    def test_morsel_spans_in_trace(self, tiny_tpch):
        from repro.core.compute import NestedRelationalStrategy

        strategy = NestedRelationalStrategy(
            backend=ParallelVectorBackend(threads=2, min_partition_rows=1)
        )
        with collect() as m:
            result, trace = repro.connect(tiny_tpch).prepare(SQL).trace(
                strategy=strategy
            )
        morsels = [
            s for s in trace.root.walk() if s.kind == KIND_MORSEL
        ]
        assert morsels, "forced partitioning must emit morsel spans"
        assert all(s.name.startswith("morsel[") for s in morsels)
        assert not trace_invariant_violations(trace)
        assert not reconcile_with_metrics(trace, m.counters)

    def test_small_inputs_emit_no_morsel_spans(self, tiny_tpch):
        # inputs below the partitioning threshold delegate to the
        # sequential kernels: no par- wrappers, no morsel spans
        from repro.core.compute import NestedRelationalStrategy

        strategy = NestedRelationalStrategy(
            backend=ParallelVectorBackend(
                threads=2, min_partition_rows=10**6
            )
        )
        _, trace = repro.connect(tiny_tpch).prepare(SQL).trace(
            strategy=strategy
        )
        assert not [
            s for s in trace.root.walk() if s.kind == KIND_MORSEL
        ]

    def test_metrics_totals_match_sequential(self, tiny_tpch):
        # separate uncached sessions: the reduce cache would otherwise
        # skip the second run's scans and skew the totals
        from repro.core.compute import NestedRelationalStrategy

        with collect() as seq_m:
            repro.connect(tiny_tpch, plan_cache=False).prepare(SQL).execute(
                strategy=NestedRelationalStrategy(backend=VectorBackend())
            )
        with collect() as par_m:
            repro.connect(tiny_tpch, plan_cache=False).prepare(SQL).execute(
                strategy=NestedRelationalStrategy(
                    backend=ParallelVectorBackend(
                        threads=3, min_partition_rows=1
                    )
                )
            )
        for key in ("hash_build_rows", "hash_probes", "rows_out"):
            assert par_m.counters.get(key, 0) == seq_m.counters.get(key, 0)
