"""Unit tests for the columnar batch engine.

Covers the :class:`Vector`/:class:`Batch` data layout (NULL bitmaps,
kind inference, padding gathers), the three-valued expression kernels,
the join kernels' NULL-key semantics, the two group-factorization
methods, and — end to end — the full linking-operator matrix evaluated
under the vector backend against the tuple-iteration oracle on the
paper's R/S/T data.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.engine import NULL, Column, Schema
from repro.engine.expressions import And, Col, Comparison, Literal, Not, Or
from repro.engine.metrics import collect
from repro.engine.trace import (
    reconcile_with_metrics,
    trace_invariant_violations,
)
from repro.engine.vector import Batch, Vector
from repro.engine.vector import kernels
from repro.engine.vector.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJ,
    KIND_STR,
)
from repro.engine.vector.exprs import eval_truth


def batch_of(**cols) -> Batch:
    """A test batch from ``name=[values]`` keyword columns."""
    names = list(cols)
    vectors = [Vector.from_values(cols[n]) for n in names]
    n = len(next(iter(cols.values()))) if cols else 0
    return Batch(Schema([Column(n) for n in names]), vectors, n)


class TestVector:
    def test_kind_inference(self):
        assert Vector.from_values([1, 2, 3]).kind == KIND_INT
        assert Vector.from_values([1, 2.5]).kind == KIND_FLOAT
        assert Vector.from_values([True, False]).kind == KIND_BOOL
        assert Vector.from_values(["a", "bb"]).kind == KIND_STR
        assert Vector.from_values([True, 1]).kind == KIND_OBJ

    def test_nulls_are_out_of_band(self):
        v = Vector.from_values([1, NULL, 3])
        assert v.kind == KIND_INT
        assert v.valid.tolist() == [True, False, True]
        assert v.tolist_sql() == [1, NULL, 3]

    def test_int64_overflow_falls_back_to_objects(self):
        big = 2**70
        v = Vector.from_values([1, big])
        assert v.kind == KIND_OBJ
        assert v.tolist_sql() == [1, big]

    def test_from_scalar_keeps_full_string_width(self):
        # np.full(..., dtype=str) would truncate to one character
        v = Vector.from_scalar("1993-01-01", 3)
        assert v.tolist_sql() == ["1993-01-01"] * 3

    def test_take_padded_nulls_negative_positions(self):
        v = Vector.from_values([10, 20, 30])
        out = v.take_padded(np.array([2, -1, 0]))
        assert out.tolist_sql() == [30, NULL, 10]

    def test_take_padded_from_empty_source(self):
        v = Vector.from_values([])
        out = v.take_padded(np.array([-1, -1]))
        assert out.tolist_sql() == [NULL, NULL]

    def test_vstack_promotes_int_and_float(self):
        out = Vector.vstack(
            Vector.from_values([1, 2]), Vector.from_values([0.5])
        )
        assert out.kind == KIND_FLOAT
        assert out.tolist_sql() == [1.0, 2.0, 0.5]

    def test_vstack_all_null_side_adopts_other_kind(self):
        out = Vector.vstack(
            Vector.nulls(KIND_INT, 2), Vector.from_values(["x"])
        )
        assert out.tolist_sql() == [NULL, NULL, "x"]

    def test_join_keys_numeric_collision_bool_distinct(self):
        # same normalization as the row engine's group_key
        ints = Vector.from_values([2, 1, NULL]).join_keys()
        floats = Vector.from_values([2.0, 1.0, 3.0]).join_keys()
        bools = Vector.from_values([True, False, True]).join_keys()
        assert ints[0] == floats[0]
        assert ints[2] is None
        assert bools[0] != ints[1]

    def test_codes_group_nulls_together(self):
        codes = Vector.from_values([5, NULL, 5, NULL, 7]).codes()
        assert codes[0] == codes[2]
        assert codes[1] == codes[3] == 0
        assert codes[4] not in (codes[0], 0)


class TestBatch:
    def test_relation_roundtrip_with_nulls(self, paper_db):
        rel = paper_db.relation("R")
        assert Batch.from_relation(rel).to_relation() == rel

    def test_project_and_column(self):
        b = batch_of(a=[1, 2], b=["x", "y"])
        assert b.project(["b"]).to_relation().rows == [("x",), ("y",)]
        assert b.column("a").tolist_sql() == [1, 2]


class TestExprTruth:
    def masks(self, expr, **cols):
        t, f = eval_truth(expr, batch_of(**cols))
        return t.tolist(), f.tolist()

    def test_comparison_with_null_is_unknown(self):
        t, f = self.masks(
            Comparison("<", Col("a"), Literal(5)), a=[1, NULL, 9]
        )
        assert t == [True, False, False]
        assert f == [False, False, True]  # NULL row: neither true nor false

    def test_kleene_and_or_not(self):
        # UNKNOWN AND FALSE = FALSE; UNKNOWN OR TRUE = TRUE
        lt = Comparison("<", Col("a"), Literal(5))    # UNKNOWN on NULL
        false = Comparison("=", Col("b"), Literal(0))  # FALSE everywhere
        t, f = self.masks(And(lt, false), a=[NULL], b=[1])
        assert (t, f) == ([False], [True])
        true = Comparison("=", Col("b"), Literal(1))
        t, f = self.masks(Or(lt, true), a=[NULL], b=[1])
        assert (t, f) == ([True], [False])
        t, f = self.masks(Not(lt), a=[NULL], b=[1])
        assert (t, f) == ([False], [False])  # NOT UNKNOWN = UNKNOWN

    def test_mixed_int_float_comparison(self):
        t, _f = self.masks(
            Comparison("=", Col("a"), Literal(2.0)), a=[2, 3]
        )
        assert t == [True, False]


class TestJoinKernels:
    def test_null_keys_never_match(self):
        with collect():
            out = kernels.hash_join(
                batch_of(a=[1, NULL, 2]), batch_of(b=[1, NULL]), ["a"], ["b"]
            )
        assert out.to_relation().rows == [(1, 1)]

    def test_left_outer_join_pads_rid_with_null(self):
        left = batch_of(a=[1, 2])
        right = batch_of(b=[1], rid=[0])
        with collect():
            out = kernels.left_outer_hash_join(left, right, ["a"], ["b"])
        rows = sorted(out.to_relation().rows)
        assert rows == [(1, 1, 0), (2, NULL, NULL)]  # pk-is-NULL marker

    def test_semi_and_anti_partition_left(self):
        left = batch_of(a=[1, 2, NULL])
        right = batch_of(b=[2, 2])
        with collect():
            semi = kernels.semi_join(left, right, ["a"], ["b"])
            anti = kernels.anti_join(left, right, ["a"], ["b"])
        assert semi.to_relation().rows == [(2,)]
        assert sorted(anti.to_relation().rows, key=repr) == [(1,), (NULL,)]

    def test_outer_cross_join_pads_only_when_right_empty(self):
        left = batch_of(a=[1, 2])
        with collect():
            padded = kernels.outer_cross_join(left, batch_of(b=[]))
            plain = kernels.outer_cross_join(left, batch_of(b=[7]))
        assert sorted(padded.to_relation().rows) == [(1, NULL), (2, NULL)]
        assert sorted(plain.to_relation().rows) == [(1, 7), (2, 7)]


class TestGrouping:
    @pytest.mark.parametrize(
        "cols",
        [
            {"a": [1, 2, 1, NULL, NULL, 2]},
            {"a": [1, 1.0, 2, True], "b": ["x", "x", "y", "x"]},
            {"a": [NULL] * 4, "b": [1, NULL, 1, NULL]},
            {"a": []},
        ],
    )
    def test_sorted_and_hash_methods_agree(self, cols):
        batch = batch_of(**cols)
        by = list(cols)
        ids_s, n_s = kernels.group_ids(batch, by, "sorted")
        ids_h, n_h = kernels.group_ids(batch, by, "hash")
        assert n_s == n_h
        # same partition, possibly different labels
        relabel = {}
        for s, h in zip(ids_s.tolist(), ids_h.tolist()):
            assert relabel.setdefault(s, h) == h

    def test_numeric_equivalence_groups_int_with_float(self):
        ids, n = kernels.group_ids(batch_of(a=[2, 2.0, 3]), ["a"], "sorted")
        assert n == 2
        assert ids[0] == ids[1] != ids[2]

    def test_first_occurrences(self):
        ids = np.array([0, 1, 0, 2, 1])
        assert kernels.first_occurrences(ids, 3).tolist() == [0, 1, 3]


#: one query per linking operator over the paper's R/S/T relations —
#: NULLs sit in the linking columns, the correlation columns and (via
#: the outer join) the synthetic _rid pk, so every branch of the
#: pk-is-NULL convention is exercised under the columnar backend.
LINKING_MATRIX = [
    pytest.param(
        "select A, D from R where exists"
        " (select E from S where F = B)",
        id="EXISTS",
    ),
    pytest.param(
        "select A, D from R where not exists"
        " (select E from S where F = B)",
        id="NOT-EXISTS",
    ),
    pytest.param(
        "select A, D from R where A in"
        " (select E from S where F = B)",
        id="IN",
    ),
    pytest.param(
        "select A, D from R where A not in"
        " (select E from S where F = B)",
        id="NOT-IN",
    ),
    pytest.param(
        "select A, D from R where A < some"
        " (select E from S where F = B)",
        id="theta-SOME",
    ),
    pytest.param(
        "select A, D from R where A >= all"
        " (select E from S where F = B)",
        id="theta-ALL",
    ),
    pytest.param(
        "select A, D from R where A > all"
        " (select E from S where F = B and exists"
        "  (select J from T where K = G))",
        id="two-level-ALL-EXISTS",
    ),
    pytest.param(
        "select A from R where not exists"
        " (select E from S where F = B and H not in"
        "  (select J from T where K = G))",
        id="two-level-NOT-EXISTS-NOT-IN",
    ),
    pytest.param(
        "select A, D from R where A in (select E from S)",
        id="uncorrelated-IN",
    ),
    pytest.param(
        "select A, D from R where A <= all (select J from T where J > 10)",
        id="uncorrelated-ALL-empty-set",
    ),
]


class TestVectorLinkingMatrix:
    @pytest.mark.parametrize("sql", LINKING_MATRIX)
    def test_matches_oracle_with_valid_trace(self, paper_db, sql):
        prepared = repro.connect(paper_db).prepare(sql)
        oracle = prepared.execute(strategy="nested-iteration").sorted()
        with collect() as metrics:
            result, trace = prepared.trace(backend="vector")
        assert result.sorted() == oracle
        assert trace_invariant_violations(
            trace, result_cardinality=len(result)
        ) == []
        assert reconcile_with_metrics(trace, metrics.snapshot()) == []

    @pytest.mark.parametrize("nest_impl", ["sorted", "hash"])
    def test_both_nest_impls_agree(self, paper_db, nest_impl):
        from repro.engine.vector import VectorizedNestedRelationalStrategy

        sql = (
            "select A, D from R where A >= all"
            " (select E from S where F = B)"
        )
        prepared = repro.connect(paper_db).prepare(sql)
        oracle = prepared.execute(strategy="nested-iteration").sorted()
        impl = VectorizedNestedRelationalStrategy(nest_impl=nest_impl)
        assert prepared.execute(strategy=impl).sorted() == oracle
