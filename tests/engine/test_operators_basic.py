"""Unit tests for the unary physical operators."""

import pytest

from repro.engine.expressions import Col, Comparison, Literal, cmp
from repro.engine.operators import (
    Distinct,
    Filter,
    Limit,
    Map,
    Project,
    Rename,
    Sort,
    as_operator,
    as_relation,
)
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import NULL
from repro.errors import ExecutionError


def rel(rows):
    return Relation(Schema.of("a", "b", table="t"), rows)


class TestFilter:
    def test_keeps_only_definitely_true(self):
        """FALSE and UNKNOWN rows are both filtered out (SQL WHERE)."""
        r = rel([(1, 1), (2, 1), (NULL, 1)])
        out = Filter(r, cmp("t.a", "=", 1)).materialize()
        assert out.rows == [(1, 1)]

    def test_schema_preserved(self):
        out = Filter(rel([]), cmp("t.a", "=", 1))
        assert out.schema.names == ("t.a", "t.b")


class TestProject:
    def test_reorder(self):
        out = Project(rel([(1, 2)]), ["t.b", "t.a"]).materialize()
        assert out.rows == [(2, 1)]

    def test_bag_semantics(self):
        out = Project(rel([(1, 2), (1, 3)]), ["t.a"]).materialize()
        assert out.rows == [(1,), (1,)]


class TestMap:
    def test_computes_expressions(self):
        from repro.engine.expressions import Arith

        out = Map(
            rel([(1, 2)]),
            [Arith("+", Col("t.a"), Col("t.b"))],
            [Column("total")],
        ).materialize()
        assert out.rows == [(3,)]

    def test_arity_check(self):
        with pytest.raises(ExecutionError):
            Map(rel([]), [Literal(1)], [Column("x"), Column("y")])


class TestDistinct:
    def test_nulls_grouped(self):
        out = Distinct(rel([(NULL, 1), (NULL, 1), (2, 1)])).materialize()
        assert len(out) == 2

    def test_numeric_unification(self):
        out = Distinct(rel([(1, 0), (1.0, 0)])).materialize()
        assert len(out) == 1


class TestLimit:
    def test_limits(self):
        out = Limit(rel([(i, 0) for i in range(10)]), 3).materialize()
        assert len(out) == 3

    def test_zero(self):
        out = Limit(rel([(1, 0)]), 0).materialize()
        assert len(out) == 0


class TestRename:
    def test_requalifies(self):
        out = Rename(rel([(1, 2)]), "x").materialize()
        assert out.schema.names == ("x.a", "x.b")


class TestSort:
    def test_orders_with_nulls_first(self):
        out = Sort(rel([(2, 0), (NULL, 0), (1, 0)]), ["t.a"]).materialize()
        assert out.rows == [(NULL, 0), (1, 0), (2, 0)]

    def test_descending(self):
        out = Sort(rel([(2, 0), (1, 0)]), ["t.a"], descending=True).materialize()
        assert out.rows == [(2, 0), (1, 0)]

    def test_multi_key(self):
        out = Sort(rel([(1, 2), (1, 1), (0, 9)]), ["t.a", "t.b"]).materialize()
        assert out.rows == [(0, 9), (1, 1), (1, 2)]


class TestCoercion:
    def test_as_operator_roundtrip(self):
        r = rel([(1, 2)])
        assert as_relation(as_operator(r)) == r

    def test_as_operator_rejects_junk(self):
        with pytest.raises(ExecutionError):
            as_operator(42)

    def test_operator_chain(self):
        r = rel([(1, 2), (2, 2), (3, 3)])
        out = as_relation(
            Project(Filter(r, Comparison("=", Col("t.b"), Literal(2))), ["t.a"])
        )
        assert out.rows == [(1,), (2,)]
