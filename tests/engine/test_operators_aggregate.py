"""Unit tests for grouping, aggregation and Boolean aggregates."""

import pytest

from repro.engine.expressions import Col, Comparison, Literal
from repro.engine.operators import AggSpec, GroupAggregate, scalar_aggregate
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL, is_null
from repro.errors import ExecutionError


def rel(rows):
    return Relation(Schema.of("g", "v", table="t"), rows)


DATA = rel([(1, 10), (1, 20), (1, NULL), (2, 5), (3, NULL)])


def run(group_refs, specs, data=DATA):
    return GroupAggregate(data, group_refs, specs).run()


class TestBasicAggregates:
    def test_count_ignores_nulls(self):
        out = run(["t.g"], [AggSpec("count", "t.v", name="c")])
        by_group = {row[0]: row[1] for row in out.rows}
        assert by_group == {1: 2, 2: 1, 3: 0}

    def test_count_star_counts_rows(self):
        out = run(["t.g"], [AggSpec("count_star", name="c")])
        by_group = {row[0]: row[1] for row in out.rows}
        assert by_group == {1: 3, 2: 1, 3: 1}

    def test_sum_min_max_avg(self):
        out = run(
            ["t.g"],
            [
                AggSpec("sum", "t.v", name="s"),
                AggSpec("min", "t.v", name="mn"),
                AggSpec("max", "t.v", name="mx"),
                AggSpec("avg", "t.v", name="av"),
            ],
        )
        row1 = next(r for r in out.rows if r[0] == 1)
        assert row1[1:] == (30, 10, 20, 15.0)

    def test_all_null_group_yields_null(self):
        out = run(["t.g"], [AggSpec("max", "t.v", name="m")])
        row3 = next(r for r in out.rows if r[0] == 3)
        assert is_null(row3[1])

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            run(["t.g"], [AggSpec("median", "t.v", name="m")])


class TestGrouping:
    def test_null_group_key(self):
        data = rel([(NULL, 1), (NULL, 2), (1, 3)])
        out = GroupAggregate(data, ["t.g"], [AggSpec("count_star", name="c")]).run()
        assert len(out) == 2

    def test_no_grouping_single_row(self):
        out = run([], [AggSpec("count_star", name="c")])
        assert len(out) == 1
        assert out.rows[0][0] == 5

    def test_group_order_is_first_seen(self):
        out = run(["t.g"], [AggSpec("count_star", name="c")])
        assert [row[0] for row in out.rows] == [1, 2, 3]


class TestBooleanAggregates:
    def test_bool_and_three_valued(self):
        pred = Comparison(">", Col("t.v"), Literal(0))
        out = run(["t.g"], [AggSpec("bool_and", predicate=pred, name="b")])
        by_group = {row[0]: row[1] for row in out.rows}
        assert is_null(by_group[1])  # TRUE & TRUE & UNKNOWN
        assert by_group[2] is True
        assert is_null(by_group[3])

    def test_bool_or_three_valued(self):
        pred = Comparison(">", Col("t.v"), Literal(15))
        out = run(["t.g"], [AggSpec("bool_or", predicate=pred, name="b")])
        by_group = {row[0]: row[1] for row in out.rows}
        assert by_group[1] is True  # 20 > 15 dominates the UNKNOWN
        assert by_group[2] is False
        assert is_null(by_group[3])

    def test_bool_agg_requires_predicate(self):
        with pytest.raises(ExecutionError):
            run(["t.g"], [AggSpec("bool_and", name="b")])


class TestScalarAggregate:
    def test_on_rows(self):
        assert scalar_aggregate(DATA, AggSpec("count", "t.v")) == 3

    def test_on_empty_relation(self):
        empty = rel([])
        assert scalar_aggregate(empty, AggSpec("count", "t.v")) == 0
        assert is_null(scalar_aggregate(empty, AggSpec("max", "t.v")))
