"""Unit tests for expression evaluation under three-valued logic."""

import pytest

from repro.engine.expressions import (
    And,
    Arith,
    Between,
    Col,
    Comparison,
    EvalContext,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    cmp,
    conjoin,
    eq,
    split_conjuncts,
    truth,
)
from repro.engine.schema import Schema
from repro.engine.types import FALSE, NULL, TRUE, UNKNOWN
from repro.errors import ExpressionError


SCHEMA = Schema.of("a", "b", table="t")


def ctx(a, b):
    return EvalContext.single(SCHEMA, (a, b))


class TestColumnResolution:
    def test_lookup(self):
        assert Col("t.a").evaluate(ctx(7, 8)) == 7

    def test_bare_name(self):
        assert Col("b").evaluate(ctx(7, 8)) == 8

    def test_unresolved(self):
        with pytest.raises(ExpressionError, match="unresolved"):
            Col("t.z").evaluate(ctx(1, 2))

    def test_inner_frame_shadows_outer(self):
        outer = EvalContext.single(Schema.of("a", table="o"), (100,))
        inner = outer.push(SCHEMA, (1, 2))
        assert Col("a").evaluate(inner) == 1  # innermost wins (bare name)
        assert Col("o.a").evaluate(inner) == 100

    def test_correlation_reaches_outer_frame(self):
        outer = EvalContext.single(Schema.of("x", table="o"), (42,))
        inner = outer.push(SCHEMA, (1, 2))
        assert Col("o.x").evaluate(inner) == 42

    def test_resolvable(self):
        c = ctx(1, 2)
        assert c.resolvable("t.a")
        assert not c.resolvable("nope")


class TestComparisonExpr:
    def test_true_false(self):
        assert Comparison("<", Col("t.a"), Col("t.b")).evaluate(ctx(1, 2)) is TRUE
        assert Comparison(">", Col("t.a"), Col("t.b")).evaluate(ctx(1, 2)) is FALSE

    def test_null_gives_unknown(self):
        assert Comparison("=", Col("t.a"), Literal(1)).evaluate(ctx(NULL, 2)) is UNKNOWN

    def test_negated(self):
        c = Comparison("<", Col("t.a"), Col("t.b"))
        assert c.negated().op == ">="

    def test_columns_collected(self):
        c = Comparison("<", Col("t.a"), Col("t.b"))
        assert c.columns() == ["t.a", "t.b"]


class TestLogicalExpr:
    def test_and_unknown_absorbs(self):
        e = And(cmp("t.a", "=", 1), cmp("t.b", "=", 2))
        assert e.evaluate(ctx(1, NULL)) is UNKNOWN
        assert e.evaluate(ctx(0, NULL)) is FALSE

    def test_or_unknown(self):
        e = Or(cmp("t.a", "=", 1), cmp("t.b", "=", 2))
        assert e.evaluate(ctx(1, NULL)) is TRUE
        assert e.evaluate(ctx(0, NULL)) is UNKNOWN

    def test_not_unknown(self):
        e = Not(cmp("t.a", "=", 1))
        assert e.evaluate(ctx(NULL, 0)) is UNKNOWN

    def test_combinators(self):
        e = cmp("t.a", "=", 1).and_(cmp("t.b", "=", 2))
        assert e.evaluate(ctx(1, 2)) is TRUE
        assert cmp("t.a", "=", 1).negate().evaluate(ctx(1, 0)) is FALSE


class TestIsNullExpr:
    def test_is_null_two_valued(self):
        assert IsNull(Col("t.a")).evaluate(ctx(NULL, 1)) is TRUE
        assert IsNull(Col("t.a")).evaluate(ctx(5, 1)) is FALSE

    def test_is_not_null(self):
        assert IsNull(Col("t.a"), negated=True).evaluate(ctx(NULL, 1)) is FALSE


class TestBetweenExpr:
    def test_inclusive(self):
        e = Between(Col("t.a"), Literal(1), Literal(3))
        assert e.evaluate(ctx(1, 0)) is TRUE
        assert e.evaluate(ctx(3, 0)) is TRUE
        assert e.evaluate(ctx(4, 0)) is FALSE

    def test_null_operand(self):
        e = Between(Col("t.a"), Literal(1), Literal(3))
        assert e.evaluate(ctx(NULL, 0)) is UNKNOWN

    def test_null_bound_partial(self):
        # a BETWEEN null AND 3 with a=5: a>=null UNKNOWN, a<=3 FALSE -> FALSE
        e = Between(Col("t.a"), Literal(NULL), Literal(3))
        assert e.evaluate(ctx(5, 0)) is FALSE


class TestInListExpr:
    def test_membership(self):
        e = InList(Col("t.a"), (Literal(1), Literal(2)))
        assert e.evaluate(ctx(2, 0)) is TRUE
        assert e.evaluate(ctx(3, 0)) is FALSE

    def test_null_in_list_semantics(self):
        """x NOT IN (1, NULL) is UNKNOWN unless x matches a literal."""
        e = InList(Col("t.a"), (Literal(1), Literal(NULL)), negated=True)
        assert e.evaluate(ctx(1, 0)) is FALSE
        assert e.evaluate(ctx(2, 0)) is UNKNOWN


class TestArithExpr:
    def test_basic(self):
        e = Arith("+", Col("t.a"), Literal(10))
        assert e.evaluate(ctx(5, 0)) == 15

    def test_null_propagates(self):
        from repro.engine.types import is_null

        e = Arith("*", Col("t.a"), Literal(10))
        assert is_null(e.evaluate(ctx(NULL, 0)))

    def test_division_by_zero_null(self):
        from repro.engine.types import is_null

        e = Arith("/", Literal(1), Literal(0))
        assert is_null(e.evaluate(ctx(0, 0)))


class TestTruthCoercion:
    def test_null_value_is_unknown(self):
        assert truth(Literal(NULL), ctx(0, 0)) is UNKNOWN

    def test_bool_value(self):
        assert truth(Literal(True), ctx(0, 0)) is TRUE

    def test_non_bool_value_raises(self):
        with pytest.raises(ExpressionError):
            truth(Literal(5), ctx(0, 0))


class TestConjunctHelpers:
    def test_conjoin_empty_is_true(self):
        assert truth(conjoin([]), ctx(0, 0)) is TRUE

    def test_conjoin_single(self):
        e = conjoin([cmp("t.a", "=", 1)])
        assert e.evaluate(ctx(1, 0)) is TRUE

    def test_split_roundtrip(self):
        parts = [cmp("t.a", "=", 1), cmp("t.b", "=", 2), eq("t.a", "t.b")]
        assert split_conjuncts(conjoin(parts)) == parts

    def test_split_of_true_literal_is_empty(self):
        assert split_conjuncts(conjoin([])) == []
