"""Unit tests for the join operator family."""

import pytest

from repro.engine.expressions import Col, Comparison
from repro.engine.index import HashIndex
from repro.engine.operators import (
    AntiJoin,
    CrossJoin,
    HashJoin,
    IndexNestedLoopJoin,
    LeftOuterHashJoin,
    NestedLoopJoin,
    SemiJoin,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL, is_null
from repro.errors import ExecutionError


def left_rel(rows):
    return Relation(Schema.of("k", "x", table="l"), rows)


def right_rel(rows):
    return Relation(Schema.of("k", "y", table="r"), rows)


L = left_rel([(1, "a"), (2, "b"), (NULL, "c")])
R = right_rel([(1, 10), (1, 11), (3, 30), (NULL, 99)])


class TestHashJoin:
    def test_matches(self):
        out = HashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert sorted(out.rows) == [(1, "a", 1, 10), (1, "a", 1, 11)]

    def test_null_keys_never_match(self):
        """NULL = NULL is UNKNOWN, so NULL keys join with nothing."""
        out = HashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert not any(is_null(row[0]) for row in out.rows)

    def test_residual(self):
        residual = Comparison(">", Col("r.y"), Col("r.k"))
        out = HashJoin(L, R, ["l.k"], ["r.k"], residual=residual).materialize()
        assert len(out) == 2  # both (1,10) and (1,11) satisfy y > k

    def test_key_arity_mismatch(self):
        with pytest.raises(ExecutionError):
            HashJoin(L, R, ["l.k"], [])


class TestLeftOuterHashJoin:
    def test_unmatched_left_padded(self):
        out = LeftOuterHashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        padded = [row for row in out.rows if is_null(row[2])]
        # l.k=2 has no match; l.k=NULL never matches: both padded
        assert len(padded) == 2
        assert all(is_null(row[3]) for row in padded)

    def test_every_left_row_survives(self):
        out = LeftOuterHashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        left_keys = [row[:2] for row in out.rows]
        for row in L.rows:
            assert row in left_keys

    def test_residual_failure_pads(self):
        """A row matching on keys but failing the residual is padded —
        the residual belongs to the join condition, not a later filter."""
        residual = Comparison(">", Col("r.y"), Col("l.x_len"))
        left = Relation(Schema.of("k", "x_len", table="l"), [(1, 100)])
        out = LeftOuterHashJoin(left, R, ["l.k"], ["r.k"], residual=residual).materialize()
        assert len(out) == 1
        assert is_null(out.rows[0][2])

    def test_no_equi_keys_degrades_to_scan(self):
        residual = Comparison("<>", Col("l.k"), Col("r.k"))
        out = LeftOuterHashJoin(L, R, [], [], residual=residual).materialize()
        # l.k=1 pairs with r.k=3; l.k=2 with r.k in {1,1,3}; NULL pads
        counts = {}
        for row in out.rows:
            counts[row[1]] = counts.get(row[1], 0) + 1
        assert counts["a"] == 1 and counts["b"] == 3 and counts["c"] == 1


class TestSemiAntiJoin:
    def test_semijoin(self):
        out = SemiJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert out.rows == [(1, "a")]

    def test_antijoin(self):
        out = AntiJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert sorted(out.rows, key=str) == [(2, "b"), (NULL, "c")]

    def test_antijoin_null_key_kept(self):
        """An antijoin keeps NULL-key left rows — one of the reasons the
        NOT IN rewrite is unsound (SQL would say UNKNOWN)."""
        out = AntiJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert any(is_null(row[0]) for row in out.rows)

    def test_semijoin_no_duplicates(self):
        out = SemiJoin(L, R, ["l.k"], ["r.k"]).materialize()
        assert len(out) == 1  # two matches, one output row


class TestCrossJoin:
    def test_product(self):
        out = CrossJoin(left_rel([(1, "a")]), right_rel([(1, 1), (2, 2)])).materialize()
        assert len(out) == 2

    def test_empty_right(self):
        out = CrossJoin(L, right_rel([])).materialize()
        assert len(out) == 0


class TestNestedLoopJoin:
    def test_theta_join(self):
        pred = Comparison("<", Col("l.k"), Col("r.k"))
        out = NestedLoopJoin(L, R, predicate=pred).materialize()
        assert sorted(out.rows) == [(1, "a", 3, 30), (2, "b", 3, 30)]

    def test_outer_variant_pads(self):
        pred = Comparison("<", Col("l.k"), Col("r.k"))
        out = NestedLoopJoin(L, R, predicate=pred, outer=True).materialize()
        padded = [row for row in out.rows if is_null(row[2])]
        assert len(padded) == 1  # the NULL-key left row


class TestIndexNestedLoopJoin:
    def test_probe(self):
        index = HashIndex(R, ["r.k"])
        out = IndexNestedLoopJoin(L, index, ["l.k"]).materialize()
        assert len(out) == 2

    def test_probe_with_residual(self):
        index = HashIndex(R, ["r.k"])
        residual = Comparison("=", Col("r.y"), Col("r.y"))
        out = IndexNestedLoopJoin(L, index, ["l.k"], residual=residual).materialize()
        assert len(out) == 2

    def test_outer_pads(self):
        index = HashIndex(R, ["r.k"])
        out = IndexNestedLoopJoin(L, index, ["l.k"], outer=True).materialize()
        assert len(out) == 4  # 2 matches + 2 padded


class TestEquivalences:
    """Hash-based and nested-loop implementations must agree."""

    def test_hash_vs_nested_loop(self):
        pred = Comparison("=", Col("l.k"), Col("r.k"))
        hash_out = HashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        nl_out = NestedLoopJoin(L, R, predicate=pred).materialize()
        assert hash_out == nl_out

    def test_outer_hash_vs_outer_nested_loop(self):
        pred = Comparison("=", Col("l.k"), Col("r.k"))
        hash_out = LeftOuterHashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        nl_out = NestedLoopJoin(L, R, predicate=pred, outer=True).materialize()
        assert hash_out == nl_out

    def test_semijoin_is_distinct_projection_of_join(self):
        join = HashJoin(L, R, ["l.k"], ["r.k"]).materialize()
        semi = SemiJoin(L, R, ["l.k"], ["r.k"]).materialize()
        left_width = len(L.schema)
        projected = {row[:left_width] for row in join.rows}
        assert set(semi.rows) == projected
