"""Unit tests for schemas and reference resolution."""

import pytest

from repro.engine.schema import Column, Schema, parse_ref
from repro.errors import SchemaError


def make() -> Schema:
    return Schema(
        [
            Column("a", table="r"),
            Column("b", table="r"),
            Column("a", table="s"),
            Column("c", table="s", not_null=True),
        ]
    )


class TestColumn:
    def test_qualified(self):
        assert Column("a", table="r").qualified == "r.a"
        assert Column("a").qualified == "a"

    def test_renamed_table_keeps_constraints(self):
        col = Column("a", table="r", not_null=True).renamed_table("x")
        assert col.qualified == "x.a"
        assert col.not_null

    def test_parse_ref(self):
        assert parse_ref("r.a") == ("r", "a")
        assert parse_ref("a") == (None, "a")


class TestResolution:
    def test_qualified_lookup(self):
        s = make()
        assert s.index_of("r.a") == 0
        assert s.index_of("s.a") == 2

    def test_bare_unique(self):
        s = make()
        assert s.index_of("b") == 1
        assert s.index_of("c") == 3

    def test_bare_ambiguous(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            make().index_of("a")

    def test_unknown(self):
        with pytest.raises(SchemaError, match="unknown"):
            make().index_of("r.zzz")

    def test_has(self):
        s = make()
        assert s.has("r.a")
        assert not s.has("a")  # ambiguous counts as not resolvable
        assert not s.has("zzz")

    def test_indices_of_preserves_order(self):
        s = make()
        assert s.indices_of(["s.c", "r.a"]) == (3, 0)

    def test_column_accessor(self):
        assert make().column("s.c").not_null


class TestConstruction:
    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", table="r"), Column("a", table="r")])

    def test_same_name_different_tables_ok(self):
        s = Schema([Column("a", table="r"), Column("a", table="s")])
        assert len(s) == 2

    def test_of_helper(self):
        s = Schema.of("x", "y", table="t")
        assert s.names == ("t.x", "t.y")

    def test_equality_and_hash(self):
        assert make() == make()
        assert hash(make()) == hash(make())


class TestDerivedSchemas:
    def test_concat(self):
        left = Schema.of("x", table="l")
        right = Schema.of("y", table="r")
        combined = left.concat(right)
        assert combined.names == ("l.x", "r.y")

    def test_concat_conflict(self):
        left = Schema.of("x", table="l")
        with pytest.raises(SchemaError):
            left.concat(left)

    def test_project_reorders(self):
        s = make()
        p = s.project(["s.c", "r.b"])
        assert p.names == ("s.c", "r.b")

    def test_rename_table(self):
        s = Schema.of("x", "y", table="t").rename_table("alias")
        assert s.names == ("alias.x", "alias.y")
