"""Unit tests for the span tracer (``repro.engine.trace``): tree
construction, cardinality contracts, close/unwind robustness, Metrics
attribution, rendering, and the serialized-form validator."""

from __future__ import annotations

import pytest

from repro.engine.expressions import cmp
from repro.engine.metrics import collect
from repro.engine.operators import Filter, Limit, Project, RelationSource
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL
from repro.engine.trace import (
    CONTRACT_EXPANDING,
    CONTRACT_FILTERING,
    CONTRACT_PRESERVING,
    TRACE_FORMAT_VERSION,
    Span,
    Tracer,
    current_tracer,
    op_span,
    reconcile_with_metrics,
    render_trace,
    trace_invariant_violations,
    tracing,
    validate_trace_dict,
)


def rel():
    """A four-row relation t(a, k), one NULL in a."""
    return Relation(
        Schema.of("a", "k", table="t"),
        [(1, 1), (2, 2), (NULL, 3), (4, 4)],
    )


KEEP_ALL = cmp("t.k", ">", 0)  # true for every row
DROP_NULL = cmp("t.a", ">", 0)  # true unless t.a is NULL


class TestAmbientTracer:
    def test_disabled_by_default(self):
        assert current_tracer() is None

    def test_scope_installs_and_restores(self):
        with tracing():
            assert current_tracer() is not None
        assert current_tracer() is None

    def test_scopes_nest(self):
        with tracing() as outer:
            first = current_tracer()
            with tracing() as inner:
                assert current_tracer() is not first
                with op_span("x"):
                    pass
            assert current_tracer() is first
        assert [s.name for s in inner.spans()] == ["x"]
        assert list(outer.spans()) == []

    def test_op_span_yields_none_when_disabled(self):
        with op_span("x") as span:
            assert span is None

    def test_finish_closes_leaked_spans(self):
        with tracing() as trace:
            tracer = current_tracer()
            tracer.open("leaked")
        assert all(s.closed for s in trace.spans())


class TestSpanTree:
    def test_nesting_follows_open_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["b", "c"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_trace_root_property(self):
        with tracing() as trace:
            with op_span("only"):
                pass
        assert trace.root is not None and trace.root.name == "only"
        with tracing() as trace:
            with op_span("a"):
                pass
            with op_span("b"):
                pass
        assert trace.root is None  # ambiguous forest

    def test_close_is_idempotent(self):
        span = Span("x")
        span._close()
        end = span.t_end
        span._close()
        assert span.t_end == end

    def test_late_close_does_not_pop_live_ancestors(self):
        """An abandoned input iterator may be finalized after its parent
        closed over it; that close must not unwind the live stack."""
        tracer = Tracer()
        outer = tracer.open("outer")
        inner = tracer.open("inner")
        tracer.close(outer)  # pops through inner
        live = tracer.open("live")
        tracer.close(inner)  # inner is long gone — must be a no-op
        assert tracer._stack == [live]
        tracer.close(live)
        assert tracer._stack == []

    def test_counters(self):
        span = Span("x")
        span.add("rows_out")
        span.add("rows_out", 2)
        span.set("hash_table_keys", 7)
        span.set_max("peak_group", 3)
        span.set_max("peak_group", 2)
        assert span.counters == {
            "rows_out": 3,
            "hash_table_keys": 7,
            "peak_group": 3,
        }


class TestOperatorIntegration:
    def test_pipeline_spans_mirror_operators(self):
        with collect():
            with tracing() as trace:
                op = Limit(
                    Project(Filter(rel(), DROP_NULL), ["t.a"]), 2
                )
                rows = list(op)
        assert len(rows) == 2
        names = [s.name for s in trace.spans()]
        assert names == ["Limit", "Project", "Filter", "RelationSource"]
        assert trace_invariant_violations(trace) == []

    def test_contracts_recorded(self):
        with collect():
            with tracing() as trace:
                list(Filter(rel(), KEEP_ALL))
        (filter_span,) = trace.find("Filter")
        (source_span,) = trace.find("RelationSource")
        assert filter_span.contract == CONTRACT_FILTERING
        assert source_span.contract == CONTRACT_PRESERVING

    def test_operators_untouched_when_disabled(self):
        with collect():
            rows = list(RelationSource(rel()))
        assert len(rows) == 4
        assert current_tracer() is None


class TestInvariantChecks:
    def _operator(self, name, contract, rows_in, rows_out, children=()):
        span = Span(name, kind="operator", contract=contract)
        span.set("rows_in", rows_in)
        span.set("rows_out", rows_out)
        span.children.extend(children)
        span._close()
        return span

    def _as_trace(self, *roots):
        tracer = Tracer()
        tracer.roots.extend(roots)
        from repro.engine.trace import Trace

        return Trace(tracer)

    def test_clean_tree_passes(self):
        child = self._operator("src", CONTRACT_PRESERVING, 4, 4)
        parent = self._operator("filter", CONTRACT_FILTERING, 4, 2, [child])
        assert trace_invariant_violations(self._as_trace(parent)) == []

    @pytest.mark.parametrize(
        "contract,rows_in,rows_out",
        [
            (CONTRACT_FILTERING, 2, 3),
            (CONTRACT_PRESERVING, 2, 1),
            (CONTRACT_EXPANDING, 3, 2),
        ],
    )
    def test_contract_violations(self, contract, rows_in, rows_out):
        span = self._operator("x", contract, rows_in, rows_out)
        violations = trace_invariant_violations(self._as_trace(span))
        assert len(violations) == 1 and contract.rstrip("ing") in violations[0].replace("row-preserving", "preserv")

    def test_child_sum_mismatch(self):
        child = self._operator("src", CONTRACT_PRESERVING, 4, 4)
        parent = self._operator("filter", CONTRACT_FILTERING, 5, 2, [child])
        violations = trace_invariant_violations(self._as_trace(parent))
        assert any("input span(s) produced 4" in v for v in violations)

    def test_phase_spans_exempt_from_child_sum(self):
        child = self._operator("src", CONTRACT_PRESERVING, 4, 4)
        phase = Span("link-phase", kind="phase", contract=CONTRACT_FILTERING)
        phase.set("rows_in", 10)
        phase.set("rows_out", 3)
        phase.children.append(child)
        phase._close()
        assert trace_invariant_violations(self._as_trace(phase)) == []

    def test_unclosed_span_flagged(self):
        span = Span("x")
        violations = trace_invariant_violations(self._as_trace(span))
        assert any("never closed" in v for v in violations)

    def test_negative_counter_flagged(self):
        span = self._operator("x", None, 1, 1)
        span.set("rows_out", -1)
        violations = trace_invariant_violations(self._as_trace(span))
        assert any("negative" in v for v in violations)

    def test_root_cardinality_check(self):
        root = Span("execute", kind="root")
        root.set("rows_out", 3)
        root._close()
        trace = self._as_trace(root)
        assert trace_invariant_violations(trace, result_cardinality=3) == []
        violations = trace_invariant_violations(trace, result_cardinality=5)
        assert any("result has 5" in v for v in violations)


class TestMetricsAttribution:
    def test_self_metrics_telescope(self):
        with collect() as metrics:
            with tracing() as trace:
                list(Filter(rel(), KEEP_ALL))
        assert reconcile_with_metrics(trace, metrics.snapshot()) == []

    def test_reconcile_reports_drift(self):
        with collect() as metrics:
            with tracing() as trace:
                list(RelationSource(rel()))
            metrics.add("rows_scanned", 100)  # outside any span
        drift = reconcile_with_metrics(trace, metrics.snapshot())
        assert any("rows_scanned" in v for v in drift)


class TestRendering:
    def test_render_lines_and_counters(self):
        with collect():
            with tracing() as trace:
                list(Filter(rel(), KEEP_ALL))
        text = render_trace(trace, timings=False)
        lines = text.splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  RelationSource(table=t)")
        assert "rows=4→4" in lines[0]
        assert "ms" not in text
        assert "ms" in render_trace(trace, timings=True)


class TestSerialization:
    def _traced_run(self):
        with collect():
            with tracing() as trace:
                list(Filter(rel(), KEEP_ALL))
        return trace

    def test_to_dict_valid(self):
        data = self._traced_run().to_dict()
        assert data["version"] == TRACE_FORMAT_VERSION
        assert validate_trace_dict(data) == []

    def test_json_round_trip(self):
        import json

        trace = self._traced_run()
        assert validate_trace_dict(json.loads(trace.to_json())) == []

    @pytest.mark.parametrize(
        "mutate,message",
        [
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(spans={}), "'spans' must be a list"),
            (lambda d: d["spans"][0].update(name=""), "'name'"),
            (lambda d: d["spans"][0].update(contract="bogus"), "contract"),
            (lambda d: d["spans"][0].update(wall_seconds=-1), "wall_seconds"),
            (lambda d: d["spans"][0]["counters"].update(x="y"), "counters"),
            (lambda d: d["spans"][0].update(children=None), "children"),
        ],
    )
    def test_validator_rejects(self, mutate, message):
        data = self._traced_run().to_dict()
        mutate(data)
        problems = validate_trace_dict(data)
        assert problems and any(message in p for p in problems)
