"""Unit tests for union / intersect / difference."""

import pytest

from repro.engine.operators import Difference, Intersect, Union
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL
from repro.errors import SchemaError


def rel(rows):
    return Relation(Schema.of("a", table="t"), rows)


A = rel([(1,), (2,), (2,), (NULL,)])
B = rel([(2,), (3,), (NULL,)])


class TestUnion:
    def test_dedupes(self):
        out = Union(A, B).materialize()
        assert len(out) == 4  # {1, 2, NULL, 3}

    def test_schema_from_left(self):
        assert Union(A, B).schema.names == ("t.a",)


class TestIntersect:
    def test_common_rows(self):
        out = Intersect(A, B).materialize()
        assert len(out) == 2  # {2, NULL} — NULLs group together in set ops

    def test_empty(self):
        out = Intersect(rel([(9,)]), B).materialize()
        assert len(out) == 0


class TestDifference:
    def test_left_minus_right(self):
        out = Difference(A, B).materialize()
        assert out.rows == [(1,)]

    def test_difference_is_set_semantics(self):
        out = Difference(rel([(1,), (1,)]), rel([])).materialize()
        assert len(out) == 1


class TestCompat:
    def test_arity_mismatch(self):
        wide = Relation(Schema.of("a", "b", table="w"), [(1, 2)])
        with pytest.raises(SchemaError):
            Union(A, wide)


class TestAlgebraicLaws:
    def test_a_minus_b_union_intersect_is_a_set(self):
        minus = set(Difference(A, B).materialize().sorted().rows)
        inter = set(Intersect(A, B).materialize().sorted().rows)
        a_set = {row for row in A.distinct().sorted().rows if row[0] is not NULL}
        # NULL handling: NULL appears in intersect (groups together)
        recombined = {r for r in (minus | inter)}
        assert len(recombined) == len(A.distinct())
