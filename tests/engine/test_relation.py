"""Unit tests for materialized relations."""

import pytest

from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import NULL
from repro.errors import SchemaError


def rel(rows, names=("a", "b")) -> Relation:
    return Relation(Schema.of(*names, table="t"), rows)


class TestConstruction:
    def test_rows_coerced_to_tuples(self):
        r = rel([[1, 2], (3, 4)])
        assert r.rows == [(1, 2), (3, 4)]

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError, match="arity"):
            rel([(1, 2, 3)])

    def test_from_dicts_fills_null(self):
        schema = Schema.of("a", "b", table="t")
        r = Relation.from_dicts(schema, [{"a": 1}, {"b": 2}])
        assert r.rows == [(1, NULL), (NULL, 2)]

    def test_from_iter(self):
        schema = Schema.of("a", table="t")
        r = Relation.from_iter(schema, ((i,) for i in range(3)))
        assert len(r) == 3


class TestBagEquality:
    def test_order_insensitive(self):
        assert rel([(1, 2), (3, 4)]) == rel([(3, 4), (1, 2)])

    def test_duplicates_matter(self):
        assert rel([(1, 2), (1, 2)]) != rel([(1, 2)])

    def test_schema_names_matter(self):
        a = rel([(1, 2)])
        b = Relation(Schema.of("a", "b", table="other"), [(1, 2)])
        assert a != b

    def test_nulls_compare_positionally(self):
        assert rel([(NULL, 1)]) == rel([(NULL, 1)])
        assert rel([(NULL, 1)]) != rel([(1, NULL)])


class TestAccessors:
    def test_column_values(self):
        r = rel([(1, 2), (3, 4)])
        assert r.column_values("t.a") == [1, 3]

    def test_distinct_groups_nulls(self):
        r = rel([(NULL, 1), (NULL, 1), (1, 1)])
        assert len(r.distinct()) == 2

    def test_distinct_keeps_first_occurrence_order(self):
        r = rel([(2, 0), (1, 0), (2, 0)])
        assert r.distinct().rows == [(2, 0), (1, 0)]

    def test_sorted_nulls_first(self):
        r = rel([(1, 1), (NULL, 9)])
        assert r.sorted().rows[0] == (NULL, 9)

    def test_project(self):
        r = rel([(1, 2)])
        p = r.project(["t.b"])
        assert p.rows == [(2,)]
        assert p.schema.names == ("t.b",)

    def test_project_duplicates_not_removed(self):
        r = rel([(1, 2), (1, 3)])
        assert len(r.project(["t.a"])) == 2

    def test_rename_table(self):
        r = rel([(1, 2)]).rename_table("x")
        assert r.schema.names == ("x.a", "x.b")
        assert r.rows == [(1, 2)]


class TestDisplay:
    def test_to_table_contains_null_literal(self):
        text = rel([(NULL, 1)]).to_table()
        assert "null" in text
        assert "t.a" in text

    def test_to_table_truncation(self):
        r = rel([(i, i) for i in range(10)])
        text = r.to_table(max_rows=3)
        assert "7 more rows" in text
