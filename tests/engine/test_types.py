"""Unit tests for the SQL value model and three-valued logic."""

import pytest

from repro.engine.types import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    TriBool,
    flip_op,
    group_key,
    is_null,
    negate_op,
    row_group_key,
    row_sort_key,
    sort_key,
    sql_compare,
    tri_all,
    tri_any,
)
from repro.errors import TypeError_


class TestNull:
    def test_singleton(self):
        from repro.engine.types import _SqlNull

        assert _SqlNull() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_falsy(self):
        assert not NULL


class TestTriBool:
    def test_and_truth_table(self):
        assert (TRUE & TRUE) is TRUE
        assert (TRUE & FALSE) is FALSE
        assert (TRUE & UNKNOWN) is UNKNOWN
        assert (FALSE & UNKNOWN) is FALSE
        assert (UNKNOWN & UNKNOWN) is UNKNOWN
        assert (FALSE & FALSE) is FALSE

    def test_or_truth_table(self):
        assert (TRUE | FALSE) is TRUE
        assert (TRUE | UNKNOWN) is TRUE
        assert (FALSE | UNKNOWN) is UNKNOWN
        assert (FALSE | FALSE) is FALSE
        assert (UNKNOWN | UNKNOWN) is UNKNOWN

    def test_not(self):
        assert (~TRUE) is FALSE
        assert (~FALSE) is TRUE
        assert (~UNKNOWN) is UNKNOWN

    def test_is_true_only_for_true(self):
        assert TRUE.is_true()
        assert not FALSE.is_true()
        assert not UNKNOWN.is_true()

    def test_from_bool(self):
        assert TriBool.from_bool(True) is TRUE
        assert TriBool.from_bool(False) is FALSE


class TestCompare:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, TRUE),
            ("=", 1, 2, FALSE),
            ("<>", 1, 2, TRUE),
            ("!=", 1, 1, FALSE),
            ("<", 1, 2, TRUE),
            ("<=", 2, 2, TRUE),
            (">", 3, 2, TRUE),
            (">=", 1, 2, FALSE),
            ("=", "a", "a", TRUE),
            ("<", "a", "b", TRUE),
            ("=", 1, 1.0, TRUE),
            ("<", 1, 1.5, TRUE),
        ],
    )
    def test_basic(self, op, left, right, expected):
        assert sql_compare(op, left, right) is expected

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_null_always_unknown(self, op):
        assert sql_compare(op, NULL, 1) is UNKNOWN
        assert sql_compare(op, 1, NULL) is UNKNOWN
        assert sql_compare(op, NULL, NULL) is UNKNOWN

    def test_incompatible_types_raise(self):
        with pytest.raises(TypeError_):
            sql_compare("<", "a", 1)

    def test_bool_vs_int_raise(self):
        with pytest.raises(TypeError_):
            sql_compare("=", True, 1)

    def test_unknown_operator(self):
        with pytest.raises(TypeError_):
            sql_compare("~", 1, 2)


class TestQuantifierHelpers:
    def test_tri_all_vacuous_true(self):
        assert tri_all([]) is TRUE

    def test_tri_any_vacuous_false(self):
        assert tri_any([]) is FALSE

    def test_tri_all_false_dominates(self):
        assert tri_all([TRUE, UNKNOWN, FALSE]) is FALSE

    def test_tri_all_unknown_without_false(self):
        assert tri_all([TRUE, UNKNOWN, TRUE]) is UNKNOWN

    def test_tri_any_true_dominates(self):
        assert tri_any([FALSE, UNKNOWN, TRUE]) is TRUE

    def test_tri_any_unknown_without_true(self):
        assert tri_any([FALSE, UNKNOWN]) is UNKNOWN

    def test_paper_example_all_with_null(self):
        """Paper Section 2: with R.A = 5 and S.B = {2, 3, 4, null},
        ``5 > ALL {2,3,4,null}`` must be UNKNOWN, not TRUE."""
        outcomes = [sql_compare(">", 5, v) for v in (2, 3, 4, NULL)]
        assert tri_all(outcomes) is UNKNOWN

    def test_tri_all_short_circuits_on_false(self):
        def gen():
            yield FALSE
            raise AssertionError("must not be consumed")

        assert tri_all(gen()) is FALSE

    def test_tri_any_short_circuits_on_true(self):
        def gen():
            yield TRUE
            raise AssertionError("must not be consumed")

        assert tri_any(gen()) is TRUE


class TestOperatorAlgebra:
    @pytest.mark.parametrize(
        "op,neg", [("=", "<>"), ("<>", "="), ("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")]
    )
    def test_negate(self, op, neg):
        assert negate_op(op) == neg

    @pytest.mark.parametrize(
        "op,flipped", [("=", "="), ("<>", "<>"), ("<", ">"), ("<=", ">="), (">", "<"), (">=", "<=")]
    )
    def test_flip(self, op, flipped):
        assert flip_op(op) == flipped

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("pair", [(1, 2), (2, 2), (3, 2)])
    def test_negation_complements(self, op, pair):
        a, b = pair
        direct = sql_compare(op, a, b)
        negated = sql_compare(negate_op(op), a, b)
        assert direct is not negated

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("pair", [(1, 2), (2, 2), (3, 2)])
    def test_flip_swaps_operands(self, op, pair):
        a, b = pair
        assert sql_compare(op, a, b) is sql_compare(flip_op(op), b, a)


class TestGroupingKeys:
    def test_null_groups_with_null(self):
        assert group_key(NULL) == group_key(NULL)

    def test_null_distinct_from_string_null(self):
        assert group_key(NULL) != group_key("null")

    def test_numeric_unification(self):
        assert group_key(1) == group_key(1.0)

    def test_bool_distinct_from_int(self):
        assert group_key(True) != group_key(1)

    def test_row_key(self):
        assert row_group_key((1, NULL)) == row_group_key((1.0, NULL))
        assert row_group_key((1, 2)) != row_group_key((2, 1))

    def test_sort_key_total_order(self):
        values = [NULL, 3, "b", 1.5, "a", NULL, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is NULL and ordered[1] is NULL
        nums = [v for v in ordered if isinstance(v, (int, float))]
        assert nums == sorted(nums)

    def test_row_sort_key_nulls_first(self):
        rows = [(1, 2), (NULL, 5), (1, NULL)]
        ordered = sorted(rows, key=row_sort_key)
        assert ordered[0] == (NULL, 5)
        assert ordered[1] == (1, NULL)
