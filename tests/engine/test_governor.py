"""Resource governance: deadlines, memory budgets, cancellation,
degradation and fault injection.

The fault matrix runs every ``REPRO_FAULT`` mode against all three
execution substrates (row, vectorized, morsel-parallel) and asserts the
governed contract: either a *typed* governance error or a result
identical to the ungoverned oracle — never a wrong answer, never an
untyped crash.  The parallel strategy is forced onto the partitioned
pool path (``min_partition_rows=1``) so the tiny fixture exercises real
worker dispatch, crash drain and sequential degradation.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.core import planner
from repro.engine.governor import (
    EST_BYTES_PER_VALUE,
    FAULT_MODES,
    ResourceGovernor,
    active_fault,
    checkpoint,
    current_governor,
    governed,
    validate_degrade,
)
from repro.engine.metrics import collect
from repro.engine.trace import (
    KIND_GOVERNOR,
    reconcile_with_metrics,
    trace_invariant_violations,
    tracing,
    validate_trace_dict,
)
from repro.engine.vector.strategy import ParallelNestedRelationalStrategy
from repro.errors import (
    InjectedFaultError,
    InvalidArgumentError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
    ResourceGovernanceError,
)

SQL = (
    "select o_orderkey from orders where o_totalprice > all "
    "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
)

ROW = "nested-relational"
VEC = "nested-relational-vectorized"
PAR = "nested-relational-parallel"


def parallel_impl() -> ParallelNestedRelationalStrategy:
    """The parallel strategy forced onto the pooled, partitioned path."""
    return ParallelNestedRelationalStrategy(threads=4, min_partition_rows=1)


def strategies():
    return [ROW, VEC, parallel_impl()]


def strategy_ids():
    return [ROW, VEC, PAR]


@pytest.fixture(scope="module")
def oracle(tiny_tpch):
    """The ungoverned, fault-free answer every governed run must match."""
    return repro.connect(tiny_tpch).execute(SQL, strategy=VEC).sorted().rows


# --------------------------------------------------------------------- #
# Governor object
# --------------------------------------------------------------------- #


class TestGovernorValidation:
    @pytest.mark.parametrize("bad", [0, -5, "fast", True, -0.5])
    def test_bad_timeout_rejected(self, bad):
        with pytest.raises(InvalidArgumentError):
            ResourceGovernor(timeout_ms=bad)

    @pytest.mark.parametrize("bad", [0, -1, "lots", False])
    def test_bad_memory_limit_rejected(self, bad):
        with pytest.raises(InvalidArgumentError):
            ResourceGovernor(memory_limit_mb=bad)

    def test_bad_degrade_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ResourceGovernor(degrade="parallel-again")
        with pytest.raises(InvalidArgumentError):
            validate_degrade("never")
        assert validate_degrade(None) is None
        assert validate_degrade("sequential") == "sequential"

    def test_connect_rejects_bad_limits_immediately(self, tiny_tpch):
        with pytest.raises(InvalidArgumentError):
            repro.connect(tiny_tpch, timeout_ms=-1)
        with pytest.raises(InvalidArgumentError):
            repro.connect(tiny_tpch, memory_limit_mb=0)
        with pytest.raises(InvalidArgumentError):
            repro.connect(tiny_tpch, degrade="row")

    def test_execute_rejects_bad_per_call_limits(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        with pytest.raises(InvalidArgumentError):
            session.execute(SQL, timeout_ms=0)
        with pytest.raises(InvalidArgumentError):
            session.execute(SQL, degrade="magic")

    def test_unknown_fault_mode_fails_loudly(self, tiny_tpch, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "worker_crush")
        with pytest.raises(InvalidArgumentError):
            active_fault()
        with pytest.raises(InvalidArgumentError):
            repro.connect(tiny_tpch).execute(SQL, timeout_ms=10_000)


class TestGovernorUnit:
    def test_untimed_governor_has_no_deadline(self):
        gov = ResourceGovernor(memory_limit_mb=1)
        assert gov.remaining_ms() is None
        gov.check("anywhere")  # nothing tripped

    def test_deadline_counts_down_and_trips(self):
        gov = ResourceGovernor(timeout_ms=10_000)
        remaining = gov.remaining_ms()
        assert remaining is not None and 0 < remaining <= 10_000
        gov = ResourceGovernor(timeout_ms=1)
        time.sleep(0.005)
        with pytest.raises(QueryTimeoutError) as err:
            gov.check("unit")
        assert "timeout_ms=1" in str(err.value)
        assert "unit boundary" in str(err.value)

    def test_start_rearms_deadline_and_account(self):
        gov = ResourceGovernor(timeout_ms=1, memory_limit_mb=1)
        gov.charge(500_000)
        time.sleep(0.005)
        gov.start()
        assert gov.reserved_bytes == 0
        assert gov.remaining_ms() > 0
        gov.check("rearmed")

    def test_cancel_trips_typed_error(self):
        gov = ResourceGovernor()
        assert not gov.cancelled
        gov.cancel()
        assert gov.cancelled
        with pytest.raises(QueryCancelledError):
            gov.check("morsel")

    def test_charge_over_budget_raises(self):
        gov = ResourceGovernor(memory_limit_mb=1)
        gov.charge(512 * 1024, "half")
        assert gov.reserved_bytes == 512 * 1024
        with pytest.raises(ResourceExhaustedError) as err:
            gov.charge(600 * 1024, "the rest")
        assert "memory_limit_mb=1" in str(err.value)
        assert gov.peak_bytes >= 1024 * 1024

    def test_charge_without_limit_only_accounts(self):
        gov = ResourceGovernor()
        gov.charge(10**9)
        gov.charge(10**9)
        assert gov.reserved_bytes == 2 * 10**9
        gov.check("still fine")

    def test_governance_errors_are_typed(self):
        for exc in (QueryTimeoutError, ResourceExhaustedError,
                    QueryCancelledError):
            assert issubclass(exc, ResourceGovernanceError)

    def test_describe_attrs(self):
        gov = ResourceGovernor(
            timeout_ms=250, memory_limit_mb=64, degrade="sequential"
        )
        assert gov.describe_attrs() == {
            "timeout_ms": 250, "memory_limit_mb": 64, "degrade": "sequential"
        }

    def test_ambient_scope_installs_and_restores(self):
        assert current_governor() is None
        checkpoint("ungoverned no-op")
        gov = ResourceGovernor()
        with governed(gov):
            assert current_governor() is gov
            with governed(None):  # None installs nothing
                assert current_governor() is gov
        assert current_governor() is None


# --------------------------------------------------------------------- #
# Governed execution without faults
# --------------------------------------------------------------------- #


class TestGovernedExecution:
    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_generous_limits_change_nothing(self, tiny_tpch, oracle, strategy):
        session = repro.connect(tiny_tpch)
        result = session.execute(
            SQL, strategy=strategy, timeout_ms=60_000, memory_limit_mb=2048
        )
        assert result.sorted().rows == oracle

    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_tiny_memory_budget_trips_real_accounting(
        self, tiny_tpch, strategy
    ):
        # no fault injected: the breach comes from the actual accounting
        # hooks (batch materialization / hash-join build / nest grouping)
        session = repro.connect(tiny_tpch)
        with pytest.raises(ResourceExhaustedError):
            session.execute(SQL, strategy=strategy, memory_limit_mb=0.05)

    def test_precancelled_governor_stops_before_work(self, tiny_tpch):
        query = repro.connect(tiny_tpch).prepare(SQL).query
        gov = ResourceGovernor()
        gov.cancel()
        with pytest.raises(QueryCancelledError):
            planner.run(query, tiny_tpch, strategy=VEC, governor=gov)

    def test_governed_trace_carries_governor_span(self, tiny_tpch, oracle):
        result, trace = repro.connect(tiny_tpch).prepare(SQL).trace(
            strategy=VEC, timeout_ms=60_000, memory_limit_mb=2048
        )
        assert result.sorted().rows == oracle
        spans = trace.find("governor")
        assert spans and spans[0].kind == KIND_GOVERNOR
        assert spans[0].attrs["timeout_ms"] == 60_000
        assert trace_invariant_violations(trace) == []
        assert validate_trace_dict(trace.to_dict()) == []

    def test_session_wide_defaults_flow_into_execute(self, tiny_tpch):
        session = repro.connect(tiny_tpch, memory_limit_mb=0.05)
        with pytest.raises(ResourceExhaustedError):
            session.execute(SQL, strategy=VEC)
        # per-call override loosens the session default
        session.execute(SQL, strategy=VEC, memory_limit_mb=2048)


# --------------------------------------------------------------------- #
# The fault matrix: every REPRO_FAULT mode x every substrate
# --------------------------------------------------------------------- #


class TestFaultMatrix:
    def test_fault_modes_are_covered(self):
        assert set(FAULT_MODES) == {
            "worker_crash", "slow_morsel", "alloc_spike", "spill_io"
        }

    @pytest.mark.parametrize("strategy", [ROW, VEC], ids=[ROW, VEC])
    def test_worker_crash_spares_sequential_backends(
        self, tiny_tpch, oracle, monkeypatch, strategy
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        result = repro.connect(tiny_tpch).execute(
            SQL, strategy=strategy, timeout_ms=60_000
        )
        assert result.sorted().rows == oracle

    def test_worker_crash_surfaces_typed_on_parallel(
        self, tiny_tpch, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        with pytest.raises(InjectedFaultError):
            repro.connect(tiny_tpch).execute(SQL, strategy=parallel_impl())

    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_slow_morsel_is_slow_but_correct(
        self, tiny_tpch, oracle, monkeypatch, strategy
    ):
        monkeypatch.setenv("REPRO_FAULT", "slow_morsel")
        monkeypatch.setenv("REPRO_FAULT_MS", "1")
        result = repro.connect(tiny_tpch).execute(
            SQL, strategy=strategy, timeout_ms=60_000
        )
        assert result.sorted().rows == oracle

    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_alloc_spike_trips_memory_budget(
        self, tiny_tpch, monkeypatch, strategy
    ):
        monkeypatch.setenv("REPRO_FAULT", "alloc_spike")
        with pytest.raises(ResourceExhaustedError):
            repro.connect(tiny_tpch).execute(
                SQL, strategy=strategy, memory_limit_mb=64
            )

    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_alloc_spike_without_budget_is_inert(
        self, tiny_tpch, oracle, monkeypatch, strategy
    ):
        monkeypatch.setenv("REPRO_FAULT", "alloc_spike")
        result = repro.connect(tiny_tpch).execute(
            SQL, strategy=strategy, timeout_ms=60_000
        )
        assert result.sorted().rows == oracle

    @pytest.mark.parametrize("strategy", strategies(), ids=strategy_ids())
    def test_timeout_within_twice_the_deadline(
        self, tiny_tpch, monkeypatch, strategy
    ):
        # the acceptance bar: timeout_ms=50 against a deliberately slow
        # plan raises within 2x the deadline on every substrate
        session = repro.connect(tiny_tpch)
        # fault-free warm-up: pay one-time costs (pool spin-up, batch
        # conversion) outside the timed window so the bound measures the
        # engine's checkpoint coverage
        session.execute(SQL, strategy=strategy, timeout_ms=60_000)
        monkeypatch.setenv("REPRO_FAULT", "slow_morsel")
        monkeypatch.setenv("REPRO_FAULT_MS", "10")
        t0 = time.perf_counter()
        with pytest.raises(QueryTimeoutError) as err:
            session.execute(SQL, strategy=strategy, timeout_ms=50)
        elapsed_ms = (time.perf_counter() - t0) * 1000
        assert "timeout_ms=50" in str(err.value)
        assert elapsed_ms <= 100, (
            f"QueryTimeoutError took {elapsed_ms:.1f}ms, over 2x the "
            f"50ms deadline"
        )


# --------------------------------------------------------------------- #
# Graceful degradation (degrade='sequential')
# --------------------------------------------------------------------- #


class TestDegradation:
    def test_crash_recovers_to_oracle_result(
        self, tiny_tpch, oracle, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        result = repro.connect(tiny_tpch).execute(
            SQL, strategy=parallel_impl(), degrade="sequential"
        )
        assert result.sorted().rows == oracle

    def test_degradation_is_recorded_on_the_governor(
        self, tiny_tpch, oracle, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        query = repro.connect(tiny_tpch).prepare(SQL).query
        gov = ResourceGovernor(degrade="sequential")
        result = planner.run(
            query, tiny_tpch, strategy=parallel_impl(), governor=gov
        )
        assert result.sorted().rows == oracle
        assert gov.degradations == [(PAR, VEC, "InjectedFaultError")]

    def test_degraded_trace_has_spans_and_stays_invariant(
        self, tiny_tpch, oracle, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        result, trace = repro.connect(tiny_tpch).prepare(SQL).trace(
            strategy=parallel_impl(), degrade="sequential"
        )
        assert result.sorted().rows == oracle
        degrades = trace.find("degrade")
        assert len(degrades) == 1 and degrades[0].kind == KIND_GOVERNOR
        assert degrades[0].attrs["source"] == PAR
        assert degrades[0].attrs["target"] == VEC
        assert degrades[0].attrs["reason"] == "InjectedFaultError"
        assert trace.find("governor"), "governed run must tag its trace"
        assert trace_invariant_violations(trace) == []
        assert validate_trace_dict(trace.to_dict()) == []

    def test_degradation_never_masks_governance_errors(
        self, tiny_tpch, monkeypatch
    ):
        # a blown budget must surface, not silently retry sequentially
        monkeypatch.setenv("REPRO_FAULT", "alloc_spike")
        with pytest.raises(ResourceExhaustedError):
            repro.connect(tiny_tpch).execute(
                SQL,
                strategy=parallel_impl(),
                memory_limit_mb=64,
                degrade="sequential",
            )

    def test_sequential_strategies_do_not_degrade(
        self, tiny_tpch, monkeypatch
    ):
        # worker_crash never fires off-pool, so this exercises the
        # no-degrade-target path for an unrelated error instead
        from repro.errors import PlanError

        query = repro.connect(tiny_tpch).prepare(SQL).query

        class Exploding:
            name = "exploding"

            def execute(self, query, db):
                raise PlanError("deliberate")

        gov = ResourceGovernor(degrade="sequential")
        with pytest.raises(PlanError):
            planner.run(query, tiny_tpch, strategy=Exploding(), governor=gov)
        assert gov.degradations == []


# --------------------------------------------------------------------- #
# Partial traces from failed pools
# --------------------------------------------------------------------- #


class TestPartialTraces:
    def test_crashed_pool_drains_to_a_valid_partial_trace(
        self, tiny_tpch, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "worker_crash")
        query = repro.connect(tiny_tpch).prepare(SQL).query
        with collect() as m:
            with tracing() as trace:
                with pytest.raises(InjectedFaultError):
                    planner.run(query, tiny_tpch, strategy=parallel_impl())
        aborted = [s for s in trace.spans() if s.aborted]
        assert aborted, "the failing spans must be marked aborted"
        assert all(s.closed for s in trace.spans())
        assert trace_invariant_violations(trace) == []
        assert reconcile_with_metrics(trace, m.counters) == []

    def test_timeout_mid_flight_leaves_valid_trace(
        self, tiny_tpch, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "slow_morsel")
        monkeypatch.setenv("REPRO_FAULT_MS", "10")
        query = repro.connect(tiny_tpch).prepare(SQL).query
        gov = ResourceGovernor(timeout_ms=50)
        with tracing() as trace:
            with pytest.raises(QueryTimeoutError):
                planner.run(query, tiny_tpch, strategy=VEC, governor=gov)
        assert all(s.closed for s in trace.spans())
        assert trace_invariant_violations(trace) == []


# --------------------------------------------------------------------- #
# Thread-count validation (the parallel seam bugfix)
# --------------------------------------------------------------------- #


class TestThreadValidation:
    def test_validate_threads_accepts_sane_values(self):
        from repro.engine.parallel import validate_threads

        assert validate_threads(None) is None
        assert validate_threads(1) == 1
        assert validate_threads("4") == 4

    @pytest.mark.parametrize("bad", [0, -3, "x", "", 2.5, True, False])
    def test_validate_threads_rejects(self, bad):
        from repro.engine.parallel import validate_threads

        with pytest.raises(InvalidArgumentError):
            validate_threads(bad)

    @pytest.mark.parametrize("bad", [0, -2, "many", True])
    def test_connect_rejects_bad_threads(self, tiny_tpch, bad):
        with pytest.raises(InvalidArgumentError) as err:
            repro.connect(tiny_tpch, threads=bad)
        assert "threads" in str(err.value)

    def test_scheduler_and_backend_reject_bad_threads(self):
        from repro.engine.parallel import (
            MorselScheduler,
            ParallelVectorBackend,
        )

        with pytest.raises(InvalidArgumentError):
            MorselScheduler(threads=0)
        with pytest.raises(InvalidArgumentError):
            ParallelVectorBackend(threads=-1)
        backend = ParallelVectorBackend(threads=2)
        with pytest.raises(InvalidArgumentError):
            backend.set_threads(0)
        with pytest.raises(InvalidArgumentError):
            backend.set_threads(None)

    def test_env_threads_must_be_numeric(self, monkeypatch):
        from repro.engine.parallel import default_threads

        monkeypatch.setenv("REPRO_THREADS", "3")
        assert default_threads() == 3
        monkeypatch.setenv("REPRO_THREADS", "banana")
        with pytest.raises(InvalidArgumentError) as err:
            default_threads()
        assert "REPRO_THREADS" in str(err.value)

    def test_cli_rejects_negative_threads(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "select n_name from nation where n_nationkey < 3",
             "--tpch", "0.001", "--threads", "-2"]
        )
        assert code != 0
        assert "threads" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# CLI governance flags
# --------------------------------------------------------------------- #


class TestCliGovernance:
    def test_timeout_flag_surfaces_typed_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULT", "slow_morsel")
        monkeypatch.setenv("REPRO_FAULT_MS", "10")
        code = main(
            ["run", SQL, "--tpch", "0.002", "--timeout-ms", "50"]
        )
        assert code != 0
        assert "timeout_ms=50" in capsys.readouterr().err

    def test_generous_flags_run_clean(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "select n_name from nation where n_nationkey < 3",
             "--tpch", "0.001", "--timeout-ms", "60000",
             "--memory-limit-mb", "2048", "--degrade", "sequential"]
        )
        assert code == 0
        assert "row(s)" in capsys.readouterr().out
