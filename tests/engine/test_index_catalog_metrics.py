"""Unit tests for indexes, the catalog, and cost instrumentation."""

import pytest

from repro.engine.catalog import Database
from repro.engine.index import HashIndex, SortedIndex
from repro.engine.metrics import Metrics, collect, current_metrics, timed
from repro.engine.operators import Filter, RelationSource
from repro.engine.expressions import cmp
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import NULL
from repro.errors import CatalogError


def rel():
    return Relation(
        Schema.of("k", "v", table="t"),
        [(1, "a"), (1, "b"), (2, "c"), (NULL, "d"), (5, "e")],
    )


class TestHashIndex:
    def test_probe(self):
        idx = HashIndex(rel(), ["t.k"])
        assert len(idx.probe([1])) == 2
        assert idx.probe([9]) == []

    def test_null_keys_not_indexed(self):
        idx = HashIndex(rel(), ["t.k"])
        assert idx.probe([NULL]) == []

    def test_probe_ids(self):
        idx = HashIndex(rel(), ["t.k"])
        assert idx.probe_ids([2]) == [2]

    def test_composite_key(self):
        idx = HashIndex(rel(), ["t.k", "t.v"])
        assert len(idx.probe([1, "a"])) == 1
        assert idx.probe([1, "zzz"]) == []


class TestSortedIndex:
    def test_range(self):
        idx = SortedIndex(rel(), "t.k")
        assert len(idx.range(1, 2)) == 3
        assert len(idx.range(low=2)) == 2
        assert len(idx.range(high=1)) == 2

    def test_exclusive_bounds(self):
        idx = SortedIndex(rel(), "t.k")
        assert len(idx.range(1, 2, low_inclusive=False)) == 1

    def test_nulls_excluded(self):
        idx = SortedIndex(rel(), "t.k")
        assert len(idx) == 4


class TestDatabase:
    def make(self):
        db = Database()
        db.create_table(
            "t", [Column("k", not_null=True), Column("v")], rel().rows, primary_key="k"
        )
        return db

    def test_create_and_lookup(self):
        db = self.make()
        assert db.has_table("t")
        assert len(db.relation("t")) == 5
        assert db.table("t").primary_key == "k"

    def test_columns_qualified_by_table_name(self):
        db = self.make()
        assert db.relation("t").schema.names == ("t.k", "t.v")

    def test_duplicate_table(self):
        db = self.make()
        with pytest.raises(CatalogError):
            db.create_table("t", [Column("x")], [])

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Database().table("missing")

    def test_unknown_pk(self):
        with pytest.raises(CatalogError):
            Database().create_table("x", [Column("a")], [], primary_key="zzz")

    def test_drop(self):
        db = self.make()
        db.drop_table("t")
        assert not db.has_table("t")

    def test_index_creation_idempotent(self):
        db = self.make()
        first = db.create_hash_index("t", ["k"])
        second = db.create_hash_index("t", ["k"])
        assert first is second

    def test_covering_index_prefers_widest(self):
        db = self.make()
        db.create_hash_index("t", ["k"])
        db.create_hash_index("t", ["k", "v"])
        best = db.table("t").any_hash_index_covering(["k", "v"])
        assert best is not None
        assert best[1] == ("k", "v")

    def test_covering_index_subset_only(self):
        db = self.make()
        db.create_hash_index("t", ["k", "v"])
        assert db.table("t").any_hash_index_covering(["k"]) is None

    def test_not_null_flag(self):
        db = self.make()
        assert db.table("t").not_null("k")
        assert not db.table("t").not_null("v")

    def test_summary_mentions_tables(self):
        assert "t(" in self.make().summary()


class TestMetrics:
    def test_collect_scopes(self):
        with collect() as m:
            current_metrics().add("x", 3)
        assert m.get("x") == 3
        assert current_metrics().get("x") == 0 or current_metrics() is not m

    def test_nested_scopes_isolated(self):
        with collect() as outer:
            current_metrics().add("a")
            with collect() as inner:
                current_metrics().add("a", 5)
            assert inner.get("a") == 5
        assert outer.get("a") == 1

    def test_operators_charge_metrics(self):
        r = rel()
        with collect() as m:
            Filter(r, cmp("t.k", "=", 1)).materialize()
        assert m.get("rows_scanned") == 5
        assert m.get("rows_out") == 2
        assert m.get("predicate_evals") == 5

    def test_merged_and_total(self):
        a = Metrics({"x": 1})
        b = Metrics({"x": 2, "y": 3})
        merged = a.merged(b)
        assert merged.get("x") == 3
        assert merged.total() == 6

    def test_timed(self):
        result = timed(lambda: RelationSource(rel()).materialize())
        assert result.seconds >= 0
        assert result.metrics.get("rows_scanned") == 5
        assert len(result.value) == 5

    def test_index_probe_charged(self):
        idx = HashIndex(rel(), ["t.k"])
        with collect() as m:
            idx.probe([1])
        assert m.get("index_probes") == 1
        assert m.get("index_rows_fetched") == 2


class TestMetricsInvariants:
    """The structural invariants the fuzzer checks on every case: no
    counter ever goes negative, and the planner charges ``rows_produced``
    exactly once with the result cardinality."""

    def test_clean_metrics_have_no_violations(self):
        assert Metrics({"rows_scanned": 3}).invariant_violations() == []

    def test_negative_counter_reported(self):
        bad = Metrics({"rows_out": -1, "rows_scanned": 2})
        violations = bad.invariant_violations()
        assert len(violations) == 1
        assert "rows_out" in violations[0]

    def test_rows_produced_mismatch_reported(self):
        m = Metrics({"rows_produced": 4})
        assert m.invariant_violations(result_cardinality=4) == []
        violations = m.invariant_violations(result_cardinality=2)
        assert violations and "rows_produced" in violations[0]

    def test_planner_charges_rows_produced(self):
        import repro

        db = Database()
        db.create_table(
            "t", [Column("k", not_null=True), Column("v")], rel().rows,
            primary_key="k",
        )
        q = repro.compile_sql("select t.k from t where t.k > 1", db)
        with collect() as m:
            result = repro.execute(q, db, strategy="nested-relational")
        assert m.get("rows_produced") == len(result)
        assert m.invariant_violations(result_cardinality=len(result)) == []

    def test_invariants_hold_on_fuzzed_strategies(self):
        """Every strategy execution over a handful of generated cases
        keeps all counters non-negative and rows_produced consistent —
        the same check ``repro fuzz`` applies per strategy run."""
        import repro
        from repro.fuzz import DEFAULT_STRATEGIES, FuzzConfig, generate_case
        from repro.fuzz.runner import GUARDED_STRATEGIES, _applies
        from repro.core.planner import make_strategy

        config = FuzzConfig(iterations=6, seed=20, max_depth=2)
        for i in range(config.iterations):
            case = generate_case(config, i)
            db = case.db_spec.build()
            query = repro.compile_sql(case.sql, db)
            for name in ("nested-iteration",) + DEFAULT_STRATEGIES:
                if name in GUARDED_STRATEGIES and not _applies(
                    make_strategy(name), query, db
                ):
                    continue
                with collect() as m:
                    result = repro.execute(query, db, strategy=name)
                assert m.invariant_violations(
                    result_cardinality=len(result)
                ) == [], (name, case.sql)
