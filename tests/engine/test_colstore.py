"""Out-of-core column store: roundtrip, zero-copy, exact stats, shims."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro.engine import NULL, Column, Database
from repro.engine.colstore import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    StoredRelation,
    StoreWriter,
    load_stored_database,
    open_store,
    store_size_bytes,
)
from repro.engine.governor import batch_nbytes
from repro.engine.vector.batch import relation_batch
from repro.errors import CatalogError
from repro.core.stats import collect_stats
from repro.tpch import TpchConfig, generate, generate_stored


CONFIG = TpchConfig(scale_factor=0.002, seed=1234, inject_null_fraction=0.08)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("colstore") / "tpch")
    generate_stored(path, CONFIG, chunk_rows=500)
    return path


@pytest.fixture(scope="module")
def stored_db(store_dir) -> Database:
    return load_stored_database(store_dir)


@pytest.fixture(scope="module")
def memory_db() -> Database:
    return generate(CONFIG)


def _bag(rows):
    return sorted(rows, key=repr)


def test_roundtrip_every_table(stored_db, memory_db):
    """generate_stored writes exactly what generate() builds in memory."""
    for name in sorted(memory_db.tables):
        expected = memory_db.relation(name)
        got = stored_db.relation(name)
        assert isinstance(got, StoredRelation)
        assert len(got) == len(expected)
        assert [c.name for c in got.schema.columns] == [
            c.name for c in expected.schema.columns
        ]
        assert _bag(got.rows) == _bag(expected.rows)


def test_stored_batch_is_memory_mapped(stored_db):
    """The columnar image serves views straight into the column files."""
    rel = stored_db.relation("lineitem")
    batch = rel.stored_batch()
    assert len(batch) == len(rel)
    mapped = [c for c in batch.columns if isinstance(c.data, np.memmap)]
    assert len(mapped) == len(batch.columns)
    # mapped vectors are exempt from the governed heap account
    assert batch_nbytes(batch) == 0
    # and the batch is built once, not per access
    assert rel.stored_batch() is batch


def test_zero_copy_against_column_file(store_dir, stored_db):
    """stored_batch vector data aliases the on-disk .npy, no copy."""
    manifest = open_store(store_dir)
    entry = manifest["tables"]["orders"]["columns"][0]
    path = os.path.join(store_dir, entry["file"])
    vec = stored_db.relation("orders").stored_batch().columns[0]
    # two mmap() calls of one file get distinct virtual addresses, so
    # np.shares_memory cannot see the aliasing; the backing file can.
    assert isinstance(vec.data, np.memmap)
    assert os.path.samefile(vec.data.filename, path)
    on_disk = np.load(path, mmap_mode="r", allow_pickle=False)
    assert np.array_equal(np.asarray(vec.data), np.asarray(on_disk))


def test_row_shim_matches_columns(stored_db):
    """The lazy rows property yields the same values as the columns."""
    rel = stored_db.relation("nation")
    rows = rel.rows
    assert len(rows) == len(rel)
    for i, ref in enumerate(c.name for c in rel.schema.columns):
        assert [r[i] for r in rows] == rel.column_values(ref)


def test_fingerprint_stable_and_cheap(store_dir):
    a = load_stored_database(store_dir).relation("part")
    b = load_stored_database(store_dir).relation("part")
    fp = a.fingerprint()
    assert fp == b.fingerprint()
    assert fp[0] == "colstore"
    # fingerprinting must not trigger the row shim
    assert a._rows_cache is None


def test_manifest_carries_exact_stats(store_dir, memory_db):
    manifest = open_store(store_dir)
    entry = {
        c["name"]: c for c in manifest["tables"]["lineitem"]["columns"]
    }
    values = memory_db.relation("lineitem").column_values("l_extendedprice")
    live = [v for v in values if v is not NULL]
    stats = entry["l_extendedprice"]["stats"]
    assert stats["ndv"] == float(len(set(live)))
    assert stats["min"] == min(live)
    assert stats["max"] == max(live)
    assert stats["null_frac"] == pytest.approx(
        1.0 - len(live) / len(values)
    )
    assert stats["null_frac"] > 0  # the injection actually fired


def test_collect_stats_bypasses_sampler(stored_db, memory_db):
    """Stored manifests feed the planner exact, unsampled statistics."""
    stats = collect_stats(stored_db)
    col = stats.tables["lineitem"].columns["l_extendedprice"]
    assert col.exact
    values = memory_db.relation("lineitem").column_values("l_extendedprice")
    live = [v for v in values if v is not NULL]
    assert col.ndv == float(len(set(live)))
    # the stored figure beats the generator's seeded approximation
    # (ndv=min(n, 10000)) because it was measured, not estimated
    seeded = collect_stats(memory_db)
    assert seeded.tables["lineitem"].columns["l_extendedprice"].ndv != col.ndv
    # unseeded in-memory columns keep their sampled (non-exact) figures
    assert not seeded.tables["lineitem"].columns["l_commitdate"].exact
    assert stats.tables["lineitem"].columns["l_commitdate"].exact


@pytest.mark.parametrize("backend", ["row", "vector"])
def test_query_parity_stored_vs_memory(stored_db, memory_db, backend):
    """Both backends read stored tables and match the in-memory engine."""
    sql = repro.tpch.query1("1994-01-01", "1996-12-31")
    expected = repro.connect(memory_db).execute(
        sql, strategy="nested-relational", backend="row"
    )
    got = repro.connect(stored_db).execute(
        sql, strategy="nested-relational", backend=backend
    )
    assert got == expected


def test_store_rejects_obj_columns(tmp_path):
    writer = StoreWriter(str(tmp_path / "bad"))
    table = writer.table("t", [Column("a")])
    table.append(((1, 2),))  # tuple value -> 'obj' vector kind
    with pytest.raises(CatalogError, match="obj"):
        table.finish()


def test_open_store_validates(tmp_path):
    with pytest.raises(CatalogError, match="missing manifest"):
        open_store(str(tmp_path))
    root = tmp_path / "v99"
    root.mkdir()
    (root / MANIFEST_NAME).write_text(
        json.dumps({"format_version": FORMAT_VERSION + 99, "tables": {}})
    )
    with pytest.raises(CatalogError, match="format version"):
        open_store(str(root))


def test_store_size_accounts_all_files(store_dir):
    assert store_size_bytes(store_dir) > 0
    assert store_size_bytes(store_dir) == sum(
        os.path.getsize(os.path.join(d, f))
        for d, _dirs, files in os.walk(store_dir)
        for f in files
    )


def test_relation_batch_cache_reuses_conversion(memory_db):
    """Satellite: in-memory relations get one columnar conversion, not
    one per execution, keyed on object identity + fingerprint."""
    rel = memory_db.relation("region")
    first = relation_batch(rel)
    assert relation_batch(rel) is first
