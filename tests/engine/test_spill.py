"""Spill-to-disk: correctness parity, trace spans, fault injection.

The six paper queries must return identical results whether the
governor's budget forces Grace-style spilling or the whole plan runs in
memory — and every ``kind='spill'`` span must satisfy the v4 trace
schema and the trace invariants.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.engine.colstore import load_stored_database
from repro.engine.governor import ResourceGovernor, governed
from repro.engine.spill import maybe_spill_hash_join
from repro.engine.trace import (
    KIND_SPILL,
    trace_invariant_violations,
    validate_trace_dict,
)
from repro.errors import SpillError
from repro.tpch import (
    TpchConfig,
    generate_stored,
    pick_availqty,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)

#: small enough to force spilling on every join-heavy paper query at
#: sf 0.002, large enough that scan outputs still fit
CAP_MB = 0.2


@pytest.fixture(scope="module")
def stored_db(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("spill-store") / "tpch")
    generate_stored(
        path, TpchConfig(scale_factor=0.002, seed=1234), chunk_rows=500
    )
    return load_stored_database(path)


@pytest.fixture(scope="module")
def six_queries(stored_db):
    lo_d, hi_d = pick_date_window(stored_db, 40)
    lo_s, hi_s = pick_size_window(stored_db, 30)
    availqty = pick_availqty(stored_db, 60)
    return [
        ("query1", query1(lo_d, hi_d)),
        ("query2a", query2("any", lo_s, hi_s, availqty, 25)),
        ("query2b", query2("all", lo_s, hi_s, availqty, 25)),
        ("query3a", query3("all", "exists", "a", lo_s, hi_s, availqty, 25)),
        ("query3b", query3("all", "not exists", "b", lo_s, hi_s, availqty, 25)),
        ("query3c", query3("any", "exists", "c", lo_s, hi_s, availqty, 25)),
    ]


def _spill_spans(trace):
    return [s for s in trace.spans() if s.kind == KIND_SPILL]


def test_six_query_parity_spilling_vs_not(stored_db, six_queries, tmp_path):
    """Identical results with and without the budget, ≥1 query spills."""
    plain = repro.connect(stored_db)
    governed_session = repro.connect(
        stored_db, memory_limit_mb=CAP_MB, spill_dir=str(tmp_path)
    )
    total_spans = 0
    for name, sql in six_queries:
        expected = plain.execute(
            sql, strategy="nested-relational", backend="vector"
        )
        got, trace = governed_session.prepare(sql).trace(
            strategy="nested-relational", backend="vector"
        )
        assert got == expected, name
        spans = _spill_spans(trace)
        total_spans += len(spans)
        for span in spans:
            assert span.counters.get("bytes_spilled", 0) > 0, name
            assert span.counters.get("partitions", 0) >= 2, name
        assert validate_trace_dict(trace.to_dict()) == [], name
        assert trace_invariant_violations(trace) == [], name
    assert total_spans >= 1
    # every temp partition directory was cleaned up after its pass
    assert os.listdir(str(tmp_path)) == []


def test_spill_spans_validate_against_schema(stored_db, six_queries, tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    import json

    schema_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "schemas", "trace.schema.json",
    )
    with open(schema_path) as fh:
        schema = json.load(fh)
    session = repro.connect(
        stored_db, memory_limit_mb=CAP_MB, spill_dir=str(tmp_path)
    )
    _result, trace = session.prepare(six_queries[0][1]).trace(
        strategy="nested-relational", backend="vector"
    )
    assert _spill_spans(trace)
    jsonschema.validate(trace.to_dict(), schema)


def test_governor_accounts_spilled_bytes(stored_db, six_queries, tmp_path):
    gov = ResourceGovernor(memory_limit_mb=CAP_MB, spill_dir=str(tmp_path))
    session = repro.connect(stored_db)
    with governed(gov):
        session.execute(
            six_queries[0][1], strategy="nested-relational", backend="vector"
        )
    assert gov.spill_count >= 1
    assert gov.spilled_bytes > 0


def test_no_spill_without_spill_dir(stored_db, six_queries):
    """Budget alone (no spill_dir) keeps the hard-error semantics."""
    gov = ResourceGovernor(memory_limit_mb=CAP_MB)
    assert not gov.should_spill(10**9)


def test_spill_hook_inert_without_governor(stored_db):
    batch = stored_db.relation("orders").stored_batch()
    assert (
        maybe_spill_hash_join(
            batch, batch, ["o_orderkey"], ["o_orderkey"], None, outer=False
        )
        is None
    )


def test_spill_io_fault_cleanup_and_typed_error(
    stored_db, six_queries, tmp_path, monkeypatch
):
    """REPRO_FAULT=spill_io: typed error out, no temp files left behind."""
    monkeypatch.setenv("REPRO_FAULT", "spill_io")
    session = repro.connect(
        stored_db, memory_limit_mb=CAP_MB, spill_dir=str(tmp_path)
    )
    with pytest.raises(SpillError, match="injected spill write failure"):
        session.execute(
            six_queries[0][1], strategy="nested-relational", backend="vector"
        )
    # governed cleanup: the failed pass removed its temp directory
    assert os.listdir(str(tmp_path)) == []


def test_spill_io_fault_does_not_break_degrade_ladder(
    stored_db, six_queries, tmp_path, monkeypatch
):
    """The error is typed (SpillError), degrade='sequential' still
    retries, and clearing the fault restores normal spilling."""
    monkeypatch.setenv("REPRO_FAULT", "spill_io")
    session = repro.connect(
        stored_db,
        memory_limit_mb=CAP_MB,
        spill_dir=str(tmp_path),
        degrade="sequential",
    )
    with pytest.raises(SpillError):
        session.execute(
            six_queries[0][1], strategy="nested-relational", backend="vector"
        )
    assert os.listdir(str(tmp_path)) == []
    monkeypatch.delenv("REPRO_FAULT")
    plain = repro.connect(stored_db).execute(
        six_queries[0][1], strategy="nested-relational", backend="vector"
    )
    result, trace = session.prepare(six_queries[0][1]).trace(
        strategy="nested-relational", backend="vector"
    )
    assert result == plain
    assert _spill_spans(trace)
    assert os.listdir(str(tmp_path)) == []
