"""Unit tests for CSV persistence."""

import os

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.engine.storage import load_database, save_database
from repro.errors import CatalogError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "t",
        [Column("k", not_null=True), Column("name"), Column("price"), Column("flag")],
        [
            (1, "widget", 9.99, True),
            (2, NULL, 10, False),
            (3, "", NULL, NULL),
            (4, "123", 0.5, True),  # numeric-looking string
            (5, "it's", -3, False),
        ],
        primary_key="k",
    )
    d.create_table("empty", [Column("x")], [])
    d.create_hash_index("t", ["k"])
    d.create_hash_index("t", ["k", "name"])
    d.create_sorted_index("t", "price")
    return d


class TestRoundTrip:
    def test_rows_and_schema(self, db, tmp_path):
        save_database(db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert loaded.relation("t") == db.relation("t")
        assert loaded.relation("t").schema.names == db.relation("t").schema.names

    def test_constraints_and_pk(self, db, tmp_path):
        save_database(db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert loaded.table("t").primary_key == "k"
        assert loaded.table("t").not_null("k")
        assert not loaded.table("t").not_null("name")

    def test_indexes_rebuilt(self, db, tmp_path):
        save_database(db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert loaded.table("t").hash_index_on(["k"]) is not None
        assert loaded.table("t").hash_index_on(["k", "name"]) is not None
        assert "price" in loaded.table("t").sorted_indexes

    def test_empty_table(self, db, tmp_path):
        save_database(db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert len(loaded.relation("empty")) == 0

    def test_value_fidelity(self, db, tmp_path):
        """NULL vs empty string vs numeric string vs bool all survive."""
        save_database(db, str(tmp_path))
        rows = {r[0]: r for r in load_database(str(tmp_path)).relation("t").rows}
        assert rows[2][1] is NULL
        assert rows[3][1] == ""
        assert rows[4][1] == "123" and isinstance(rows[4][1], str)
        assert rows[1][3] is True
        assert isinstance(rows[2][2], int) and rows[2][2] == 10

    def test_tpch_roundtrip_queries_agree(self, tmp_path):
        original = repro.tpch.generate(
            repro.tpch.TpchConfig(scale_factor=0.001, seed=3)
        )
        save_database(original, str(tmp_path))
        loaded = load_database(str(tmp_path))
        sql = repro.tpch.query1("1992-01-01", "1995-01-01")
        assert repro.connect(loaded).execute(sql) == repro.connect(original).execute(sql)


class TestErrors:
    def test_missing_catalog(self, tmp_path):
        with pytest.raises(CatalogError, match="_catalog"):
            load_database(str(tmp_path))

    def test_header_mismatch_detected(self, db, tmp_path):
        save_database(db, str(tmp_path))
        path = os.path.join(str(tmp_path), "t.csv")
        with open(path) as handle:
            lines = handle.readlines()
        lines[0] = "wrong,header,entirely,yes\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(CatalogError, match="header"):
            load_database(str(tmp_path))
