"""Property test: thread count is unobservable.

For random (query, database) pairs from the fuzzer's generators, the
morsel-parallel strategy at 1 worker and at N workers must produce
exactly the same relation and the same root-span output cardinality,
and each trace must independently satisfy the span-tree invariants and
reconcile with its own Metrics totals.  ``min_partition_rows=1`` forces
real partition splits even on the fuzzer's tiny relations, so this
exercises the partitioned kernels, not the sequential fallback.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.core.compute import NestedRelationalStrategy
from repro.engine.metrics import collect
from repro.engine.parallel import ParallelVectorBackend
from repro.engine.trace import (
    reconcile_with_metrics,
    trace_invariant_violations,
)
from repro.fuzz import FuzzConfig, generate_case

cases = st.builds(
    generate_case,
    config=st.builds(
        FuzzConfig,
        iterations=st.just(1),
        seed=st.integers(min_value=0, max_value=2**16),
        max_depth=st.integers(min_value=1, max_value=3),
        null_rate=st.sampled_from([0.0, 0.25, 0.5]),
        max_rows=st.integers(min_value=1, max_value=6),
    ),
    iteration=st.integers(min_value=0, max_value=3),
)


def _parallel(threads: int) -> NestedRelationalStrategy:
    return NestedRelationalStrategy(
        backend=ParallelVectorBackend(threads=threads, min_partition_rows=1)
    )


@given(case=cases, threads=st.sampled_from([2, 3, 4]))
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_one_thread_and_n_threads_agree(case, threads):
    db = case.db_spec.build()
    prepared = repro.connect(db, plan_cache=False).prepare(case.sql)

    with collect() as one_metrics:
        one_result, one_trace = prepared.trace(strategy=_parallel(1))
    with collect() as many_metrics:
        many_result, many_trace = prepared.trace(strategy=_parallel(threads))

    assert many_result == one_result
    assert many_result.schema.names == one_result.schema.names
    assert (
        many_trace.root.counters["rows_out"]
        == one_trace.root.counters["rows_out"]
    )

    for trace, metrics in (
        (one_trace, one_metrics),
        (many_trace, many_metrics),
    ):
        assert not trace_invariant_violations(trace)
        assert not reconcile_with_metrics(trace, metrics.counters)


@given(case=cases)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_parallel_matches_sequential_vectorized(case):
    db = case.db_spec.build()
    prepared = repro.connect(db, plan_cache=False).prepare(case.sql)
    sequential = prepared.execute(
        strategy="nested-relational-vectorized", backend="vector"
    )
    parallel = prepared.execute(strategy=_parallel(3))
    assert parallel == sequential
