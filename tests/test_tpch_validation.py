"""Tests for the TPC-H validator — and validation of the generator."""

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.tpch import TpchConfig, generate
from repro.tpch.validation import assert_valid, validate


class TestGeneratorPassesValidation:
    def test_default_config(self):
        db = generate(TpchConfig(scale_factor=0.002, seed=17, build_indexes=False))
        assert validate(db) == []

    def test_not_null_config(self):
        db = generate(
            TpchConfig(scale_factor=0.001, seed=17, price_not_null=True,
                       build_indexes=False)
        )
        assert_valid(db)

    def test_null_injected_config(self):
        db = generate(
            TpchConfig(scale_factor=0.002, seed=17, inject_null_fraction=0.1,
                       build_indexes=False)
        )
        assert validate(db, expected_null_fraction=0.1) == []

    @pytest.mark.parametrize("sf", [0.0005, 0.001, 0.005])
    def test_across_scale_factors(self, sf):
        db = generate(TpchConfig(scale_factor=sf, seed=1, build_indexes=False))
        assert validate(db) == []


class TestValidatorCatchesCorruption:
    def corrupt(self, mutate):
        db = generate(TpchConfig(scale_factor=0.001, seed=17, build_indexes=False))
        mutate(db)
        return validate(db)

    def test_duplicate_pk(self):
        def mutate(db):
            rel = db.table("orders").relation
            rel.rows.append(rel.rows[0])

        issues = self.corrupt(mutate)
        assert any("duplicate keys" in i for i in issues)

    def test_null_pk(self):
        def mutate(db):
            rel = db.table("part").relation
            rel.rows[0] = (NULL,) + rel.rows[0][1:]

        issues = self.corrupt(mutate)
        assert any("NULL key" in i for i in issues)

    def test_dangling_fk(self):
        def mutate(db):
            rel = db.table("lineitem").relation
            pos = rel.schema.index_of("l_orderkey")
            row = list(rel.rows[0])
            row[pos] = 10**9
            rel.rows[0] = tuple(row)

        issues = self.corrupt(mutate)
        assert any("not in orders.o_orderkey" in i for i in issues)

    def test_domain_violation(self):
        def mutate(db):
            rel = db.table("part").relation
            pos = rel.schema.index_of("p_size")
            row = list(rel.rows[0])
            row[pos] = 999
            rel.rows[0] = tuple(row)

        issues = self.corrupt(mutate)
        assert any("outside [1, 50]" in i for i in issues)

    def test_date_ordering_violation(self):
        def mutate(db):
            rel = db.table("lineitem").relation
            ship = rel.schema.index_of("l_shipdate")
            receipt = rel.schema.index_of("l_receiptdate")
            row = list(rel.rows[0])
            row[ship], row[receipt] = row[receipt], row[ship]
            rel.rows[0] = tuple(row)

        issues = self.corrupt(mutate)
        assert any("ship >= receipt" in i for i in issues)

    def test_null_fraction_drift(self):
        db = generate(TpchConfig(scale_factor=0.001, seed=17, build_indexes=False))
        issues = validate(db, expected_null_fraction=0.5)
        assert any("NULL fraction" in i for i in issues)

    def test_assert_valid_raises_with_details(self):
        db = generate(TpchConfig(scale_factor=0.001, seed=17, build_indexes=False))
        db.table("orders").relation.rows.append(
            db.table("orders").relation.rows[0]
        )
        with pytest.raises(AssertionError, match="duplicate keys"):
            assert_valid(db)
