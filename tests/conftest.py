"""Shared fixtures: the paper's running example and small databases."""

from __future__ import annotations

import pytest

import repro
from repro.engine import Column, Database, NULL


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden files under tests/golden/ with the "
             "current EXPLAIN / EXPLAIN ANALYZE output instead of "
             "comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def paper_db() -> Database:
    """The relations R, S, T of the paper's Figure 1 (Section 3).

    R(A, B, C, D) with D the primary key; S(E, F, G, H, I) with I the
    key; T(J, K, L) with L the key.  Values copied verbatim, including
    the NULLs.
    """
    db = Database()
    db.create_table(
        "R",
        [Column("A"), Column("B"), Column("C"), Column("D", not_null=True)],
        [
            (1, 2, 3, 1),
            (2, 3, 2, 2),
            (5, 2, 3, 3),
            (NULL, NULL, 5, 4),
        ],
        primary_key="D",
    )
    db.create_table(
        "S",
        [
            Column("E"),
            Column("F"),
            Column("G"),
            Column("H"),
            Column("I", not_null=True),
        ],
        [
            (7, 5, 1, 5, 1),
            (2, 5, 2, 2, 2),
            (2, 5, 3, 4, 3),
            (4, 6, 3, NULL, 4),
        ],
        primary_key="I",
    )
    db.create_table(
        "T",
        [Column("J"), Column("K"), Column("L", not_null=True)],
        [
            (3, 3, 1),
            (NULL, 4, 2),
            (2, 2, 3),
        ],
        primary_key="L",
    )
    return db


@pytest.fixture(scope="session")
def tiny_tpch() -> Database:
    """A small deterministic TPC-H instance shared across tests."""
    return repro.tpch.generate(
        repro.tpch.TpchConfig(scale_factor=0.002, seed=1234)
    )


@pytest.fixture(scope="session")
def tiny_tpch_nulls() -> Database:
    """Same as :func:`tiny_tpch` but with NULLs injected into the price
    columns — the data classical rewrites get wrong."""
    return repro.tpch.generate(
        repro.tpch.TpchConfig(
            scale_factor=0.002, seed=1234, inject_null_fraction=0.08
        )
    )


@pytest.fixture(scope="session")
def tiny_tpch_not_null() -> Database:
    """Same as :func:`tiny_tpch` with NOT NULL declared on the price
    columns (flips System A's plan, per the paper)."""
    return repro.tpch.generate(
        repro.tpch.TpchConfig(scale_factor=0.002, seed=1234, price_not_null=True)
    )
