"""The session-level plan/build cache and its invalidation contract.

Covers the three memo layers of :class:`repro.core.plancache.SessionCache`
(compile, strategy resolution, reduced-relation builds), the catalog
version counter that invalidates them, the ``plan_cache=False`` mode
(compile memo stays on — satellite fix: repeated ``prepare()`` of
identical SQL never re-runs the analyzer), the ``run_sql`` shim's
session reuse, and the ``threads`` routing through
``resolve_strategy``.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.engine import Column


SQL = (
    "select o_orderkey from orders where o_totalprice > all "
    "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
)
SIMPLE = "select n_name from nation where n_nationkey < 3"


class TestCompileMemo:
    def test_identical_sql_compiles_once(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        first = session.prepare(SQL)
        second = session.prepare(SQL)
        assert second.query is first.query  # same analyzed object
        assert session.cache_stats.plan_hits == 1
        assert session.cache_stats.plan_misses == 1

    def test_compile_memo_survives_plan_cache_off(self, tiny_tpch):
        session = repro.connect(tiny_tpch, plan_cache=False)
        first = session.prepare(SQL)
        second = session.prepare(SQL)
        assert second.query is first.query
        assert session.cache_stats.plan_hits == 1

    def test_warm_prepare_is_10x_faster_than_cold(self, tiny_tpch):
        cold = []
        for _ in range(5):
            t0 = time.perf_counter()
            repro.connect(tiny_tpch).prepare(SQL)
            cold.append(time.perf_counter() - t0)
        session = repro.connect(tiny_tpch)
        session.prepare(SQL)
        warm = []
        for _ in range(5):
            t0 = time.perf_counter()
            session.prepare(SQL)
            warm.append(time.perf_counter() - t0)
        assert min(warm) * 10 <= min(cold), (
            f"warm prepare {min(warm):.6f}s not 10x faster than cold "
            f"{min(cold):.6f}s"
        )

    def test_distinct_sql_is_not_conflated(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        a = session.prepare(SQL)
        b = session.prepare(SIMPLE)
        assert a.query is not b.query
        assert session.cache_stats.plan_hits == 0


class TestStrategyAndReduceMemo:
    def test_strategy_resolution_is_memoized(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        prepared = session.prepare(SQL)
        prepared.execute(backend="vector")
        assert session.cache_stats.strategy_misses >= 1
        prepared.execute(backend="vector")
        assert session.cache_stats.strategy_hits >= 1

    def test_reduced_builds_are_reused_across_queries(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        prepared = session.prepare(SQL)
        first = prepared.execute(backend="vector")
        assert session.cache_stats.reduce_misses >= 1
        hits_before = session.cache_stats.reduce_hits
        second = prepared.execute(backend="vector")
        assert second == first
        assert session.cache_stats.reduce_hits > hits_before

    def test_disabled_cache_never_counts_reduce_hits(self, tiny_tpch):
        session = repro.connect(tiny_tpch, plan_cache=False)
        prepared = session.prepare(SQL)
        prepared.execute(backend="vector")
        prepared.execute(backend="vector")
        assert session.cache_stats.reduce_hits == 0
        assert session.cache_stats.strategy_hits == 0

    def test_cached_and_uncached_results_agree(self, tiny_tpch_nulls):
        cached = repro.connect(tiny_tpch_nulls)
        uncached = repro.connect(tiny_tpch_nulls, plan_cache=False)
        for _ in range(2):
            assert (
                cached.execute(SQL, backend="vector").sorted()
                == uncached.execute(SQL, backend="vector").sorted()
            )


class TestInvalidation:
    def test_catalog_mutation_invalidates(self, micro_db):
        session = repro.connect(micro_db)
        session.prepare("select a from t")
        session.execute("select a from t", backend="vector")
        micro_db.create_table("u", [Column("x")], [(1,)])
        session.prepare("select a from t")
        assert session.cache_stats.invalidations == 1
        # the compile memo was flushed: second prepare was a miss
        assert session.cache_stats.plan_misses == 2

    def test_version_counts_catalog_changes(self, micro_db):
        v0 = micro_db.version
        micro_db.create_table("w", [Column("y")], [(2,)])
        assert micro_db.version == v0 + 1
        micro_db.drop_table("w")
        assert micro_db.version == v0 + 2

    def test_idempotent_index_creation_does_not_invalidate(self, micro_db):
        micro_db.create_hash_index("t", ["a"])
        v1 = micro_db.version
        micro_db.create_hash_index("t", ["a"])  # already built
        assert micro_db.version == v1

    def test_results_stay_correct_after_mutation(self, micro_db):
        session = repro.connect(micro_db)
        before = session.execute("select a from t", backend="vector")
        micro_db.drop_table("t")
        micro_db.create_table("t", [Column("a")], [(99,)])
        after = session.execute("select a from t", backend="vector")
        assert before.rows != after.rows
        assert after.rows == [(99,)]


class TestMutateTable:
    """`Database.mutate_table` — the sanctioned row-write path."""

    def test_rows_replacement_bumps_version_and_result(self, micro_db):
        session = repro.connect(micro_db)
        before = session.execute("select a from t", backend="vector")
        assert before.sorted().rows == [(1,), (2,), (3,)]
        v0 = micro_db.version
        micro_db.mutate_table("t", rows=[(10,), (20,)])
        assert micro_db.version == v0 + 1
        after = session.execute("select a from t", backend="vector")
        assert after.sorted().rows == [(10,), (20,)]
        assert session.cache_stats.invalidations >= 1

    def test_mutator_callable_edits_in_place(self, micro_db):
        session = repro.connect(micro_db)
        session.execute("select a from t", backend="vector")

        def bump(table):
            from repro.engine.relation import Relation

            table.relation = Relation(
                table.schema, [(a + 100,) for (a,) in table.relation.rows]
            )

        micro_db.mutate_table("t", mutator=bump)
        after = session.execute("select a from t", backend="vector")
        assert after.sorted().rows == [(101,), (102,), (103,)]

    def test_rows_and_mutator_together_rejected(self, micro_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            micro_db.mutate_table("t", rows=[(1,)], mutator=lambda t: None)

    def test_mutation_rebuilds_indexes(self, micro_db):
        micro_db.create_hash_index("t", ["a"])
        stale = micro_db.table("t").hash_indexes[("a",)]
        micro_db.mutate_table("t", rows=[(7,), (8,)])
        rebuilt = micro_db.table("t").hash_indexes[("a",)]
        assert rebuilt is not stale
        # the rebuilt index answers for the new rows
        result = repro.connect(micro_db).execute(
            "select a from t where a = 7"
        )
        assert result.rows == [(7,)]


class TestInPlaceMutationStaleness:
    """Direct `table.relation.rows` edits bypass the version counter;
    the reduce and batch caches must still detect them via the
    fingerprint probe instead of serving stale images."""

    def test_appended_row_is_seen_by_vector_backend(self, micro_db):
        session = repro.connect(micro_db)
        before = session.execute("select a from t", backend="vector")
        assert before.sorted().rows == [(1,), (2,), (3,)]
        micro_db.table("t").relation.rows.append((4,))
        after = session.execute("select a from t", backend="vector")
        assert after.sorted().rows == [(1,), (2,), (3,), (4,)]

    def test_endpoint_edit_is_seen_on_cache_hit(self, micro_db):
        session = repro.connect(micro_db)
        prepared = session.prepare("select a from t where a > 0")
        assert prepared.execute(backend="vector").sorted().rows == [
            (1,), (2,), (3,)
        ]
        micro_db.table("t").relation.rows[-1] = (42,)
        assert prepared.execute(backend="vector").sorted().rows == [
            (1,), (2,), (42,)
        ]

    def test_fingerprint_probe_shape(self, micro_db):
        rel = micro_db.table("t").relation
        fp = rel.fingerprint()
        assert fp[0] == len(rel.rows)
        rel.rows[-1] = (999,)
        assert rel.fingerprint() != fp

    def test_fingerprint_of_empty_relation(self):
        from repro.engine import Schema
        from repro.engine.relation import Relation

        assert Relation(Schema([Column("a")]), []).fingerprint() == (0, 0, 0)


class TestEviction:
    """Per-table FIFO eviction: one overflowing memo must not nuke the
    other memo tables, and the stats counters stay monotonic."""

    def test_overflow_evicts_only_the_full_table(self):
        from repro.core.plancache import _MAX_ENTRIES, SessionCache

        cache = SessionCache()
        cache.validate(0)
        cache.store_strategy(("sticky",), "impl")
        cache.store_reduced(("sticky-build",), "batch")
        for i in range(_MAX_ENTRIES + 10):
            cache.store_plan(f"select {i}", object())
        # the plan memo is bounded ...
        assert len(cache._plans) <= _MAX_ENTRIES
        # ... and the other memos were not collaterally cleared
        assert cache.strategy(("sticky",)) == "impl"
        assert cache.reduced(("sticky-build",)) == "batch"
        assert cache.stats.evictions >= 10

    def test_eviction_is_fifo(self):
        from repro.core.plancache import _MAX_ENTRIES, SessionCache

        cache = SessionCache()
        cache.validate(0)
        for i in range(_MAX_ENTRIES + 1):
            cache.store_plan(f"select {i}", i)
        assert cache.plan("select 0") is None  # the oldest went first
        assert cache.plan(f"select {_MAX_ENTRIES}") == _MAX_ENTRIES

    def test_counters_stay_monotonic_across_evictions(self):
        from repro.core.plancache import _MAX_ENTRIES, SessionCache

        cache = SessionCache()
        cache.validate(0)
        seen = []
        for i in range(3 * _MAX_ENTRIES):
            cache.store_plan(f"select {i}", i)
            snap = cache.stats.snapshot()
            if seen:
                assert all(
                    snap[key] >= seen[-1][key] for key in snap
                ), "stats counters must never decrease"
            seen.append(snap)
        assert cache.stats.evictions == 2 * _MAX_ENTRIES
        assert "evictions" in cache.stats.describe()


@pytest.fixture
def micro_db():
    from repro.engine import Database

    db = Database()
    db.create_table("t", [Column("a")], [(1,), (2,), (3,)])
    return db


class TestDescribeAndShims:
    def test_describe_shows_cache_counters(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        prepared = session.prepare(SQL)
        prepared.execute(backend="vector")
        text = prepared.describe()
        assert "plan cache: enabled" in text
        for token in ("plan", "strategy", "reduce"):
            assert token in text

    def test_describe_marks_disabled_cache(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch, plan_cache=False).prepare(SQL)
        assert "plan cache: compile-only" in prepared.describe()

    def test_run_sql_shim_reuses_one_session(self, tiny_tpch):
        with pytest.deprecated_call():
            first = repro.run_sql(SIMPLE, tiny_tpch)
        session = repro._SHIM_SESSIONS[tiny_tpch]
        with pytest.deprecated_call():
            second = repro.run_sql(SIMPLE, tiny_tpch)
        assert repro._SHIM_SESSIONS[tiny_tpch] is session
        assert session.cache_stats.plan_hits >= 1  # no double analysis
        assert first == second


class TestThreadsRouting:
    def test_auto_with_threads_routes_to_parallel(self, tiny_tpch):
        from repro.core.planner import resolve_strategy

        query = repro.connect(tiny_tpch).prepare(SQL).query
        impl = resolve_strategy("auto", query, None, threads=3)
        assert impl.name == "nested-relational-parallel"
        assert impl.threads == 3

    def test_auto_single_thread_stays_sequential(self, tiny_tpch):
        from repro.core.planner import resolve_strategy

        query = repro.connect(tiny_tpch).prepare(SQL).query
        impl = resolve_strategy("auto", query, None, threads=1)
        assert impl.name != "nested-relational-parallel"

    def test_row_backend_never_parallel(self, tiny_tpch):
        from repro.core.planner import resolve_strategy

        query = repro.connect(tiny_tpch).prepare(SQL).query
        impl = resolve_strategy("auto", query, "row", threads=4)
        assert impl.name != "nested-relational-parallel"

    def test_session_threads_default_flows_through(self, tiny_tpch):
        session = repro.connect(tiny_tpch, threads=2)
        out = session.execute(SQL, backend="vector")
        reference = repro.connect(tiny_tpch).execute(SQL, backend="vector")
        assert out.sorted() == reference.sorted()

    def test_cli_threads_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["run", SIMPLE, "--tpch", "0.001", "--threads", "2",
             "--no-plan-cache"]
        )
        assert code == 0
        assert "threads=2" in capsys.readouterr().out
