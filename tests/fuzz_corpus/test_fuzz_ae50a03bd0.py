"""Seeded corpus case: mixed >= ALL with deep positive/negative links.

Deterministic generator output (seed=42 iteration=1), checked in as a corpus seed.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 42 --iterations 2
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k from t0 b0 where b0.a >= all (select b1.a from t1 b1 "
    "where b1.a >= b0.b and b1.b in (1, -2) and exists (select b2.b from "
    "t3 b2 where b0.k = b2.a and b2.k in (2, 3, 3) and b2.b not in "
    "(select b3.a from t2 b3 where b1.b < b3.b and b3.a <> 2))) and b0.a "
    "not in (select b4.a from t3 b4 where b0.a <> b4.b and exists (select "
    "b5.a from t3 b5 where b5.b in (select b6.k from t1 b6 where b4.b <> "
    "b6.a)))"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 3, 1),
            (1, 3, 2),
            (2, 3, 0),
            (3, -3, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 0, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, 1),
            (1, 0, 0),
            (2, 0, 3),
            (3, 3, 2),
            (4, 0, 2),
            (5, 0, 0),
            (6, NULL, -2),
            (7, 1, 0),
        ],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, 1),
            (1, 2, -1),
            (2, -1, -3),
            (3, 2, -2),
            (4, NULL, NULL),
        ],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
