"""Checked-in fuzzer regressions (repro.fuzz)."""
