"""Seeded corpus case: tree-shaped query, EXISTS over NOT IN.

Deterministic generator output (seed=42 iteration=0), checked in as a corpus seed.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 42 --iterations 1
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k, b0.b from t3 b0 where exists (select * from t3 b1 where "
    "b0.k = b1.k and b1.a not in (select b2.a from t2 b2 where b2.a = "
    "b1.k and b2.b in (select b3.a from t1 b3 where b2.k = b3.b) and b2.k "
    "in (select b4.k from t2 b4 where b4.k <> 0)))"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, -1),
            (1, -3, 3),
            (2, -2, -1),
            (3, -2, 1),
            (4, NULL, NULL),
            (5, 2, 1),
        ],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -1, 3),
            (1, -2, NULL),
            (2, 3, 0),
            (3, -3, 1),
            (4, 0, -1),
            (5, -2, 3),
        ],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, NULL),
            (1, NULL, NULL),
            (2, NULL, NULL),
            (3, NULL, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -1, -1),
            (1, NULL, NULL),
            (2, 3, 0),
            (3, NULL, NULL),
            (4, -3, 1),
            (5, 2, NULL),
        ],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
