"""Fuzzer regression (minimized by repro.fuzz).

Origin: strategy 'system-a-native' disagreement — 4 row(s) vs oracle's 0
Found at seed=13 iteration=10, then minimized.

Per-operator traces at the minimized case:
oracle 'nested-iteration' trace:
execute(strategy=nested-iteration)  rows=0
  reduce[T1](tables=b0)  rows=4
    Filter  rows=5→4
      RelationSource(table=b0)  rows=5→5  predicate_evals=5
  reduce[T2](tables=b1)  rows=5
  reduce[T3](tables=b2)  rows=1
    Filter  rows=5→1
      RelationSource(table=b2)  rows=5→5  predicate_evals=5
  reduce[T4](tables=b3)  rows=7
  tuple-iteration  rows=4→0  predicate_evals=20
strategy 'system-a-native' trace:
execute(strategy=system-a-native)  rows=4
  reduce[T1](tables=b0)  rows=4
    Filter  rows=5→4
      RelationSource(table=b0)  rows=5→5  predicate_evals=5
  nested-iteration-probe(block=2)  rows=4→4  predicate_evals=24

Replay:  PYTHONPATH=src python -m repro fuzz --seed 13 --iterations 11
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k from t1 b0 where (b0.a < 1 or b0.k <> 2) and b0.k >= "
    "some (select b1.k from t1 b1 where not b1.a <> all (select b2.a from "
    "t3 b2 where b2.b < b0.a and b2.a between -2 and -1 and b2.b = some "
    "(select b3.a from t2 b3)))"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-vectorized",
    "nested-relational-parallel",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -2, NULL),
            (1, -3, 2),
            (2, -3, -2),
        ],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, NULL),
            (1, NULL, NULL),
            (2, NULL, NULL),
            (3, NULL, NULL),
            (4, NULL, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, -1),
            (1, -3, NULL),
            (2, 3, 3),
            (3, 2, 3),
            (4, 1, -1),
            (5, NULL, 2),
            (6, 0, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 2, -2),
            (1, NULL, NULL),
            (2, -2, -3),
            (3, 2, 1),
            (4, 1, NULL),
        ],
        primary_key="k",
    )
    return db


LOGIC = "3vl"


def test_all_strategies_agree_with_oracle():
    from repro.engine.logic import logic_mode

    db = build_db()
    query = repro.compile_sql(SQL, db)
    with logic_mode(LOGIC):
        oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
        for strategy in STRATEGIES:
            result = repro.execute(query, db, strategy=strategy).sorted()
            assert result == oracle, f"{strategy} disagrees with the oracle"
