"""Fuzzer regression (minimized by repro.fuzz).

Origin: strategy 'system-a-native' disagreement — NULL NOT IN {nonempty} kept by the negated antijoin (fixed: the plan now demands NOT NULL on the linking side too)
Found at seed=7 iteration=9, then minimized.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 7 --iterations 10
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k from t2 b0 where b0.b not in (select b1.k from t3 b1)"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
    "nested-relational-bottomup",
    "count-rewrite",
    "boolean-aggregate",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, NULL, NULL),
        ],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (2, 0, 3),
        ],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
