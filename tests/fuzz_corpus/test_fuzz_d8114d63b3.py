"""Seeded corpus case: nested IN chains under EXISTS.

Deterministic generator output (seed=42 iteration=6), checked in as a corpus seed.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 42 --iterations 7
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k, b0.a from t1 b0 where b0.b is not null and exists "
    "(select b1.k from t1 b1 where b1.a in (select b2.b from t1 b2 where "
    "b2.b > -3 and b2.k = some (select b3.k from t3 b3 where b3.b = b2.k) "
    "and b2.k < all (select b4.b from t0 b4 where b2.k = b4.b and b4.k "
    "between -3 and 3)) and not exists (select * from t1 b5 where not "
    "exists (select b6.b from t1 b6 where b1.a < b6.b and b6.a = b0.k and "
    "b6.b <= b6.b) and b5.b > some (select b7.a from t0 b7 where b1.a >= "
    "b7.b)))"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -2, 1),
            (1, -3, NULL),
            (2, 0, -2),
            (3, -3, 2),
        ],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 1, -3),
        ],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 0, NULL),
            (1, NULL, 2),
            (2, NULL, NULL),
            (3, 1, 3),
            (4, 2, -2),
            (5, -3, 3),
            (6, -3, NULL),
        ],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
