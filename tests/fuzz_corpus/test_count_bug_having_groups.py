"""COUNT-bug seed: HAVING count(*) membership with NULL group keys.

Deterministic generator output (seed=0 iteration=0), checked in as a corpus seed.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 0 --iterations 1
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k from t0 b0 where b0.a in (select b1.a from t1 b1 group "
    "by b1.a having count(*) >= 2)"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-vectorized",
    "nested-relational-parallel",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
    "nested-relational-bottomup",
    "nested-relational-positive-rewrite",
    "classical-unnesting",
    "count-rewrite",
    "boolean-aggregate",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 1, NULL),
            (1, 2, 0),
            (2, NULL, 1),
        ],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 1, 1),
            (1, 1, NULL),
            (2, 2, 2),
            (3, NULL, 0),
            (4, NULL, 1),
        ],
        primary_key="k",
    )
    return db


LOGIC = "3vl"


def test_all_strategies_agree_with_oracle():
    from repro.engine.logic import logic_mode

    db = build_db()
    query = repro.compile_sql(SQL, db)
    with logic_mode(LOGIC):
        oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
        for strategy in STRATEGIES:
            result = repro.execute(query, db, strategy=strategy).sorted()
            assert result == oracle, f"{strategy} disagrees with the oracle"


def test_agrees_with_external_oracle():
    import pytest

    from repro.oracle import cross_check, engine_available

    engine = "sqlite"
    if not engine_available(engine):
        pytest.skip(f"{engine} not installed")
    db = build_db()
    for report in cross_check(db, SQL, engine=engine, strategies=STRATEGIES):
        assert report.acceptable, report.describe()
