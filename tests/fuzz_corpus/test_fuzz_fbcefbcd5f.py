"""Seeded corpus case: NOT IN over a subquery with an empty table in scope.

Deterministic generator output (seed=42 iteration=24), checked in as a corpus seed.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 42 --iterations 25
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k, b0.b from t0 b0 where b0.b not in (select b1.a from t3 "
    "b1 where b1.a <> b0.b and b1.a in (select b2.k from t1 b2 where b2.k "
    "= b0.a and b2.b = -3 and exists (select b3.a from t2 b3 where b1.a "
    ">= b3.k))) and b0.k not in (select b4.k from t0 b4)"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, 2, 1),
        ],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -3, NULL),
            (1, 3, -2),
            (2, -1, NULL),
            (3, NULL, 3),
            (4, NULL, -1),
            (5, NULL, 0),
        ],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [
            (0, -2, NULL),
            (1, -3, NULL),
            (2, -3, 2),
            (3, -2, -2),
            (4, 1, 0),
            (5, -1, NULL),
            (6, 1, NULL),
        ],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
