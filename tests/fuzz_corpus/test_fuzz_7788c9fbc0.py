"""Fuzzer regression (minimized by repro.fuzz).

Origin: strategy 'nested-relational-bottomup' error — raised SchemaError: nest: nesting and nested attribute sets must be disjoint (fixed: push-down reads the linked value off the group key)
Found at seed=7 iteration=24, then minimized.

Replay:  PYTHONPATH=src python -m repro fuzz --seed 7 --iterations 25
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
    "select b0.k from t2 b0 where b0.k >= some (select b1.k from t3 b1 "
    "where b1.k = b0.k)"
)

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
    "nested-relational-bottomup",
    "nested-relational-positive-rewrite",
    "classical-unnesting",
    "count-rewrite",
    "boolean-aggregate",
    "aggregate-rewrite",
]


def build_db():
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t2",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    db.create_table(
        "t3",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [],
        primary_key="k",
    )
    return db


def test_all_strategies_agree_with_oracle():
    db = build_db()
    query = repro.compile_sql(SQL, db)
    oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
    for strategy in STRATEGIES:
        result = repro.execute(query, db, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
