"""The README's code snippets must actually run — docs that rot are
worse than no docs."""

import repro


class TestQuickstartSnippet:
    def test_verbatim_quickstart(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))

        sql = repro.tpch.query1("1993-01-01", "1994-01-01")
        result = repro.run_sql(sql, db)
        oracle = repro.run_sql(sql, db, strategy="nested-iteration")
        assert result == oracle

        query = repro.compile_sql(sql, db)
        assert "block 1" in query.describe()
        assert "T1" in repro.TreeExpression(query).render()

    def test_every_advertised_strategy_exists(self):
        advertised = [
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "nested-relational-bottomup",
            "nested-relational-positive-rewrite",
            "nested-iteration",
            "classical-unnesting",
            "count-rewrite",
            "boolean-aggregate",
            "system-a-native",
            "auto",
        ]
        available = repro.available_strategies()
        for name in advertised:
            assert name in available, name

    def test_verbatim_parallel_session_snippet(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        sql = repro.tpch.query1("1993-01-01", "1994-01-01")

        session = repro.connect(db, threads=4)        # session-wide default
        query = session.prepare(sql)
        auto = query.execute()                        # auto → morsel-parallel
        one = query.execute(threads=1)                # same result, one worker
        assert auto.sorted() == one.sorted()
        assert "plan cache: enabled" in query.describe()
        assert "nested-relational-parallel" in repro.available_strategies()

    def test_top_level_exports(self):
        for name in (
            "NULL", "is_null", "Relation", "Database", "NestedQuery",
            "TreeExpression", "nest", "unnest", "linking_selection",
            "pseudo_selection", "compile_sql", "run_sql", "execute",
        ):
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__
