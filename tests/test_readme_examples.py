"""The README's code snippets must actually run — docs that rot are
worse than no docs."""

import repro


class TestQuickstartSnippet:
    def test_verbatim_quickstart(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        session = repro.connect(db)

        query = session.prepare(repro.tpch.query1("1993-01-01", "1994-01-01"))
        result = query.execute()                             # cost-based auto
        fast = query.execute(backend="vector")               # columnar batches
        oracle = query.execute(strategy="nested-iteration")  # tuple oracle
        assert result == oracle == fast

        assert "block 1" in query.describe()
        assert query.explain(analyze=True).analysis is not None
        traced, trace = query.trace()
        assert traced == result and trace.root is not None
        assert "T1" in repro.TreeExpression(query.query).render()

    def test_deprecated_entry_points_still_work(self):
        import warnings

        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        sql = repro.tpch.query1("1993-01-01", "1994-01-01")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.run_sql(sql, db) == repro.connect(db).prepare(sql).execute()

    def test_every_advertised_strategy_exists(self):
        advertised = [
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "nested-relational-bottomup",
            "nested-relational-positive-rewrite",
            "nested-relational-vectorized",
            "nested-relational-parallel",
            "nested-iteration",
            "classical-unnesting",
            "count-rewrite",
            "boolean-aggregate",
            "system-a-native",
            "auto",
        ]
        available = repro.available_strategies()
        for name in advertised:
            assert name in available, name

    def test_verbatim_planner_snippet(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        session = repro.connect(db)
        sql = repro.tpch.query1("1993-01-01", "1994-01-01")

        plan = session.prepare(sql).explain()     # typed repro.Plan
        assert plan.cost_based
        assert plan.render("text").startswith(f"auto -> {plan.chosen}")
        assert plan.render("json")
        assert isinstance(plan.est_cost, float)

    def test_verbatim_options_snippet(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        sql = repro.tpch.query1("1993-01-01", "1994-01-01")

        opts = repro.ExecutionOptions(backend="vector", threads=4)
        session = repro.connect(db, options=opts)
        query = session.prepare(sql)
        result = query.execute(options=opts.replace(logic="2vl"), timeout_ms=500)
        assert result == query.execute()

    def test_verbatim_parallel_session_snippet(self):
        db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
        sql = repro.tpch.query1("1993-01-01", "1994-01-01")

        session = repro.connect(db, threads=4)        # session-wide default
        query = session.prepare(sql)
        auto = query.execute()                 # parallel is now a costed candidate
        one = query.execute(threads=1)         # same result, one worker
        assert auto.sorted() == one.sorted()
        assert "plan cache: enabled" in query.describe()
        assert "nested-relational-parallel" in repro.available_strategies()

    def test_top_level_exports(self):
        for name in (
            "NULL", "is_null", "Relation", "Database", "NestedQuery",
            "TreeExpression", "nest", "unnest", "linking_selection",
            "pseudo_selection", "compile_sql", "run_sql", "execute",
            "ExecutionOptions", "Plan",
        ):
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__
