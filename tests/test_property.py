"""Property-based tests (hypothesis).

Two families:

1. **Algebraic invariants** of the nested relational operators — nest
   partitions its input, the implicit projection holds, unnest inverts
   nest on non-empty groups, linking-predicate semantics match a direct
   3VL evaluation.

2. **Differential testing** of the evaluation strategies on random
   databases *with NULLs* and randomly generated one- and two-level
   nested queries over them: every strategy must agree with the
   tuple-iteration oracle.  This is the property the paper's whole
   construction must satisfy.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.core.linking import SetPredicate
from repro.core.nest import nest, nest_sorted, unnest
from repro.engine import Column, Database, NULL, Relation, Schema
from repro.engine.types import (
    FALSE,
    TRUE,
    UNKNOWN,
    TriBool,
    is_null,
    row_group_key,
    sql_compare,
    tri_all,
    tri_any,
)

# --------------------------------------------------------------------- #
# value / row generators
# --------------------------------------------------------------------- #

sql_values = st.one_of(
    st.just(NULL),
    st.integers(min_value=-5, max_value=5),
)

non_null_values = st.integers(min_value=-5, max_value=5)


def rows(n_cols: int, max_rows: int = 12):
    return st.lists(
        st.tuples(*([sql_values] * n_cols)), min_size=0, max_size=max_rows
    )


THETAS = ["=", "<>", "<", "<=", ">", ">="]


# --------------------------------------------------------------------- #
# 3VL algebra properties
# --------------------------------------------------------------------- #

tribools = st.sampled_from([TRUE, FALSE, UNKNOWN])


class TestThreeValuedAlgebra:
    @given(a=tribools, b=tribools)
    def test_de_morgan(self, a, b):
        assert ~(a & b) is (~a | ~b)
        assert ~(a | b) is (~a & ~b)

    @given(a=tribools)
    def test_double_negation(self, a):
        assert ~~a is a

    @given(a=tribools, b=tribools, c=tribools)
    def test_conjunction_associative(self, a, b, c):
        assert ((a & b) & c) is (a & (b & c))

    @given(values=st.lists(tribools, max_size=8))
    def test_tri_all_is_fold_of_and(self, values):
        folded = TRUE
        for v in values:
            folded = folded & v
        assert tri_all(values) is folded

    @given(values=st.lists(tribools, max_size=8))
    def test_tri_any_is_fold_of_or(self, values):
        folded = FALSE
        for v in values:
            folded = folded | v
        assert tri_any(values) is folded

    @given(op=st.sampled_from(THETAS), a=sql_values, b=sql_values)
    def test_negated_op_is_complement_on_non_null(self, op, a, b):
        from repro.engine.types import negate_op

        direct = sql_compare(op, a, b)
        negated = sql_compare(negate_op(op), a, b)
        if is_null(a) or is_null(b):
            assert direct is UNKNOWN and negated is UNKNOWN
        else:
            assert direct is not negated


# --------------------------------------------------------------------- #
# nest / unnest invariants
# --------------------------------------------------------------------- #


def make_rel(data):
    return Relation(Schema.of("a", "b", "c", table="t"), data)


class TestNestInvariants:
    @given(data=rows(3))
    def test_groups_partition_input(self, data):
        rel = make_rel(data)
        nested = nest(rel, by=["t.a"], keep=["t.b", "t.c"])
        total_distinct = {row_group_key(r[:1] + r[1:]) for r in rel.rows}
        regrouped = set()
        for row in nested.rows:
            for member in row[1]:
                regrouped.add(row_group_key((row[0],) + member))
        assert regrouped == {row_group_key(r) for r in rel.rows}

    @given(data=rows(3))
    def test_group_keys_unique(self, data):
        nested = nest(make_rel(data), by=["t.a", "t.b"], keep=["t.c"])
        keys = [row_group_key(row[:2]) for row in nested.rows]
        assert len(keys) == len(set(keys))

    @given(data=rows(3))
    def test_hash_and_sorted_nest_agree(self, data):
        rel = make_rel(data)
        from repro.engine.types import row_sort_key

        a = nest(rel, by=["t.a"], keep=["t.b", "t.c"])
        b = nest_sorted(rel, by=["t.a"], keep=["t.b", "t.c"])
        norm = lambda nr: sorted(
            (
                row_sort_key(row[:1]),
                tuple(sorted(map(row_sort_key, row[1]))),
            )
            for row in nr.rows
        )
        assert norm(a) == norm(b)

    @given(data=rows(3))
    def test_unnest_recovers_distinct_rows(self, data):
        """unnest(nest(r)) equals r up to duplicate elimination (nest
        collects members into a *set*)."""
        rel = make_rel(data)
        nested = nest(rel, by=["t.a"], keep=["t.b", "t.c"])
        flat = unnest(nested)
        assert flat.sorted().rows == rel.distinct().sorted().rows

    @given(data=rows(3))
    def test_members_never_empty_from_nest(self, data):
        """nest itself never creates empty groups — only outer-join
        padding plus pk filtering does."""
        nested = nest(make_rel(data), by=["t.a"], keep=["t.b"])
        assert all(len(row[1]) >= 1 for row in nested.rows)


# --------------------------------------------------------------------- #
# linking predicate semantics == direct 3VL evaluation
# --------------------------------------------------------------------- #


class TestLinkingPredicateSemantics:
    @given(
        lhs=sql_values,
        members=st.lists(
            st.tuples(sql_values, st.one_of(st.just(NULL), st.just(1))),
            max_size=8,
        ),
        theta=st.sampled_from(THETAS),
        quantifier=st.sampled_from(["some", "all"]),
    )
    def test_matches_direct_evaluation(self, lhs, members, theta, quantifier):
        pred = SetPredicate(quantifier, theta)
        live = [v for v, pk in members if not is_null(pk)]
        comparisons = [sql_compare(theta, lhs, v) for v in live]
        expected = tri_all(comparisons) if quantifier == "all" else tri_any(comparisons)
        assert pred.evaluate(lhs, members) is expected

    @given(
        members=st.lists(
            st.tuples(sql_values, st.one_of(st.just(NULL), st.just(1))),
            max_size=8,
        )
    )
    def test_exists_counts_live_members(self, members):
        live = [v for v, pk in members if not is_null(pk)]
        assert SetPredicate("exists").evaluate(NULL, members) is TriBool.from_bool(
            bool(live)
        )
        assert SetPredicate("not_exists").evaluate(NULL, members) is TriBool.from_bool(
            not live
        )

    @given(lhs=sql_values, theta=st.sampled_from(THETAS))
    def test_duality_some_all(self, lhs, theta):
        """¬(A θ SOME S) == A ¬θ ALL S (the IN/NOT IN duality)."""
        from repro.engine.types import negate_op

        members = [(v, 1) for v in (1, 2, NULL)]
        some = SetPredicate("some", theta).evaluate(lhs, members)
        all_neg = SetPredicate("all", negate_op(theta)).evaluate(lhs, members)
        assert ~some is all_neg


# --------------------------------------------------------------------- #
# random databases + random queries: strategies vs oracle
# --------------------------------------------------------------------- #


@st.composite
def random_database(draw):
    db = Database()
    r_rows = draw(rows(2, max_rows=8))
    s_rows = draw(rows(3, max_rows=10))
    t_rows = draw(rows(2, max_rows=8))
    db.create_table(
        "r",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [(i,) + row for i, row in enumerate(r_rows)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v"), Column("w")],
        [(i,) + row for i, row in enumerate(s_rows)],
        primary_key="k",
    )
    db.create_table(
        "t",
        [Column("k", not_null=True), Column("sk"), Column("c")],
        [(i,) + row for i, row in enumerate(t_rows)],
        primary_key="k",
    )
    return db


link_ops = st.sampled_from(
    ["exists", "not exists", "in", "not in",
     "= any", "<> any", "< any", "> any",
     "= all", "<> all", "< all", ">= all"]
)


def link_text(op, lhs, subquery):
    if op == "exists":
        return f"exists ({subquery})"
    if op == "not exists":
        return f"not exists ({subquery})"
    return f"{lhs} {op} ({subquery})"


@st.composite
def one_level_query(draw):
    op = draw(link_ops)
    corr = draw(st.sampled_from(["s.rk = r.k", "s.rk = r.a", "s.w <> r.b", ""]))
    where_inner = f"where {corr}" if corr else ""
    sub = f"select s.v from s {where_inner}"
    if op in ("exists", "not exists"):
        sub = f"select * from s {where_inner}"
    lhs = draw(st.sampled_from(["r.a", "r.b"]))
    return f"select r.k from r where {link_text(op, lhs, sub)}"


@st.composite
def two_level_query(draw):
    op1 = draw(link_ops)
    op2 = draw(link_ops)
    corr1 = draw(st.sampled_from(["s.rk = r.k", "s.rk = r.a"]))
    corr2 = draw(
        st.sampled_from(["t.sk = s.k", "t.sk = s.v", "t.c <> s.w", "t.sk = r.k"])
    )
    sub2 = f"select t.c from t where {corr2}"
    if op2 in ("exists", "not exists"):
        sub2 = f"select * from t where {corr2}"
    inner_link = link_text(op2, "s.w", sub2)
    sub1 = f"select s.v from s where {corr1} and {inner_link}"
    if op1 in ("exists", "not exists"):
        sub1 = f"select * from s where {corr1} and {inner_link}"
    lhs = draw(st.sampled_from(["r.a", "r.b"]))
    return f"select r.k from r where {link_text(op1, lhs, sub1)}"


#: Non-equality thetas for quantified links: the cases where Kim-style
#: COUNT rewrites and MAX/MIN rewrites are most fragile under NULLs.
NONEQ_THETAS = ["<", ">=", "<>"]


@st.composite
def noneq_quantified_query(draw):
    """``A θ SOME/ALL (subquery)`` with θ drawn from <, >=, <> only."""
    theta = draw(st.sampled_from(NONEQ_THETAS))
    quantifier = draw(st.sampled_from(["some", "all", "any"]))
    corr = draw(st.sampled_from(["s.rk = r.k", "s.w < r.b", ""]))
    where_inner = f"where {corr}" if corr else ""
    lhs = draw(st.sampled_from(["r.a", "r.b"]))
    return (
        f"select r.k from r where {lhs} {theta} {quantifier} "
        f"(select s.v from s {where_inner})"
    )


COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStrategiesAgainstOracle:
    @COMMON_SETTINGS
    @given(db=random_database(), sql=one_level_query())
    def test_one_level(self, db, sql):
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
        for strategy in (
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "system-a-native",
            "auto",
        ):
            assert repro.execute(q, db, strategy=strategy).sorted() == oracle, strategy

    @COMMON_SETTINGS
    @given(db=random_database(), sql=two_level_query())
    def test_two_level(self, db, sql):
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
        for strategy in (
            "nested-relational",
            "nested-relational-optimized",
            "system-a-native",
            "auto",
        ):
            assert repro.execute(q, db, strategy=strategy).sorted() == oracle, strategy

    @COMMON_SETTINGS
    @given(db=random_database(), sql=noneq_quantified_query())
    def test_noneq_some_all(self, db, sql):
        """θ SOME/ALL with non-equality comparators: the quantified cases
        where a wrong NULL treatment shows up as < vs >= asymmetries."""
        from repro.core.optimized import BottomUpLinearStrategy

        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
        for strategy in (
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "system-a-native",
            "auto",
        ):
            assert repro.execute(q, db, strategy=strategy).sorted() == oracle, strategy
        bottom_up = BottomUpLinearStrategy()
        if bottom_up.applicable(q):
            assert bottom_up.execute(q, db).sorted() == oracle, "bottom-up"

    @COMMON_SETTINGS
    @given(db=random_database(), sql=one_level_query())
    def test_bottom_up_when_applicable(self, db, sql):
        from repro.core.optimized import BottomUpLinearStrategy

        q = repro.compile_sql(sql, db)
        strategy = BottomUpLinearStrategy()
        if not strategy.applicable(q):
            return
        oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
        assert strategy.execute(q, db).sorted() == oracle

    @COMMON_SETTINGS
    @given(db=random_database(), sql=one_level_query())
    def test_count_and_boolean_when_applicable(self, db, sql):
        from repro.baselines import BooleanAggregateStrategy, CountRewriteStrategy

        q = repro.compile_sql(sql, db)
        oracle = None
        for strategy in (CountRewriteStrategy(), BooleanAggregateStrategy()):
            if not strategy.applicable(q):
                continue
            if oracle is None:
                oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
            assert strategy.execute(q, db).sorted() == oracle


# --------------------------------------------------------------------- #
# selection operator properties
# --------------------------------------------------------------------- #


class TestSelectionProperties:
    @COMMON_SETTINGS
    @given(
        data=rows(4, max_rows=16),
        theta=st.sampled_from(THETAS),
        quantifier=st.sampled_from(["some", "all"]),
    )
    def test_pseudo_keeps_every_group_strict_keeps_a_subset(self, data, theta, quantifier):
        """σ* preserves group count; σ's survivors are exactly the rows σ*
        leaves unpadded."""
        from repro.core.linking import SetPredicate
        from repro.core.nest import nest
        from repro.core.selection import linking_selection, pseudo_selection

        rel = Relation(
            Schema.of("g", "lhs", "v", "pk", table="t"),
            [
                # pk is a live marker or a NULL empty-set marker, exactly
                # the two shapes outer-join output takes
                (g, lhs, v, NULL if is_null(pk) else 1)
                for g, lhs, v, pk in data
            ],
        )
        nested = nest(rel, by=["t.g", "t.lhs"], keep=["t.v", "t.pk"])
        pred = SetPredicate(quantifier, theta)
        strict = linking_selection(nested, pred, "t.lhs", "t.v", pk_ref="t.pk")
        pseudo = pseudo_selection(
            nested, pred, "t.lhs", "t.v", pk_ref="t.pk", pad_refs=["t.lhs"]
        )
        # σ* keeps every group; σ keeps a subset
        assert len(pseudo) == len(nested)
        assert len(strict) <= len(nested)
        # every strict survivor appears unpadded in the pseudo output
        pseudo_keys = list(map(row_group_key, pseudo.rows))
        for key in map(row_group_key, strict.rows):
            assert key in pseudo_keys

    @COMMON_SETTINGS
    @given(data=rows(3, max_rows=16), theta=st.sampled_from(THETAS))
    def test_strict_some_all_partition_with_complement(self, data, theta):
        """For groups with non-empty live sets and non-NULL outcomes, σ with
        θ SOME and σ with ¬θ ALL partition the input (De Morgan for
        quantifiers)."""
        from repro.engine.types import negate_op
        from repro.core.linking import SetPredicate
        from repro.core.nest import nest
        from repro.core.selection import linking_selection

        rel = Relation(
            Schema.of("g", "lhs", "v", table="t"),
            [(g, lhs, v) for g, lhs, v in data],
        )
        # pk = v here: NULL v doubles as a dead member, keeping the test on
        # the live-members-only contract
        wide = Relation(
            Schema.of("g", "lhs", "v", "pk", table="t"),
            [(g, lhs, v, v) for g, lhs, v in data],
        )
        nested = nest(wide, by=["t.g", "t.lhs"], keep=["t.v", "t.pk"])
        some = linking_selection(
            nested, SetPredicate("some", theta), "t.lhs", "t.v", pk_ref="t.pk"
        )
        all_neg = linking_selection(
            nested,
            SetPredicate("all", negate_op(theta)),
            "t.lhs",
            "t.v",
            pk_ref="t.pk",
        )
        some_keys = set(map(row_group_key, some.rows))
        all_keys = set(map(row_group_key, all_neg.rows))
        # ¬(θ SOME) == ¬θ ALL, so a group can never satisfy both
        assert not (some_keys & all_keys)


class TestAggregateRewriteProperty:
    @COMMON_SETTINGS
    @given(
        r_rows=st.lists(st.tuples(non_null_values, non_null_values), max_size=8),
        s_rows=st.lists(
            st.tuples(non_null_values, non_null_values), max_size=12
        ),
        theta=st.sampled_from(["<", "<=", ">", ">="]),
        quantifier=st.sampled_from(["all", "any"]),
    )
    def test_matches_oracle_on_null_free_data(self, r_rows, s_rows, theta, quantifier):
        """On NOT NULL data Kim's MAX/MIN rewrite is exact — for every
        inequality theta and both quantifiers."""
        from repro.baselines import AggregateRewriteStrategy

        db = Database()
        db.create_table(
            "r",
            [Column("k", not_null=True), Column("a", not_null=True),
             Column("g", not_null=True)],
            [(i, a, g) for i, (a, g) in enumerate(r_rows)],
            primary_key="k",
        )
        db.create_table(
            "s",
            [Column("k", not_null=True), Column("rg", not_null=True),
             Column("b", not_null=True)],
            [(i, rg, b) for i, (rg, b) in enumerate(s_rows)],
            primary_key="k",
        )
        sql = (
            f"select r.k from r where r.a {theta} {quantifier} "
            "(select s.b from s where s.rg = r.g)"
        )
        q = repro.compile_sql(sql, db)
        strategy = AggregateRewriteStrategy()
        assert strategy.applicable(q, db) is None
        oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
        assert strategy.execute(q, db).sorted() == oracle
