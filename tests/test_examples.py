"""Smoke tests: every example script runs cleanly and reports agreement."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestQuickstart:
    def test_runs_and_agrees(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "MISMATCH" not in proc.stdout
        assert "agrees with oracle" in proc.stdout
        assert "Temp2" in proc.stdout or "nest by" in proc.stdout


class TestNullSemantics:
    def test_demonstrates_unsoundness(self):
        proc = run_example("null_semantics.py")
        assert proc.returncode == 0, proc.stderr
        assert "guarded strategy refuses" in proc.stdout
        assert "wrongly included" in proc.stdout
        assert "(correct)" in proc.stdout


class TestTpchSubqueries:
    def test_all_strategies_agree(self):
        proc = run_example("tpch_subqueries.py", "0.001")
        assert proc.returncode == 0, proc.stderr
        assert "WRONG" not in proc.stdout
        assert "All strategies agreed" in proc.stdout
        # every paper query family appears
        for label in ("Query 1", "Query 2a", "Query 2b", "Query 3a(",
                      "Query 3b(", "Query 3c("):
            assert label in proc.stdout


class TestStrategyExplorer:
    def test_covers_shapes_without_wrong_answers(self):
        proc = run_example("strategy_explorer.py")
        assert proc.returncode == 0, proc.stderr
        assert "WRONG" not in proc.stdout
        assert "auto picks" in proc.stdout
        assert "tree query" in proc.stdout
