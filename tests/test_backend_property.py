"""Property test: the row and vector backends are indistinguishable.

For random (query, database) pairs from the fuzzer's generators, the
columnar backend must produce exactly the same relation as the row
backend, and the root spans of their traces must report the same output
cardinality.  The per-operator span *structure* legitimately differs
(``vec-*`` fused kernels versus tuple iterators), but each backend's
trace must independently satisfy the span-tree invariants and reconcile
with its own Metrics totals.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.engine.metrics import collect
from repro.engine.trace import (
    reconcile_with_metrics,
    trace_invariant_violations,
)
from repro.fuzz import FuzzConfig, generate_case

cases = st.builds(
    generate_case,
    config=st.builds(
        FuzzConfig,
        iterations=st.just(1),
        seed=st.integers(min_value=0, max_value=2**16),
        max_depth=st.integers(min_value=1, max_value=3),
        null_rate=st.sampled_from([0.0, 0.25, 0.5]),
        max_rows=st.integers(min_value=1, max_value=6),
    ),
    iteration=st.integers(min_value=0, max_value=3),
)


@given(case=cases)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_row_and_vector_backends_agree(case):
    db = case.db_spec.build()
    prepared = repro.connect(db).prepare(case.sql)

    with collect() as row_metrics:
        row_result, row_trace = prepared.trace(
            strategy="nested-relational", backend="row"
        )
    with collect() as vec_metrics:
        vec_result, vec_trace = prepared.trace(
            strategy="nested-relational", backend="vector"
        )

    assert vec_result.sorted() == row_result.sorted()
    assert vec_result.schema.names == row_result.schema.names

    # same root accounting, independently consistent traces
    assert row_trace.root is not None and vec_trace.root is not None
    assert (
        vec_trace.root.counters.get("rows_out", 0)
        == row_trace.root.counters.get("rows_out", 0)
        == len(row_result)
    )
    for trace, metrics, result in (
        (row_trace, row_metrics, row_result),
        (vec_trace, vec_metrics, vec_result),
    ):
        assert trace_invariant_violations(
            trace, result_cardinality=len(result)
        ) == []
        assert reconcile_with_metrics(trace, metrics.snapshot()) == []
