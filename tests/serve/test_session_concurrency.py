"""Concurrency hammer: one Session shared by many threads.

The serving layer pools sessions over one plan cache and one feedback
store, so ``prepare()``/``execute()`` must be safe — and *exact* —
under concurrent callers.  These tests pin the thread-safety fixes to
:class:`~repro.core.plancache.SessionCache` (locked counters + FIFO
eviction) and :class:`~repro.core.feedback.FeedbackStore` (locked
check-then-set): on the pre-fix code the counter-conservation and
eviction assertions fail intermittently (lost ``+=`` updates,
double-evict ``KeyError``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.core.feedback import FeedbackStore
from repro.core.plancache import _MAX_ENTRIES, SessionCache

N_THREADS = 8
ROUNDS = 6


@pytest.fixture(scope="module")
def db():
    return repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))


@pytest.fixture(scope="module")
def workload():
    return [
        "select o_orderkey, o_orderpriority from orders "
        "where o_totalprice > 1000",
        "select o_orderkey from orders where exists "
        "(select * from lineitem where l_orderkey = o_orderkey "
        "and l_quantity > 30)",
        "select o_orderkey from orders where o_totalprice > all "
        "(select l_extendedprice from lineitem "
        "where l_orderkey = o_orderkey)",
        "select p_partkey from part where p_size in "
        "(select s_suppkey from supplier)",
    ]


def _bag(relation):
    return sorted(relation.rows, key=repr)


def test_parallel_session_parity_vs_sequential(db, workload):
    """N threads × mixed queries over ONE session == sequential answers."""
    session = repro.connect(db)
    baseline = {sql: _bag(session.execute(sql)) for sql in workload}

    errors = []

    def hammer(seed: int):
        try:
            for i in range(ROUNDS):
                sql = workload[(seed + i) % len(workload)]
                got = session.prepare(sql).execute(
                    backend="vector" if (seed + i) % 2 else None
                )
                assert _bag(got) == baseline[sql], sql
        except Exception as exc:  # surfaced below with context
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(hammer, range(N_THREADS)))
    assert errors == []


def test_cache_counters_conserved_under_concurrent_prepare(db, workload):
    """plan hits + misses == total prepare() calls (no lost updates)."""
    session = repro.connect(db)
    calls_per_thread = 25

    def hammer(seed: int):
        for i in range(calls_per_thread):
            session.prepare(workload[(seed + i) % len(workload)])

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(hammer, range(N_THREADS)))
    stats = session.cache_stats
    total = N_THREADS * calls_per_thread
    assert stats.plan_hits + stats.plan_misses == total
    # every distinct SQL text compiled at least once, and re-compilation
    # was the exception, not the rule
    assert stats.plan_misses >= len(workload)
    assert stats.plan_hits > 0


def test_fifo_eviction_safe_and_conserved_under_concurrent_stores():
    """Concurrent inserts far past the bound: no double-evict KeyError,
    and evictions == inserts - retained exactly."""
    cache = SessionCache(enabled=True)
    cache.validate(1)
    per_thread = _MAX_ENTRIES  # 8 × 256 inserts against a 256 bound

    def hammer(seed: int):
        for i in range(per_thread):
            cache.store_plan(f"sql-{seed}-{i}", object())

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(hammer, range(N_THREADS)))
    inserted = N_THREADS * per_thread
    retained = len(cache._plans)
    assert retained <= _MAX_ENTRIES
    assert cache.stats.evictions == inserted - retained


def test_feedback_store_concurrent_harvest_is_exact():
    """Concurrent record(): no lost observations or epoch increments."""
    store = FeedbackStore()
    keys = [(f"fp{i}", f"reduce[T{i % 4}]") for i in range(40)]
    barrier = threading.Barrier(N_THREADS)

    def hammer(seed: int):
        barrier.wait()
        for fp, span in keys:
            store.record(fp, span, 7)  # same value from every thread

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(hammer, range(N_THREADS)))
    # every key recorded exactly once: re-observing an identical value
    # must not bump the epoch, and no observation may be lost
    assert len(store) == len(keys)
    assert store.epoch == len(keys)
    for fp, span in keys:
        assert store.observations(fp)[span] == 7


def test_feedback_epoch_tracks_changes_under_concurrency():
    """Changing values concurrently: epoch lands between the number of
    distinct keys and the number of actual transitions (never lost)."""
    store = FeedbackStore()

    def hammer(value: int):
        for i in range(20):
            store.record("fp", f"reduce[T{i}]", value)

    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(hammer, [1, 2, 3, 4]))
    assert len(store) == 20
    # each key's final value is one of the writers' values, and the
    # epoch counted at least one set per key
    assert store.epoch >= 20
    for i, rows in store.block_overrides("fp").items():
        assert rows in (1, 2, 3, 4)
