"""2VL under the parallel strategy: the ContextVar crosses the pool.

The ambient logic mode lives in a ContextVar, which does NOT propagate
into ``ThreadPoolExecutor`` workers by itself — the morsel scheduler
must snapshot it and re-install it per morsel.  These tests pin that
seam: on a scheduler that forgets the re-install, the pool workers
evaluate under default 3VL while the inline path runs 2VL, and the
parity corpus below diverges (the corpus deliberately contains queries
whose 2VL and 3VL answers differ).
"""

from __future__ import annotations

import pytest

from repro.engine import Column, Database, NULL
from repro.engine.logic import current_logic, logic_mode
from repro.engine.parallel import MorselScheduler
from repro.session import Session

#: queries over NULLable columns where Kleene 3VL and Libkin 2VL
#: genuinely disagree.  The divergence needs an explicit NOT over a
#: NULL-involving predicate: at the top of WHERE, UNKNOWN (3VL) and
#: FALSE (2VL) filter identically, but NOT(UNKNOWN)=UNKNOWN excludes a
#: row while NOT(FALSE)=TRUE keeps it.
CORPUS = [
    "select id from emp where not (dept = some (select ref from probe))",
    "select id from emp where not (dept in (select ref from probe))",
    "select id from emp where not (dept <> all (select ref from probe))",
    "select id from emp where not (dept > some (select ref from probe))",
    "select id from emp where dept not in (select ref from probe)",
    "select id from emp where not exists "
    "(select * from probe where probe.ref = emp.dept)",
]

STRATEGIES = (
    ("nested-relational", None),
    ("nested-relational-vectorized", None),
    ("nested-relational-parallel", 4),
)


@pytest.fixture(scope="module")
def db():
    db = Database()
    rows = [
        (i, NULL if i % 5 == 0 else i % 7, f"name{i}") for i in range(64)
    ]
    db.create_table(
        "emp",
        [Column("id"), Column("dept"), Column("name")],
        rows,
        primary_key="id",
    )
    db.create_table(
        "probe",
        [Column("pid"), Column("ref")],
        [(i, NULL if i % 3 == 0 else i % 6) for i in range(48)],
        primary_key="pid",
    )
    return db


@pytest.fixture(autouse=True)
def tiny_morsels(monkeypatch):
    """Force real pool dispatch even on these small tables."""
    monkeypatch.setenv("REPRO_MIN_PARTITION_ROWS", "1")


def _bag(relation):
    return sorted(relation.rows, key=repr)


def test_pool_workers_observe_the_ambient_logic_mode():
    """Direct seam test: every pooled morsel sees the snapshot mode."""
    scheduler = MorselScheduler(threads=2, min_partition_rows=1)
    with logic_mode("2vl"):
        modes = scheduler.run(
            [(lambda span: current_logic()) for _ in range(8)], None
        )
    assert modes == ["2vl"] * 8  # pre-fix: pool threads report "3vl"
    # and the snapshot is per-run, not sticky
    assert scheduler.run([lambda span: current_logic()], None) == ["3vl"]


@pytest.mark.parametrize("logic", ["3vl", "2vl"])
def test_corpus_parity_across_strategies(db, logic):
    """Frozen corpus: row == vectorized == parallel under BOTH logics."""
    session = Session(db, logic=logic)
    for sql in CORPUS:
        prepared = session.prepare(sql)
        results = {
            name: _bag(prepared.execute(strategy=name, threads=threads))
            for name, threads in STRATEGIES
        }
        baseline = results["nested-relational"]
        for name, got in results.items():
            assert got == baseline, (sql, logic, name)


def test_corpus_has_teeth_2vl_differs_from_3vl(db):
    """At least one corpus query answers differently under 2VL — so the
    parity test above would catch a parallel strategy stuck on 3VL."""
    s3 = Session(db, logic="3vl")
    s2 = Session(db, logic="2vl")
    differing = [
        sql
        for sql in CORPUS
        if _bag(s3.execute(sql)) != _bag(s2.execute(sql))
    ]
    assert differing, "corpus no longer distinguishes the logic modes"
    # the parallel strategy agrees with the row engine on those queries
    for sql in differing:
        got = s2.execute(
            sql, strategy="nested-relational-parallel", threads=4
        )
        assert _bag(got) == _bag(s2.execute(sql)), sql
