"""Shared-spill-dir isolation: per-execution workspaces.

Concurrent executions routinely share one configured ``spill_dir`` (a
server points every tenant at the same scratch volume).  Each execution
must therefore spill into its own ``exec-<pid>-<n>/`` workspace — these
tests pin that: on the pre-fix code, partition temp directories were
created directly under ``spill_dir`` (the workspace-layout assertions
fail), with nothing sweeping an aborted pass's debris.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.engine.colstore import load_stored_database
from repro.engine.governor import ResourceGovernor
from repro.engine.spill import _make_tmp
from repro.errors import SpillError
from repro.tpch import TpchConfig, generate_stored, pick_date_window, query1

#: forces spilling on the join-heavy paper queries at sf 0.002
CAP_MB = 0.2


@pytest.fixture(scope="module")
def stored_db(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve-spill-store") / "tpch")
    generate_stored(
        path, TpchConfig(scale_factor=0.002, seed=1234), chunk_rows=500
    )
    return load_stored_database(path)


@pytest.fixture(scope="module")
def spilling_sql(stored_db):
    lo, hi = pick_date_window(stored_db, 40)
    return query1(lo, hi)


def test_workspaces_unique_per_execution(tmp_path):
    """Two governors over one spill_dir get distinct exec-* workspaces."""
    g1 = ResourceGovernor(memory_limit_mb=1, spill_dir=str(tmp_path))
    g2 = ResourceGovernor(memory_limit_mb=1, spill_dir=str(tmp_path))
    w1, w2 = g1.spill_workspace(), g2.spill_workspace()
    assert w1 != w2
    for w in (w1, w2):
        assert os.path.dirname(w) == str(tmp_path)
        assert os.path.basename(w).startswith(f"exec-{os.getpid()}-")
        assert os.path.isdir(w)
    # lazily memoized: one workspace per execution, not per pass
    assert g1.spill_workspace() == w1
    g1.cleanup_spill_workspace()
    g2.cleanup_spill_workspace()
    assert os.listdir(str(tmp_path)) == []
    g1.cleanup_spill_workspace()  # idempotent


def test_partition_tmpdirs_live_inside_the_workspace(tmp_path):
    """Regression: spill passes create temp dirs under the execution's
    private workspace, never directly in the shared spill_dir."""
    gov = ResourceGovernor(memory_limit_mb=1, spill_dir=str(tmp_path))
    tmp = _make_tmp(gov)
    assert os.path.dirname(tmp) == gov.spill_workspace()
    assert os.path.dirname(tmp) != str(tmp_path)  # fails on pre-fix code
    gov.cleanup_spill_workspace()
    assert os.listdir(str(tmp_path)) == []


def test_concurrent_spilling_queries_share_spill_dir(
    stored_db, spilling_sql, tmp_path
):
    """Two interleaved spilling executions over ONE spill_dir: correct
    results for both, an empty spill_dir afterwards."""
    expected = repro.connect(stored_db).execute(
        spilling_sql, strategy="nested-relational", backend="vector"
    )
    session = repro.connect(
        stored_db, memory_limit_mb=CAP_MB, spill_dir=str(tmp_path)
    )
    barrier = threading.Barrier(2)

    def run(_seed: int):
        barrier.wait()  # both executions genuinely overlap
        return session.execute(
            spilling_sql, strategy="nested-relational", backend="vector"
        )

    with ThreadPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(run, range(2)))
    for got in results:
        assert got == expected
    assert os.listdir(str(tmp_path)) == []


def test_spill_io_fault_two_interleaved_queries(
    stored_db, spilling_sql, tmp_path, monkeypatch
):
    """REPRO_FAULT=spill_io with two interleaved queries: both surface
    the typed SpillError and the shared spill_dir is left empty."""
    monkeypatch.setenv("REPRO_FAULT", "spill_io")
    session = repro.connect(
        stored_db, memory_limit_mb=CAP_MB, spill_dir=str(tmp_path)
    )
    barrier = threading.Barrier(2)

    def run(_seed: int):
        barrier.wait()
        try:
            session.execute(
                spilling_sql, strategy="nested-relational", backend="vector"
            )
            return None
        except Exception as exc:
            return exc

    with ThreadPoolExecutor(max_workers=2) as pool:
        outcomes = list(pool.map(run, range(2)))
    for outcome in outcomes:
        assert isinstance(outcome, SpillError)
        assert "injected spill write failure" in str(outcome)
    assert os.listdir(str(tmp_path)) == []
