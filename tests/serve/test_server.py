"""Server-level behavior: quotas, fairness, drain, stats, HTTP routes.

Driven through :meth:`repro.serve.QueryServer.submit` on a real event
loop (plain ``asyncio.run`` — no async test plugin needed), plus one
test exercising the actual HTTP surface end-to-end.  Slow queries are
simulated with a stub strategy registered for the test, so timing never
depends on data size.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro import strategies as registry
from repro.errors import (
    ServerDrainingError,
    ServerOverloadedError,
    TenantQuotaExceededError,
)
from repro.serve import QueryServer, TenantConfig

SQL = "select o_orderkey from orders where o_totalprice > 1000"
SLEEP_S = 0.12


@pytest.fixture(scope="module")
def db():
    return repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))


@pytest.fixture
def sleepy():
    """A registered strategy that sleeps, then answers correctly."""

    class Sleepy:
        def execute(self, query, db):
            time.sleep(SLEEP_S)
            return registry.make("nested-relational").execute(query, db)

    registry.register("sleepy", replace=True,
                      description="test stub: slow but correct")(Sleepy)
    yield "sleepy"
    registry.unregister("sleepy")


async def _started(db, **kwargs) -> QueryServer:
    server = QueryServer(db, port=0, **kwargs)
    await server.start()
    return server


def test_submit_executes_and_shares_plan_cache(db):
    async def main():
        server = await _started(db, workers=2)
        try:
            expected = repro.connect(db).execute(SQL)
            first = await server.submit(SQL, tenant="bi")
            again = await server.submit(SQL, tenant="etl")
            assert first["row_count"] == len(expected)
            assert first["columns"] == list(expected.schema.names)
            assert again["rows"] == first["rows"]
            stats = server.stats()
            # the second tenant's session hit the SHARED plan memo
            assert stats["cache"]["plan_hits"] >= 1
            assert stats["tenants"]["bi"]["completed"] == 1
            assert stats["tenants"]["etl"]["completed"] == 1
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())


def test_tenant_quota_rejection_while_inflight_complete(db, sleepy):
    async def main():
        server = await _started(
            db, workers=4,
            tenants={"t": TenantConfig("t", max_concurrent=1, max_queued=1)},
        )
        try:
            submits = [
                asyncio.ensure_future(
                    server.submit(SQL, tenant="t",
                                  overrides={"strategy": sleepy})
                )
                for _ in range(4)
            ]
            outcomes = await asyncio.gather(*submits, return_exceptions=True)
            rejected = [o for o in outcomes
                        if isinstance(o, TenantQuotaExceededError)]
            completed = [o for o in outcomes if isinstance(o, dict)]
            # capacity 1 running + 1 queued => exactly 2 admitted, 2 typed
            # rejections, and the admitted ones still answered correctly
            assert len(rejected) == 2
            assert len(completed) == 2
            for payload in completed:
                assert payload["row_count"] > 0
            assert server.stats()["tenants"]["t"]["rejected_quota"] == 2
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())


def test_global_admission_queue_overload(db, sleepy):
    async def main():
        server = await _started(db, workers=1, queue_size=1)
        try:
            first = asyncio.ensure_future(
                server.submit(SQL, overrides={"strategy": sleepy}))
            await asyncio.sleep(0.02)  # let it dispatch (queue empties)
            second = asyncio.ensure_future(
                server.submit(SQL, overrides={"strategy": sleepy}))
            await asyncio.sleep(0.02)  # second now waits in the queue
            with pytest.raises(ServerOverloadedError):
                await server.submit(SQL, overrides={"strategy": sleepy})
            assert (await first)["row_count"] > 0
            assert (await second)["row_count"] > 0
            assert server.rejected_overload == 1
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())


def test_round_robin_is_fair_across_tenants(db, sleepy):
    """A flooding tenant cannot starve another: with one worker, tenant
    b's single query completes before tenant a's backlog drains (FIFO
    dispatch would run it last)."""

    async def main():
        server = await _started(db, workers=1)
        try:
            order = []

            async def tracked(tenant):
                await server.submit(SQL, tenant=tenant,
                                    overrides={"strategy": sleepy})
                order.append(tenant)

            tasks = [asyncio.ensure_future(tracked("a")) for _ in range(3)]
            await asyncio.sleep(0.02)  # a's first is running, rest queued
            tasks.append(asyncio.ensure_future(tracked("b")))
            await asyncio.gather(*tasks)
            assert order.index("b") < len(order) - 1, order
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())


def test_graceful_drain_finishes_inflight_rejects_new(db, sleepy):
    async def main():
        server = await _started(db, workers=2)
        try:
            inflight = [
                asyncio.ensure_future(
                    server.submit(SQL, overrides={"strategy": sleepy}))
                for _ in range(3)
            ]
            await asyncio.sleep(0.02)
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.02)
            assert server.draining
            with pytest.raises(ServerDrainingError):
                await server.submit(SQL)
            results = await asyncio.gather(*inflight)
            assert all(r["row_count"] > 0 for r in results)
            await drain  # resolves because the system is idle
            assert server.stats()["server"]["active"] == 0
        finally:
            await server.stop()

    asyncio.run(main())


def test_http_surface_end_to_end(db):
    """Real sockets: /query, /stats, /health, typed errors, bad routes."""

    async def main():
        server = await _started(db, workers=2)
        url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()

        def post(path, payload):
            req = urllib.request.Request(
                url + path, data=json.dumps(payload).encode(), method="POST")
            try:
                with urllib.request.urlopen(req) as r:
                    return r.status, json.load(r)
            except urllib.error.HTTPError as e:
                return e.code, json.load(e)

        def get(path):
            try:
                with urllib.request.urlopen(url + path) as r:
                    return r.status, json.load(r)
            except urllib.error.HTTPError as e:
                return e.code, json.load(e)

        try:
            status, body = await loop.run_in_executor(
                None, post, "/query", {"sql": SQL, "tenant": "curl"})
            assert status == 200 and body["row_count"] > 0

            status, body = await loop.run_in_executor(
                None, post, "/query", {"sql": "select nope from"})
            assert status == 400
            assert body["error"]["type"] == "ParseError"

            status, body = await loop.run_in_executor(
                None, post, "/query", {"sql": SQL, "bogus_knob": 1})
            assert status == 400
            assert "bogus_knob" in body["error"]["message"]

            status, body = await loop.run_in_executor(None, get, "/stats")
            assert status == 200
            assert {"server", "cache", "feedback", "tenants"} <= set(body)
            assert body["tenants"]["curl"]["completed"] == 1

            status, body = await loop.run_in_executor(None, get, "/health")
            assert (status, body["status"]) == (200, "ok")

            status, body = await loop.run_in_executor(None, get, "/nowhere")
            assert status == 404
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())


def test_per_request_governor_timeout_is_typed(db, sleepy):
    """A request-level timeout surfaces as QueryTimeoutError for that
    request only; the next request on the same tenant succeeds."""
    from repro.errors import QueryTimeoutError

    async def main():
        server = await _started(db, workers=1)
        try:
            with pytest.raises(QueryTimeoutError):
                await server.submit(
                    SQL, tenant="t",
                    overrides={"strategy": sleepy, "timeout_ms": 10},
                )
            ok = await server.submit(SQL, tenant="t")
            assert ok["row_count"] > 0
            stats = server.stats()["tenants"]["t"]
            assert stats["failed"] == 1 and stats["completed"] == 1
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(main())
