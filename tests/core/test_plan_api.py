"""Tests for the typed EXPLAIN result (:class:`repro.core.plan.Plan`):
render formats, candidate access, the analyze attachment, and backward
compatibility with string-style substring checks.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.plan import PLAN_FORMATS, Plan, build_plan
from repro.engine import Column, Database
from repro.engine.trace import validate_trace_dict
from repro.errors import InvalidArgumentError

SQL = "select r.k from r where exists (select * from s where s.rk = r.k)"


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(i, i % 3) for i in range(20)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk")],
        [(i, i % 20) for i in range(60)],
        primary_key="k",
    )
    return d


@pytest.fixture()
def auto_plan(db):
    return repro.connect(db).prepare(SQL).explain()


class TestAutoPlan:
    def test_typed_fields(self, auto_plan):
        assert isinstance(auto_plan, Plan)
        assert auto_plan.sql == SQL
        assert auto_plan.strategy == "auto"
        assert auto_plan.cost_based
        assert len(auto_plan.candidates) >= 2
        assert auto_plan.fingerprint is not None
        assert auto_plan.feedback_epoch == 0
        assert auto_plan.est_rows is not None

    def test_candidate_lookup(self, auto_plan):
        cand = auto_plan.candidate(auto_plan.chosen)
        assert cand is not None and cand.chosen
        assert auto_plan.est_cost == cand.est_cost
        assert auto_plan.candidate("no-such-strategy") is None

    def test_text_render(self, auto_plan):
        text = auto_plan.render("text")
        assert text.startswith(f"auto -> {auto_plan.chosen}  (cost-based)")
        for cand in auto_plan.candidates:
            assert cand.name in text
        assert str(auto_plan) == text

    def test_json_render_round_trips(self, auto_plan):
        doc = json.loads(auto_plan.render("json"))
        assert doc["strategy"] == "auto"
        assert doc["chosen"] == auto_plan.chosen
        chosen = [c for c in doc["candidates"] if c["chosen"]]
        assert len(chosen) == 1
        assert chosen[0]["name"] == auto_plan.chosen
        assert doc["fingerprint"] == auto_plan.fingerprint
        assert isinstance(doc["operators"], list)

    def test_substring_compatibility(self, auto_plan):
        # legacy callers treated explain() results as text
        assert "auto ->" in auto_plan
        assert "no-such-text" not in auto_plan
        assert 42 not in auto_plan

    def test_unknown_format_rejected(self, auto_plan):
        assert PLAN_FORMATS == ("text", "json")
        with pytest.raises(InvalidArgumentError, match="yaml"):
            auto_plan.render("yaml")


class TestFixedPlan:
    def test_fixed_strategy_skips_the_planner(self, db):
        plan = repro.connect(db).prepare(SQL).explain(
            strategy="nested-relational"
        )
        assert plan.chosen == "nested-relational"
        assert not plan.cost_based
        assert plan.candidates == ()
        assert plan.est_cost is None
        assert plan.fingerprint is None
        assert "auto ->" not in plan.render("text")
        doc = json.loads(plan.render("json"))
        assert doc["candidates"] == []
        assert "fingerprint" not in doc


class TestAnalyze:
    def test_analysis_attached(self, db):
        plan = repro.connect(db).prepare(SQL).explain(
            analyze=True, timings=False
        )
        assert plan.analysis is not None
        assert plan.spans is not None
        text = plan.render("text")
        assert plan.analysis in text
        doc = json.loads(plan.render("json"))
        assert "analysis" in doc and "spans" in doc

    def test_spans_are_schema_valid(self, db):
        plan = repro.connect(db).prepare(SQL).explain(analyze=True)
        validate_trace_dict(plan.spans)
        assert plan.spans["version"] == 4

    def test_planner_span_in_analysis(self, db):
        plan = repro.connect(db).prepare(SQL).explain(
            analyze=True, timings=False
        )
        kinds = set()

        def walk(node):
            kinds.add(node.get("kind"))
            for child in node.get("children", ()):
                walk(child)

        for root in plan.spans["spans"]:
            walk(root)
        assert "planner" in kinds


class TestBuildPlan:
    def test_build_plan_direct(self, db):
        query = repro.compile_sql(SQL, db)
        plan = build_plan(query, db, SQL)
        assert plan.strategy == "auto"
        assert plan.cost_based

    def test_threads_surface_parallel_candidate(self, db):
        query = repro.compile_sql(SQL, db)
        plan = build_plan(query, db, SQL, threads=4)
        assert plan.candidate("nested-relational-parallel") is not None
        single = build_plan(query, db, SQL)
        assert single.candidate("nested-relational-parallel") is None
