"""Unit tests for the cost-based planner (:mod:`repro.core.optimizer`).

The planner's contract: enumerate every applicable registered strategy,
price each one, pick the cheapest — with the morsel-parallel strategy a
candidate only under an explicit ``threads > 1``, uncosted third-party
strategies priced pessimistically, and feedback observations overriding
the estimates.
"""

from __future__ import annotations

import pytest

import repro
from repro import strategies as registry
from repro.core.compute import NestedRelationalStrategy
from repro.core.feedback import FeedbackStore
from repro.core.optimizer import (
    DEFAULT_COST_FACTOR,
    PlannerDecision,
    choose,
    default_cost,
    plan_fingerprint,
    strategy_applicable,
)
from repro.core.stats import ColumnStats, PlanStats, collect_stats, set_table_stats
from repro.engine import Column, Database
from repro.errors import PlanError

SQL = "select r.k from r where exists (select * from s where s.rk = r.k)"


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(i, i % 3) for i in range(30)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v")],
        [(i, i % 30, i % 5) for i in range(90)],
        primary_key="k",
    )
    return d


@pytest.fixture()
def query(db):
    return repro.compile_sql(SQL, db)


class TestChoose:
    def test_decision_shape(self, db, query):
        decision = choose(query, db)
        assert isinstance(decision, PlannerDecision)
        assert len(decision.candidates) >= 2
        chosen = [c for c in decision.candidates if c.chosen]
        assert len(chosen) == 1
        assert chosen[0].name == decision.chosen
        assert decision.est_cost == chosen[0].est_cost

    def test_candidates_sorted_cheapest_first(self, db, query):
        decision = choose(query, db)
        costs = [c.est_cost for c in decision.candidates]
        assert costs == sorted(costs)
        assert decision.candidates[0].chosen

    def test_winner_is_minimum_cost(self, db, query):
        decision = choose(query, db)
        best = min(c.est_cost for c in decision.candidates)
        assert decision.est_cost == best

    def test_all_builtin_candidates_are_costed(self, db, query):
        decision = choose(query, db)
        assert all(c.costed for c in decision.candidates)

    def test_parallel_needs_explicit_threads(self, db, query):
        names = {c.name for c in choose(query, db).candidates}
        assert "nested-relational-parallel" not in names
        names = {c.name for c in choose(query, db, threads=4).candidates}
        assert "nested-relational-parallel" in names

    def test_backend_filter(self, db, query):
        row = choose(query, db, backend="row")
        assert {c.backend for c in row.candidates} == {"row"}
        vec = choose(query, db, backend="vector")
        assert {c.backend for c in vec.candidates} == {"vector"}
        assert vec.chosen == "nested-relational-vectorized"

    def test_unsatisfiable_backend_raises(self, db, query):
        with pytest.raises(PlanError, match="no applicable strategy"):
            choose(query, db, backend="quantum")

    def test_tiny_input_prefers_row_engine(self, db, query):
        # 120 base rows of work cannot amortize the vector setup cost
        decision = choose(query, db)
        assert decision.candidates[0].backend == "row"

    def test_seeded_scale_flips_to_vector_engine(self, query):
        d = Database()
        d.create_table(
            "r",
            [Column("k", not_null=True), Column("a")],
            [(i, i % 3) for i in range(30)],
            primary_key="k",
        )
        d.create_table(
            "s",
            [Column("k", not_null=True), Column("rk"), Column("v")],
            [(i, i % 30, i % 5) for i in range(90)],
            primary_key="k",
        )
        set_table_stats(
            d,
            "r",
            row_count=50_000,
            columns={"k": ColumnStats(ndv=50_000.0)},
        )
        set_table_stats(
            d,
            "s",
            row_count=200_000,
            columns={"rk": ColumnStats(ndv=50_000.0)},
        )
        q = repro.compile_sql(SQL, d)
        decision = choose(q, d)
        assert decision.candidates[0].backend == "vector"

    def test_describe_lists_candidates(self, db, query):
        text = choose(query, db).describe()
        assert text.startswith("auto -> ")
        assert "(cost-based)" in text
        assert "* " in text  # the winner is starred


class TestFeedbackIntegration:
    def test_epoch_stamps_decision(self, db, query):
        feedback = FeedbackStore()
        assert choose(query, db, feedback=feedback).feedback_epoch == 0
        fp = plan_fingerprint(query)
        feedback.record(fp, "reduce[T1]", 77)
        decision = choose(query, db, feedback=feedback)
        assert decision.feedback_epoch == 1

    def test_observed_rows_override_estimates(self, db, query):
        feedback = FeedbackStore()
        fp = plan_fingerprint(query)
        (child,) = query.root.children
        feedback.record(fp, f"reduce[T{child.index}]", 7)
        stats = collect_stats(db)
        ps = PlanStats(
            query, stats, overrides=feedback.block_overrides(fp)
        )
        assert ps.block_rows[child.index] == 7.0
        baseline = PlanStats(query, stats)
        assert baseline.block_rows[child.index] == 90.0


class TestFingerprint:
    def test_stable_across_recompiles(self, db):
        a = plan_fingerprint(repro.compile_sql(SQL, db))
        b = plan_fingerprint(repro.compile_sql(SQL, db))
        assert a == b

    def test_changed_constant_changes_fingerprint(self, db):
        a = plan_fingerprint(
            repro.compile_sql("select r.k from r where r.a > 1", db)
        )
        b = plan_fingerprint(
            repro.compile_sql("select r.k from r where r.a > 2", db)
        )
        assert a != b

    def test_different_shape_differs(self, db):
        flat = plan_fingerprint(repro.compile_sql("select r.k from r", db))
        nested = plan_fingerprint(repro.compile_sql(SQL, db))
        assert flat != nested


class TestApplicability:
    def test_no_guard_accepts_everything(self, db, query):
        class Bare:
            pass

        assert strategy_applicable(Bare(), query, db)

    def test_bool_protocol(self, db, query):
        class OneArg:
            def applicable(self, q):
                return q.root.children == []

        assert not strategy_applicable(OneArg(), query, db)

    def test_reason_protocol(self, db, query):
        class TwoArg:
            def applicable(self, q, database):
                return None if q.root.children else "flat queries only"

        assert strategy_applicable(TwoArg(), query, db)
        flat = repro.compile_sql("select r.k from r", db)
        assert not strategy_applicable(TwoArg(), flat, db)


class TestUncostedStrategies:
    def test_default_cost_is_pessimistic(self, db, query):
        ps = PlanStats(query, collect_stats(db))
        assert default_cost(ps) == pytest.approx(
            DEFAULT_COST_FACTOR * ps.pipeline_work
        )

    def test_uncosted_candidate_participates_with_default(self, db, query):
        registry.register(
            "test-uncosted",
            backend="row",
            description="temporary uncosted strategy for the planner test",
        )(lambda: NestedRelationalStrategy())
        try:
            decision = choose(query, db)
            cand = next(
                c for c in decision.candidates if c.name == "test-uncosted"
            )
            assert not cand.costed
            ps = PlanStats(query, collect_stats(db))
            assert cand.est_cost == pytest.approx(default_cost(ps))
            # pessimistic pricing: never beats the identical costed entry
            costed = next(
                c
                for c in decision.candidates
                if c.name == "nested-relational"
            )
            assert cand.est_cost > costed.est_cost
            assert "(default cost)" in cand.describe()
        finally:
            registry.unregister("test-uncosted")

    def test_describe_marks_pricing(self):
        registry.register(
            "test-uncosted",
            backend="row",
            description="temporary uncosted strategy for the listing test",
        )(lambda: NestedRelationalStrategy())
        try:
            listing = registry.describe()
            line = next(
                ln for ln in listing.splitlines() if "test-uncosted" in ln
            )
            assert "default" in line
            costed_line = next(
                ln
                for ln in listing.splitlines()
                if ln.strip().startswith("nested-relational ")
            )
            assert "costed" in costed_line
        finally:
            registry.unregister("test-uncosted")
