"""Trace-invariant suite: for every registered strategy, the span tree
produced by a traced execution must be internally consistent.

Checked per (strategy, query) pair, across the full linking-operator
matrix on the paper's R/S/T data (whose NULLs exercise the pk-NULL
empty-vs-{NULL} distinction) and on the paper's TPC-H queries:

* every span closed, counters non-negative;
* cardinality contracts (filtering / preserving / expanding) hold;
* pull-model row accounting: an operator's ``rows_in`` equals the summed
  ``rows_out`` of the operator spans feeding it;
* the root span's ``rows_out`` equals the result cardinality;
* summed per-span metric deltas reconcile exactly with the ambient
  ``Metrics`` totals of the execution.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.planner import available_strategies, make_strategy
from repro.engine.metrics import collect
from repro.engine.trace import (
    reconcile_with_metrics,
    trace_invariant_violations,
    tracing,
)
from repro.fuzz.runner import _applies
from repro.tpch import query1, query2, query3

#: every strategy the planner can run ("auto" resolves per query)
STRATEGIES = available_strategies()

#: one query per linking operator over the paper's R/S/T relations —
#: correlated subqueries against data with NULLs in both the linking
#: and the correlation columns (conftest ``paper_db``).
LINKING_MATRIX = [
    pytest.param(
        "select A, D from R where exists"
        " (select E from S where F = B)",
        id="EXISTS",
    ),
    pytest.param(
        "select A, D from R where not exists"
        " (select E from S where F = B)",
        id="NOT-EXISTS",
    ),
    pytest.param(
        "select A, D from R where A in"
        " (select E from S where F = B)",
        id="IN",
    ),
    pytest.param(
        "select A, D from R where A not in"
        " (select E from S where F = B)",
        id="NOT-IN",
    ),
    pytest.param(
        "select A, D from R where A < some"
        " (select E from S where F = B)",
        id="theta-SOME",
    ),
    pytest.param(
        "select A, D from R where A >= all"
        " (select E from S where F = B)",
        id="theta-ALL",
    ),
    pytest.param(
        "select A, D from R where A > all"
        " (select E from S where F = B and exists"
        "  (select J from T where K = G))",
        id="two-level-ALL-EXISTS",
    ),
    pytest.param(
        "select A from R where not exists"
        " (select E from S where F = B and H not in"
        "  (select J from T where K = G))",
        id="two-level-NOT-EXISTS-NOT-IN",
    ),
]


def assert_trace_invariants(query, db, strategy):
    with collect() as metrics:
        with tracing() as trace:
            result = repro.execute(query, db, strategy=strategy)
    violations = trace_invariant_violations(
        trace, result_cardinality=len(result)
    )
    assert violations == [], f"{strategy}: {violations}"
    mismatches = reconcile_with_metrics(trace, metrics.snapshot())
    assert mismatches == [], f"{strategy}: {mismatches}"
    assert trace.root is not None, f"{strategy}: expected one root span"
    return trace


class TestLinkingMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("sql", LINKING_MATRIX)
    def test_invariants_hold(self, paper_db, sql, strategy):
        query = repro.compile_sql(sql, paper_db)
        if strategy != "auto" and not _applies(
            make_strategy(strategy), query, paper_db
        ):
            pytest.skip(f"{strategy} does not accept this query")
        assert_trace_invariants(query, paper_db, strategy)


class TestPaperQueries:
    """The six figure queries on the tiny TPC-H instance (one strategy
    sweep per figure; the full strategy matrix runs on the small R/S/T
    data above)."""

    FIGURE_QUERIES = [
        pytest.param(query1("1992-01-01", "1994-06-01"), id="fig4-q1"),
        pytest.param(query2("any", 1, 30, 6000, 25), id="fig5-q2a"),
        pytest.param(query2("all", 1, 30, 6000, 25), id="fig6-q2b"),
        pytest.param(query3("all", "exists", "a", 1, 30, 6000, 25), id="fig7-q3a"),
        pytest.param(query3("all", "not exists", "b", 1, 30, 6000, 25), id="fig8-q3b"),
        pytest.param(query3("any", "exists", "c", 1, 30, 6000, 25), id="fig9-q3c"),
    ]

    SWEEP_STRATEGIES = [
        "nested-relational",
        "nested-relational-optimized",
        "nested-iteration",
        "system-a-native",
        "auto",
    ]

    @pytest.mark.parametrize("sql", FIGURE_QUERIES)
    def test_invariants_hold(self, tiny_tpch_nulls, sql):
        query = repro.compile_sql(sql, tiny_tpch_nulls)
        for strategy in self.SWEEP_STRATEGIES:
            assert_trace_invariants(query, tiny_tpch_nulls, strategy)


class TestTracingIsObservationOnly:
    """Result rows and Metrics counters must be bit-identical with
    tracing on and off (the near-zero-overhead-claim's correctness
    half; the Hypothesis suite covers random queries)."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_result_and_metrics(self, paper_db, strategy):
        sql = (
            "select A, D from R where not exists"
            " (select E from S where F = B)"
        )
        query = repro.compile_sql(sql, paper_db)
        if strategy != "auto" and not _applies(
            make_strategy(strategy), query, paper_db
        ):
            pytest.skip(f"{strategy} does not accept this query")
        with collect() as plain_metrics:
            plain = repro.execute(query, paper_db, strategy=strategy)
        with collect() as traced_metrics:
            with tracing():
                traced = repro.execute(query, paper_db, strategy=strategy)
        assert traced.sorted() == plain.sorted()
        assert traced_metrics.snapshot() == plain_metrics.snapshot()
