"""Unit tests for block reduction and Algorithm 1's machinery."""

import pytest

import repro
from repro.core.blocks import Correlation, LinkSpec, NestedQuery, QueryBlock
from repro.core.compute import (
    NestedRelationalStrategy,
    _subtree_uncorrelated,
    set_predicate_for,
)
from repro.core.reduce import reduce_all, reduce_block, rid_name
from repro.engine import Column, Database, NULL
from repro.engine.expressions import cmp, conjoin, eq
from repro.errors import PlanError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "emp",
        [Column("id", not_null=True), Column("dept"), Column("salary")],
        [(1, 10, 100), (2, 10, 200), (3, 20, 300), (4, NULL, 400)],
        primary_key="id",
    )
    d.create_table(
        "dept",
        [Column("id", not_null=True), Column("budget")],
        [(10, 1000), (20, 50), (30, 9999)],
        primary_key="id",
    )
    d.create_table(
        "bonus",
        [Column("emp_id"), Column("amount")],
        [(1, 5), (1, 7), (2, 11)],
    )
    return d


class TestReduceBlock:
    def test_applies_local_predicate(self, db):
        block = QueryBlock(
            tables={"emp": "emp"},
            local_predicate=cmp("emp.salary", ">", 150),
            select_refs=["emp.id"],
        )
        NestedQuery(block)
        reduced = reduce_block(block, db)
        assert len(reduced.relation) == 3

    def test_rid_column_added(self, db):
        block = QueryBlock(tables={"emp": "emp"}, select_refs=["emp.id"])
        NestedQuery(block)
        reduced = reduce_block(block, db)
        assert rid_name(block) in reduced.relation.schema.names
        rids = reduced.relation.column_values(reduced.rid_ref)
        assert rids == list(range(len(reduced.relation)))

    def test_multi_table_block_joins_on_equality(self, db):
        block = QueryBlock(
            tables={"emp": "emp", "dept": "dept"},
            local_predicate=eq("emp.dept", "dept.id"),
            select_refs=["emp.id"],
        )
        NestedQuery(block)
        reduced = reduce_block(block, db)
        assert len(reduced.relation) == 3  # NULL dept drops out
        assert "dept.budget" in reduced.relation.schema.names

    def test_multi_table_block_without_join_predicate_is_cross(self, db):
        block = QueryBlock(
            tables={"emp": "emp", "dept": "dept"},
            select_refs=["emp.id"],
        )
        NestedQuery(block)
        reduced = reduce_block(block, db)
        assert len(reduced.relation) == 4 * 3

    def test_multi_table_with_residual_theta(self, db):
        from repro.engine.expressions import Col, Comparison

        block = QueryBlock(
            tables={"emp": "emp", "dept": "dept"},
            local_predicate=Comparison(">", Col("dept.budget"), Col("emp.salary")),
            select_refs=["emp.id"],
        )
        NestedQuery(block)
        reduced = reduce_block(block, db)
        assert all(
            row[reduced.relation.schema.index_of("dept.budget")]
            > row[reduced.relation.schema.index_of("emp.salary")]
            for row in reduced.relation.rows
        )

    def test_reduce_all_keys_by_index(self, db):
        child = QueryBlock(
            tables={"bonus": "bonus"},
            link=LinkSpec("exists"),
            correlations=[Correlation("emp.id", "=", "bonus.emp_id")],
        )
        root = QueryBlock(
            tables={"emp": "emp"}, children=[child], select_refs=["emp.id"]
        )
        q = NestedQuery(root)
        reduced = reduce_all(q, db)
        assert set(reduced) == {1, 2}

    def test_local_predicate_referencing_foreign_table_rejected(self, db):
        block = QueryBlock(
            tables={"emp": "emp"},
            local_predicate=eq("emp.dept", "ghost.id"),
            select_refs=["emp.id"],
        )
        NestedQuery(block)
        with pytest.raises(PlanError, match="outside the block"):
            reduce_block(block, db)


class TestSetPredicateFor:
    def test_exists_maps_to_emptiness(self):
        assert set_predicate_for(LinkSpec("exists")).quantifier == "exists"

    def test_in_maps_to_eq_some(self):
        pred = set_predicate_for(LinkSpec("in", "a.x", "=", "b.y"))
        assert pred.quantifier == "some" and pred.theta == "="

    def test_not_in_maps_to_neq_all(self):
        pred = set_predicate_for(LinkSpec("not_in", "a.x", "<>", "b.y"))
        assert pred.quantifier == "all" and pred.theta == "<>"


class TestSubtreeCorrelationAnalysis:
    def test_self_contained_subtree(self):
        inner = QueryBlock(
            tables={"T": "T"},
            link=LinkSpec("exists"),
            correlations=[Correlation("S.I", "=", "T.L")],
        )
        child = QueryBlock(
            tables={"S": "S"}, link=LinkSpec("exists"), children=[inner]
        )
        assert _subtree_uncorrelated(child)

    def test_subtree_reaching_outside(self):
        inner = QueryBlock(
            tables={"T": "T"},
            link=LinkSpec("exists"),
            correlations=[Correlation("R.C", "=", "T.K")],
        )
        child = QueryBlock(
            tables={"S": "S"}, link=LinkSpec("exists"), children=[inner]
        )
        assert not _subtree_uncorrelated(child)


class TestUncorrelatedSubqueries:
    """Non-correlated subqueries: executed once, shared by every tuple."""

    SQL = """
    select emp.id from emp
    where emp.salary > all (select bonus.amount from bonus)
    """

    def test_virtual_cartesian_matches_oracle(self, db):
        q = repro.compile_sql(self.SQL, db)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        fast = NestedRelationalStrategy(virtual_cartesian=True).execute(q, db)
        slow = NestedRelationalStrategy(virtual_cartesian=False).execute(q, db)
        assert fast == oracle
        assert slow == oracle

    def test_uncorrelated_exists_nonempty(self, db):
        sql = "select emp.id from emp where exists (select * from bonus)"
        q = repro.compile_sql(sql, db)
        out = repro.execute(q, db, strategy="nested-relational")
        assert len(out) == 4

    def test_uncorrelated_not_exists_with_empty_subquery(self, db):
        sql = (
            "select emp.id from emp where not exists "
            "(select * from bonus where bonus.amount > 1000)"
        )
        q = repro.compile_sql(sql, db)
        out = repro.execute(q, db, strategy="nested-relational")
        assert len(out) == 4

    def test_uncorrelated_in_with_nullable_inner(self, db):
        sql = "select emp.id from emp where emp.dept in (select dept.id from dept)"
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        out = repro.execute(q, db, strategy="nested-relational")
        assert out == oracle
        assert len(out) == 3  # the NULL-dept emp is UNKNOWN, filtered

    def test_mixed_correlated_and_uncorrelated_children(self, db):
        sql = """
        select emp.id from emp
        where exists (select * from bonus where bonus.emp_id = emp.id)
          and emp.salary < all (select dept.budget from dept where dept.budget > 60)
        """
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        out = repro.execute(q, db, strategy="nested-relational")
        assert out == oracle


class TestAlgorithmOnFlatQueries:
    def test_flat_query_reduces_to_selection(self, db):
        sql = "select emp.id from emp where emp.salary >= 200"
        q = repro.compile_sql(sql, db)
        out = repro.execute(q, db, strategy="nested-relational")
        assert sorted(out.rows) == [(2,), (3,), (4,)]

    def test_distinct_applied(self, db):
        sql = "select distinct bonus.emp_id from bonus"
        q = repro.compile_sql(sql, db)
        out = repro.execute(q, db, strategy="nested-relational")
        assert len(out) == 2


class TestNestImplementations:
    def test_hash_and_sorted_agree_on_nested_query(self, db):
        sql = """
        select emp.id from emp
        where emp.salary > all
          (select bonus.amount from bonus where bonus.emp_id = emp.id)
        """
        q = repro.compile_sql(sql, db)
        a = NestedRelationalStrategy(nest_impl="hash").execute(q, db)
        b = NestedRelationalStrategy(nest_impl="sorted").execute(q, db)
        assert a == b

    def test_unknown_nest_impl(self):
        with pytest.raises(PlanError):
            NestedRelationalStrategy(nest_impl="btree")
