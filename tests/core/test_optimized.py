"""Unit tests for the Section 4.2 optimizations."""

import pytest

import repro
from repro.core.compute import NestedRelationalStrategy
from repro.core.optimized import (
    BottomUpLinearStrategy,
    OptimizedNestedRelationalStrategy,
    PositiveRewriteStrategy,
)
from repro.engine import Column, Database, NULL
from repro.errors import PlanError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [(1, 5, 1), (2, 3, 2), (3, NULL, 1), (4, 9, 9)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v")],
        [(1, 1, 4), (2, 1, NULL), (3, 2, 10), (4, 9, 1), (5, 2, 2)],
        primary_key="k",
    )
    d.create_table(
        "t",
        [Column("k", not_null=True), Column("sk"), Column("w")],
        [(1, 1, 1), (2, 3, 2), (3, 3, NULL), (4, 5, 4)],
        primary_key="k",
    )
    return d


ONE_LEVEL_QUERIES = [
    "select r.k from r where r.a > all (select s.v from s where s.rk = r.b)",
    "select r.k from r where r.a < some (select s.v from s where s.rk = r.b)",
    "select r.k from r where r.a in (select s.v from s where s.rk = r.b)",
    "select r.k from r where r.a not in (select s.v from s where s.rk = r.b)",
    "select r.k from r where exists (select * from s where s.rk = r.b)",
    "select r.k from r where not exists (select * from s where s.rk = r.b)",
]

TWO_LEVEL_LINEAR = [
    """select r.k from r where r.a > all
       (select s.v from s where s.rk = r.b and not exists
          (select * from t where t.sk = s.k))""",
    """select r.k from r where r.a <= some
       (select s.v from s where s.rk = r.b and exists
          (select * from t where t.sk = s.k and t.w < 3))""",
    """select r.k from r where r.k not in
       (select s.rk from s where s.rk = r.k and s.v > all
          (select t.w from t where t.sk = s.k))""",
]


class TestSinglePassPipeline:
    @pytest.mark.parametrize("sql", ONE_LEVEL_QUERIES + TWO_LEVEL_LINEAR)
    def test_matches_oracle(self, db, sql):
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        out = OptimizedNestedRelationalStrategy().execute(q, db)
        assert out == oracle

    @pytest.mark.parametrize("sql", ONE_LEVEL_QUERIES + TWO_LEVEL_LINEAR)
    def test_matches_original_algorithm(self, db, sql):
        q = repro.compile_sql(sql, db)
        original = NestedRelationalStrategy().execute(q, db)
        optimized = OptimizedNestedRelationalStrategy().execute(q, db)
        assert optimized == original

    def test_flat_query(self, db):
        q = repro.compile_sql("select r.k from r where r.a > 4", db)
        out = OptimizedNestedRelationalStrategy().execute(q, db)
        assert sorted(out.rows) == [(1,), (4,)]

    def test_tree_query_falls_back(self, db):
        sql = """
        select r.k from r
        where exists (select * from s where s.rk = r.k)
          and not exists (select * from t where t.sk = r.k)
        """
        q = repro.compile_sql(sql, db)
        assert q.is_tree
        oracle = repro.execute(q, db, strategy="nested-iteration")
        out = OptimizedNestedRelationalStrategy().execute(q, db)
        assert out == oracle

    def test_single_pass_does_one_sort(self, db):
        """The fused pipeline sorts the joined relation exactly once."""
        from repro.engine.metrics import collect

        sql = TWO_LEVEL_LINEAR[0]
        q = repro.compile_sql(sql, db)
        with collect() as m:
            OptimizedNestedRelationalStrategy().execute(q, db)
        joined_size = m.get("rows_sorted")
        with collect() as m2:
            NestedRelationalStrategy(nest_impl="sorted").execute(q, db)
        # original approach re-sorts per nesting level (two levels here)
        assert m2.get("rows_sorted") > joined_size


class TestBottomUpLinear:
    LINEAR_SQL = """
    select r.k from r where r.a > all
      (select s.v from s where s.rk = r.b and not exists
         (select * from t where t.sk = s.k))
    """

    def test_applicable_only_to_linear_correlation(self, db):
        q = repro.compile_sql(self.LINEAR_SQL, db)
        assert BottomUpLinearStrategy().applicable(q)

    def test_not_applicable_to_grandparent_correlation(self, db):
        sql = """
        select r.k from r where r.a > all
          (select s.v from s where s.rk = r.b and not exists
             (select * from t where t.sk = r.k))
        """
        q = repro.compile_sql(sql, db)
        assert not BottomUpLinearStrategy().applicable(q)
        with pytest.raises(PlanError):
            BottomUpLinearStrategy().execute(q, db)

    @pytest.mark.parametrize("sql", ONE_LEVEL_QUERIES + TWO_LEVEL_LINEAR[:2])
    def test_matches_oracle(self, db, sql):
        q = repro.compile_sql(sql, db)
        if not BottomUpLinearStrategy().applicable(q):
            pytest.skip("not linearly correlated")
        oracle = repro.execute(q, db, strategy="nested-iteration")
        out = BottomUpLinearStrategy().execute(q, db)
        assert out == oracle

    def test_pushdown_on_and_off_agree(self, db):
        q = repro.compile_sql(self.LINEAR_SQL, db)
        with_pd = BottomUpLinearStrategy(use_pushdown=True).execute(q, db)
        without_pd = BottomUpLinearStrategy(use_pushdown=False).execute(q, db)
        assert with_pd == without_pd

    def test_uncorrelated_inner_block(self, db):
        sql = "select r.k from r where r.a > all (select s.v from s)"
        q = repro.compile_sql(sql, db)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        assert BottomUpLinearStrategy().execute(q, db) == oracle


class TestPositiveRewrite:
    POSITIVE = [
        "select r.k from r where r.a in (select s.v from s where s.rk = r.b)",
        "select r.k from r where exists (select * from s where s.rk = r.b)",
        """select r.k from r where r.a >= some
           (select s.v from s where s.rk = r.b and exists
              (select * from t where t.sk = s.k))""",
    ]

    @pytest.mark.parametrize("sql", POSITIVE)
    def test_matches_oracle(self, db, sql):
        q = repro.compile_sql(sql, db)
        assert PositiveRewriteStrategy().applicable(q)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        assert PositiveRewriteStrategy().execute(q, db) == oracle

    def test_rejects_negative_links(self, db):
        q = repro.compile_sql(
            "select r.k from r where r.a not in (select s.v from s where s.rk = r.b)",
            db,
        )
        assert not PositiveRewriteStrategy().applicable(q)
        with pytest.raises(PlanError):
            PositiveRewriteStrategy().execute(q, db)

    def test_equivalence_claim_of_section_4_2_5(self, db):
        """σ_{AθSOME{B}}(υ(R ⟕_C S)) ≡ R ⋉_{C ∧ AθB} S — the rewrite and
        the nested relational pipeline must produce identical results."""
        sql = "select r.k from r where r.a = some (select s.v from s where s.rk = r.b)"
        q = repro.compile_sql(sql, db)
        nested_way = NestedRelationalStrategy().execute(q, db)
        join_way = PositiveRewriteStrategy().execute(q, db)
        assert nested_way == join_way
