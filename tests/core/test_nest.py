"""Unit tests for nest / unnest (Definition 3)."""

import pytest

from repro.core.nest import nest, nest_sorted, unnest
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL, row_sort_key
from repro.errors import SchemaError


def rel(rows):
    return Relation(Schema.of("g", "h", "v", "w", table="t"), rows)


DATA = rel(
    [
        (1, "x", 10, 100),
        (1, "x", 20, 200),
        (2, "y", 10, 100),
        (3, "z", NULL, NULL),
        (NULL, "n", 5, 50),
    ]
)


class TestNest:
    def test_groups(self):
        out = nest(DATA, by=["t.g", "t.h"], keep=["t.v", "t.w"])
        assert len(out) == 4
        groups = {row[0]: row[2] for row in out.rows}
        assert groups[1] == ((10, 100), (20, 200))
        assert groups[2] == ((10, 100),)

    def test_implicit_projection(self):
        """Attributes outside N1 ∪ N2 are dropped (the paper's redefinition)."""
        out = nest(DATA, by=["t.g"], keep=["t.v"])
        assert [c.qualified for c in out.schema.atomic_columns] == ["t.g"]
        assert out.schema.subschema("_nested").schema.atomic_schema().names == ("t.v",)

    def test_null_keys_group_together(self):
        out = nest(DATA, by=["t.g"], keep=["t.v"])
        assert len(out) == 4  # groups: 1, 2, 3, NULL

    def test_members_are_a_set(self):
        """Definition 3: the nested value is a set — duplicates collapse."""
        data = rel([(1, "x", 10, 1), (1, "x", 10, 2)])
        out = nest(data, by=["t.g"], keep=["t.v"])
        assert out.rows[0][1] == ((10,),)

    def test_disjointness_enforced(self):
        with pytest.raises(SchemaError, match="disjoint"):
            nest(DATA, by=["t.g"], keep=["t.g", "t.v"])

    def test_custom_set_name(self):
        out = nest(DATA, by=["t.g"], keep=["t.v"], set_name="bag")
        assert out.schema.index_of("bag") == 1

    def test_empty_input(self):
        out = nest(rel([]), by=["t.g"], keep=["t.v"])
        assert len(out) == 0


class TestNestSorted:
    def test_agrees_with_hash_nest(self):
        a = nest(DATA, by=["t.g", "t.h"], keep=["t.v", "t.w"])
        b = nest_sorted(DATA, by=["t.g", "t.h"], keep=["t.v", "t.w"])
        norm_a = {
            row[:2]: tuple(sorted(row[2], key=row_sort_key)) for row in a.rows
        }
        norm_b = {
            row[:2]: tuple(sorted(row[2], key=row_sort_key)) for row in b.rows
        }
        # NULL keys: compare by rendered form to avoid identity pitfalls
        assert len(norm_a) == len(norm_b) == len(a)
        assert {str(k): str(v) for k, v in norm_a.items()} == {
            str(k): str(v) for k, v in norm_b.items()
        }

    def test_groups_emitted_in_key_order(self):
        out = nest_sorted(DATA, by=["t.g"], keep=["t.v"])
        keys = [row[0] for row in out.rows]
        assert keys[0] is NULL  # NULLs sort first
        assert keys[1:] == [1, 2, 3]


class TestUnnest:
    def test_inverse_on_nonempty_groups(self):
        nested = nest(DATA, by=["t.g", "t.h"], keep=["t.v", "t.w"])
        flat = unnest(nested)
        assert flat == rel(DATA.rows).project(["t.g", "t.h", "t.v", "t.w"])

    def test_unnest_drops_empty_groups(self):
        from repro.core.nested import NestedRelation

        nested = nest(DATA, by=["t.g"], keep=["t.v"])
        emptied = NestedRelation(
            nested.schema, [(row[0], ()) for row in nested.rows]
        )
        assert len(unnest(emptied)) == 0

    def test_unnest_unknown_attribute(self):
        nested = nest(DATA, by=["t.g"], keep=["t.v"])
        with pytest.raises(SchemaError):
            unnest(nested, "nope")

    def test_unnest_requires_set_attribute(self):
        nested = nest(DATA, by=["t.g"], keep=["t.v"])
        with pytest.raises(SchemaError):
            unnest(nested, "t.g")


class TestNestUnnestRoundTrip:
    def test_roundtrip_with_unique_keys(self):
        """With a key among the nesting attributes and no empty groups,
        unnest(nest(r)) == r up to column order."""
        data = rel(
            [
                (1, "a", 10, 1),
                (2, "a", 20, 2),
                (3, "b", 30, 3),
            ]
        )
        nested = nest(data, by=["t.g", "t.h"], keep=["t.v", "t.w"])
        assert unnest(nested) == data.project(["t.g", "t.h", "t.v", "t.w"])
