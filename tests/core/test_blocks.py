"""Unit tests for the query-block model and its classification logic."""

import pytest

from repro.core.blocks import (
    Correlation,
    LinkSpec,
    NestedQuery,
    QueryBlock,
)
from repro.engine.expressions import cmp
from repro.errors import AnalysisError


def block(tables, link=None, corrs=(), children=(), select=()):
    return QueryBlock(
        tables=dict(tables),
        link=link,
        correlations=list(corrs),
        children=list(children),
        select_refs=list(select),
    )


def linear_query(link2_op="all", link3_op="not_exists"):
    t = block(
        {"T": "T"},
        link=LinkSpec(link3_op)
        if link3_op in ("exists", "not_exists")
        else LinkSpec(link3_op, "S.H", ">", "T.J"),
        corrs=[Correlation("S.I", "=", "T.L")],
    )
    s = block(
        {"S": "S"},
        link=LinkSpec(link2_op, "R.B", "<>", "S.E")
        if link2_op not in ("exists", "not_exists")
        else LinkSpec(link2_op),
        corrs=[Correlation("R.D", "=", "S.G")],
        children=[t],
    )
    return NestedQuery(block({"R": "R"}, children=[s], select=["R.B"]))


class TestLinkSpec:
    def test_in_normalizes_to_eq_some(self):
        link = LinkSpec("in", "R.B", "=", "S.E")
        assert link.quantifier == "some"
        assert link.effective_theta == "="

    def test_not_in_normalizes_to_neq_all(self):
        link = LinkSpec("not_in", "R.B", "<>", "S.E")
        assert link.quantifier == "all"
        assert link.effective_theta == "<>"

    def test_polarity(self):
        assert LinkSpec("exists").is_positive
        assert LinkSpec("not_exists").is_negative
        assert LinkSpec("all", "a", ">", "b").is_negative
        assert LinkSpec("some", "a", ">", "b").is_positive

    def test_quantified_requires_parts(self):
        with pytest.raises(AnalysisError):
            LinkSpec("all")

    def test_unknown_operator(self):
        with pytest.raises(AnalysisError):
            LinkSpec("maybe")

    def test_describe(self):
        assert LinkSpec("exists").describe() == "EXISTS"
        assert "ALL" in LinkSpec("not_in", "R.B", "<>", "S.E").describe()


class TestCorrelation:
    def test_equality_flag(self):
        assert Correlation("R.D", "=", "S.G").is_equality
        assert not Correlation("R.D", "<", "S.G").is_equality

    def test_as_expr(self):
        expr = Correlation("R.D", "=", "S.G").as_expr()
        assert expr.columns() == ["R.D", "S.G"]

    def test_bad_operator(self):
        with pytest.raises(AnalysisError):
            Correlation("a.x", "~", "b.y")


class TestNumbering:
    def test_dfs_left_to_right(self):
        q = linear_query()
        assert [b.index for b in q.blocks] == [1, 2, 3]

    def test_tree_numbering(self):
        c1 = block({"A": "A"}, link=LinkSpec("exists"))
        c2 = block({"B": "B"}, link=LinkSpec("exists"))
        q = NestedQuery(block({"R": "R"}, children=[c1, c2], select=["R.x"]))
        assert [b.index for b in q.blocks] == [1, 2, 3]
        assert c1.index == 2 and c2.index == 3


class TestShapeClassification:
    def test_linear(self):
        q = linear_query()
        assert q.is_linear and not q.is_tree
        assert q.nesting_depth == 2

    def test_tree(self):
        c1 = block({"A": "A"}, link=LinkSpec("exists"))
        c2 = block({"B": "B"}, link=LinkSpec("exists"))
        q = NestedQuery(block({"R": "R"}, children=[c1, c2], select=["R.x"]))
        assert q.is_tree
        assert q.nesting_depth == 1

    def test_polarity_flags(self):
        q = linear_query("all", "not_exists")
        assert q.has_negative_link and not q.has_positive_link
        q2 = linear_query("some", "not_exists")
        assert q2.has_mixed_links

    def test_linearly_correlated_true(self):
        q = linear_query()
        assert q.is_linearly_correlated()

    def test_linearly_correlated_false_for_grandparent_ref(self):
        t = block(
            {"T": "T"},
            link=LinkSpec("not_exists"),
            corrs=[Correlation("R.C", "=", "T.K")],  # references grandparent
        )
        s = block(
            {"S": "S"},
            link=LinkSpec("all", "R.B", "<>", "S.E"),
            corrs=[Correlation("R.D", "=", "S.G")],
            children=[t],
        )
        q = NestedQuery(block({"R": "R"}, children=[s], select=["R.B"]))
        assert not q.is_linearly_correlated()

    def test_parent_and_ancestors(self):
        q = linear_query()
        blocks = q.blocks
        assert q.parent_of(blocks[1]) is blocks[0]
        assert q.parent_of(blocks[0]) is None
        assert q.ancestors_of(blocks[2]) == [blocks[0], blocks[1]]

    def test_describe_mentions_flags(self):
        text = linear_query().describe()
        assert "linear" in text and "block 1" in text


class TestValidation:
    def test_duplicate_alias_rejected(self):
        child = block({"R": "S"}, link=LinkSpec("exists"))
        with pytest.raises(AnalysisError, match="alias"):
            NestedQuery(block({"R": "R"}, children=[child], select=["R.x"]))

    def test_nonroot_needs_link(self):
        child = block({"S": "S"})
        with pytest.raises(AnalysisError, match="lacks a link"):
            NestedQuery(block({"R": "R"}, children=[child], select=["R.x"]))

    def test_root_needs_select(self):
        with pytest.raises(AnalysisError, match="SELECT"):
            NestedQuery(block({"R": "R"}))

    def test_empty_from_rejected(self):
        with pytest.raises(AnalysisError, match="FROM"):
            NestedQuery(block({}, select=["x"]))

    def test_correlation_must_resolve_in_ancestor(self):
        child = block(
            {"S": "S"},
            link=LinkSpec("exists"),
            corrs=[Correlation("Z.q", "=", "S.G")],
        )
        with pytest.raises(AnalysisError, match="does not"):
            NestedQuery(block({"R": "R"}, children=[child], select=["R.x"]))

    def test_correlation_inner_side_must_belong_to_block(self):
        child = block(
            {"S": "S"},
            link=LinkSpec("exists"),
            corrs=[Correlation("R.D", "=", "R.C")],
        )
        with pytest.raises(AnalysisError, match="inner side"):
            NestedQuery(block({"R": "R"}, children=[child], select=["R.x"]))
