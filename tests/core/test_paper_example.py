"""Golden tests for the paper's running example (Sections 2-4).

Relations R, S, T are Figure 1's data (see ``conftest.paper_db``).  The
expected tuples below are hand-derived by applying Definitions 3-5 to
that data; they pin the pipeline of Example 1 / Figure 2:

* Temp1 — R ⟕_{R.D=S.G} S ⟕_{T.K=R.C ∧ T.L<>S.I} T, projected;
* Temp2 — υ_{{R.B,R.C,R.D,S.E,S.H,S.I},{T.J,T.L}}(Temp1);
* Temp3 — σ*_{S.H>ALL{T.J}, pad {S.E,S.H,S.I}}(Temp2)  (pseudo);
* Temp4 — σ_{S.H>ALL{T.J}}(Temp2)                      (strict);

plus the full Query Q of Section 2 evaluated by every strategy.
"""

import pytest

import repro
from repro.core.linking import SetPredicate
from repro.core.nest import nest, nest_sorted
from repro.core.selection import linking_selection, pseudo_selection
from repro.engine.expressions import Col, Comparison, And
from repro.engine.operators import LeftOuterHashJoin, as_relation
from repro.engine.relation import Relation
from repro.engine.types import NULL, row_sort_key


TEMP1_REFS = ["R.B", "R.C", "R.D", "S.E", "S.H", "S.I", "T.J", "T.L"]

EXPECTED_TEMP1 = [
    (2, 3, 1, 7, 5, 1, NULL, NULL),   # (r1,s1): no T matches T.K=3 ∧ L<>1
    (3, 2, 2, 2, 2, 2, 2, 3),         # (r2,s2,t3)
    (2, 3, 3, 2, 4, 3, 3, 1),         # (r3,s3,t1)
    (2, 3, 3, 4, NULL, 4, 3, 1),      # (r3,s4,t1)
    (NULL, 5, 4, NULL, NULL, NULL, NULL, NULL),  # r4 unmatched twice
]


def temp1(paper_db):
    r = paper_db.relation("R")
    s = paper_db.relation("S")
    t = paper_db.relation("T")
    rs = LeftOuterHashJoin(r, s, ["R.D"], ["S.G"])
    residual = Comparison("<>", Col("T.L"), Col("S.I"))
    rst = LeftOuterHashJoin(rs, t, ["R.C"], ["T.K"], residual=residual)
    return as_relation(rst).project(TEMP1_REFS)


class TestTemp1:
    def test_rows(self, paper_db):
        expected = Relation(temp1(paper_db).schema, EXPECTED_TEMP1)
        assert temp1(paper_db) == expected

    def test_unmatched_outer_tuples_present(self, paper_db):
        """Outer-join padding keeps R tuples with empty subquery results —
        the information classical unnest would need to reconstruct."""
        rows = temp1(paper_db).rows
        assert (NULL, 5, 4, NULL, NULL, NULL, NULL, NULL) in rows


class TestTemp2:
    def test_nest_structure(self, paper_db):
        temp2 = nest(
            temp1(paper_db),
            by=["R.B", "R.C", "R.D", "S.E", "S.H", "S.I"],
            keep=["T.J", "T.L"],
        )
        assert len(temp2) == 5
        groups = {row[2]: row[6] for row in temp2.rows}  # key by R.D... not unique
        # key by the (R.D, S.I) pair instead
        groups = {(row[2], row[5]): row[6] for row in temp2.rows}
        assert groups[(1, 1)] == ((NULL, NULL),)
        assert groups[(2, 2)] == ((2, 3),)
        assert groups[(3, 3)] == ((3, 1),)
        assert groups[(3, 4)] == ((3, 1),)
        assert groups[(4, NULL)] == ((NULL, NULL),)

    def test_sorted_nest_equivalent(self, paper_db):
        a = nest(
            temp1(paper_db),
            by=["R.B", "R.C", "R.D", "S.E", "S.H", "S.I"],
            keep=["T.J", "T.L"],
        )
        b = nest_sorted(
            temp1(paper_db),
            by=["R.B", "R.C", "R.D", "S.E", "S.H", "S.I"],
            keep=["T.J", "T.L"],
        )
        assert len(a) == len(b)


def temp2(paper_db):
    return nest(
        temp1(paper_db),
        by=["R.B", "R.C", "R.D", "S.E", "S.H", "S.I"],
        keep=["T.J", "T.L"],
    )


class TestTemp3PseudoSelection:
    def test_rows(self, paper_db):
        temp3 = pseudo_selection(
            temp2(paper_db),
            SetPredicate("all", ">"),
            linking_ref="S.H",
            linked_ref="T.J",
            pk_ref="T.L",
            pad_refs=["S.E", "S.H", "S.I"],
        )
        expected = Relation(
            temp3.schema,
            [
                (2, 3, 1, 7, 5, 1),                  # empty set: ALL true
                (3, 2, 2, NULL, NULL, NULL),         # 2 > ALL {2} false: padded
                (2, 3, 3, 2, 4, 3),                  # 4 > ALL {3} true
                (2, 3, 3, NULL, NULL, NULL),         # NULL > ALL {3} unknown: padded
                (NULL, 5, 4, NULL, NULL, NULL),      # empty set: true (pads were null)
            ],
        )
        assert temp3 == expected

    def test_paper_narrative_tuple_counts(self, paper_db):
        """'we can not discard this tuple ... we have to keep this tuple by
        padding null values on S.E, S.H and S.I'"""
        temp3 = pseudo_selection(
            temp2(paper_db),
            SetPredicate("all", ">"),
            "S.H",
            "T.J",
            pk_ref="T.L",
            pad_refs=["S.E", "S.H", "S.I"],
        )
        assert len(temp3) == len(temp2(paper_db))


class TestTemp4StrictSelection:
    def test_rows(self, paper_db):
        temp4 = linking_selection(
            temp2(paper_db),
            SetPredicate("all", ">"),
            linking_ref="S.H",
            linked_ref="T.J",
            pk_ref="T.L",
        )
        expected = Relation(
            temp4.schema,
            [
                (2, 3, 1, 7, 5, 1),
                (2, 3, 3, 2, 4, 3),
                (NULL, 5, 4, NULL, NULL, NULL),
            ],
        )
        assert temp4 == expected


QUERY_Q = """
select R.B, R.C, R.D
from R
where R.A > 1
  and R.B not in
    (select S.E from S
     where S.F = 5 and R.D = S.G
       and S.H > all
         (select T.J from T
          where T.K = R.C and T.L <> S.I))
"""


class TestQueryQ:
    """The full two-level query of Section 2, hand-evaluated:

    only r2 = (2,3,2,2) qualifies: its single S candidate s2 fails the
    inner ALL (2 > ALL {2} is false), so the NOT IN set is empty; r3's
    candidate s3 passes the ALL, and R.B = 2 ∈ {2} kills it.
    """

    EXPECTED = [(3, 2, 2)]

    @pytest.mark.parametrize(
        "strategy",
        [
            "nested-iteration",
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "system-a-native",
        ],
    )
    def test_all_strategies(self, paper_db, strategy):
        result = repro.connect(paper_db).execute(QUERY_Q, strategy=strategy)
        assert result.sorted().rows == self.EXPECTED

    def test_query_shape_classification(self, paper_db):
        q = repro.compile_sql(QUERY_Q, paper_db)
        assert q.n_blocks == 3
        assert q.nesting_depth == 2
        assert q.is_linear            # chain R -> S -> T
        assert not q.is_linearly_correlated()  # T correlates with R too
        assert q.has_negative_link and not q.has_mixed_links

    def test_tree_expression_matches_figure3(self, paper_db):
        q = repro.compile_sql(QUERY_Q, paper_db)
        tree = repro.TreeExpression(q)
        rendered = tree.render()
        assert "T1: R" in rendered
        assert "T2: S" in rendered
        assert "T3: T" in rendered
        assert "ALL" in rendered
        assert "R.D = S.G" in rendered
        assert tree.subroots() == []
        assert len(tree.leaves()) == 1

    def test_pure_algorithm_without_virtual_cartesian(self, paper_db):
        from repro.core import NestedRelationalStrategy

        q = repro.compile_sql(QUERY_Q, paper_db)
        strategy = NestedRelationalStrategy(virtual_cartesian=False)
        assert strategy.execute(q, paper_db).sorted().rows == self.EXPECTED

    def test_without_strict_when_positive(self, paper_db):
        from repro.core import NestedRelationalStrategy

        q = repro.compile_sql(QUERY_Q, paper_db)
        strategy = NestedRelationalStrategy(strict_when_positive=False)
        assert strategy.execute(q, paper_db).sorted().rows == self.EXPECTED


class TestLinearVariantOfQueryQ:
    """Section 4.2.3's linear-correlation variant: drop T.K = R.C and flip
    T.L <> S.I to T.L = S.I — now bottom-up evaluation applies."""

    QUERY = """
    select R.B, R.C, R.D
    from R
    where R.A > 1
      and R.B not in
        (select S.E from S
         where S.F = 5 and R.D = S.G
           and S.H > all
             (select T.J from T where T.L = S.I))
    """

    def test_becomes_linearly_correlated(self, paper_db):
        q = repro.compile_sql(self.QUERY, paper_db)
        assert q.is_linearly_correlated()

    def test_bottom_up_agrees_with_oracle(self, paper_db):
        oracle = repro.connect(paper_db).execute(self.QUERY, strategy="nested-iteration")
        bottom_up = repro.connect(paper_db).execute(self.QUERY, strategy="nested-relational-bottomup")
        assert bottom_up == oracle
