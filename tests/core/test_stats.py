"""Unit tests for the cardinality estimator (:mod:`repro.core.stats`).

Covers statistics collection and caching, predicate selectivities, the
per-linking-operator selectivity rules (including the 3VL effect of
NULLs on ``NOT IN``), and :class:`PlanStats` propagation with feedback
overrides.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.blocks import AGG_OP, LinkSpec
from repro.core.stats import (
    DEFAULT_EQ_SEL,
    DEFAULT_RANGE_SEL,
    ColumnStats,
    PlanStats,
    block_resolver,
    clear_stat_overrides,
    collect_stats,
    link_selectivity,
    selectivity,
    set_table_stats,
)
from repro.engine import NULL, Column, Database
from repro.engine.expressions import (
    And,
    Between,
    Col,
    Comparison,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)


@pytest.fixture()
def db():
    """20 rows of t(k, v, tag): v in 1..10 twice, tag NULL every 4th."""
    rows = [
        (i, (i % 10) + 1, NULL if i % 4 == 0 else f"g{i % 5}")
        for i in range(20)
    ]
    d = Database()
    d.create_table(
        "t",
        [Column("k", not_null=True), Column("v"), Column("tag")],
        rows,
        primary_key="k",
    )
    return d


def resolver(db):
    stats = collect_stats(db)
    table = stats.table("t")
    return lambda ref: table.column(ref.split(".")[-1])


class TestCollection:
    def test_row_count_and_exact_ndv(self, db):
        stats = collect_stats(db)
        t = stats.table("t")
        assert t.row_count == 20
        # the table is below SAMPLE_CAP, so the sample is the table
        assert t.column("k").ndv == 20
        assert t.column("v").ndv == 10

    def test_null_fraction_and_extremes(self, db):
        t = collect_stats(db).table("t")
        tag = t.column("tag")
        assert tag.null_frac == pytest.approx(5 / 20)
        v = t.column("v")
        assert (v.min_value, v.max_value) == (1, 10)

    def test_cached_per_version(self, db):
        first = collect_stats(db)
        assert collect_stats(db) is first
        db.create_table("u", [Column("x")], [(1,)])
        second = collect_stats(db)
        assert second is not first
        assert second.table("u").row_count == 1

    def test_override_wins_and_survives_version_bump(self, db):
        set_table_stats(
            db, "t", row_count=5000, columns={"v": ColumnStats(ndv=500.0)}
        )
        stats = collect_stats(db)
        assert stats.table("t").row_count == 5000
        assert stats.column("t", "v").ndv == 500.0
        assert stats.column("t", "v").exact
        # min/max from the sampled base survive the merge
        assert stats.column("t", "v").min_value == 1
        db.create_table("u", [Column("x")], [(1,)])  # bumps the version
        assert collect_stats(db).table("t").row_count == 5000

    def test_clear_overrides(self, db):
        set_table_stats(db, "t", row_count=5000)
        clear_stat_overrides(db)
        assert collect_stats(db).table("t").row_count == 20


class TestPredicateSelectivity:
    def test_none_is_one(self, db):
        assert selectivity(None, resolver(db)) == 1.0

    def test_equality_is_one_over_ndv(self, db):
        sel = selectivity(Comparison("=", Col("t.v"), Literal(5)), resolver(db))
        assert sel == pytest.approx(1 / 10)

    def test_literal_on_the_left_normalizes(self, db):
        r = resolver(db)
        a = selectivity(Comparison("<", Col("t.v"), Literal(5)), r)
        b = selectivity(Comparison(">", Literal(5), Col("t.v")), r)
        assert a == pytest.approx(b)

    def test_range_interpolates_min_max(self, db):
        r = resolver(db)
        low = selectivity(Comparison("<", Col("t.v"), Literal(2)), r)
        high = selectivity(Comparison("<", Col("t.v"), Literal(9)), r)
        assert 0 < low < high < 1

    def test_is_null_uses_null_fraction(self, db):
        r = resolver(db)
        assert selectivity(IsNull(Col("t.tag")), r) == pytest.approx(0.25)
        assert selectivity(
            IsNull(Col("t.tag"), negated=True), r
        ) == pytest.approx(0.75)

    def test_conjunction_multiplies(self, db):
        r = resolver(db)
        eq = Comparison("=", Col("t.v"), Literal(5))
        null = IsNull(Col("t.tag"))
        assert selectivity(And(eq, null), r) == pytest.approx(0.1 * 0.25)

    def test_disjunction_inclusion_exclusion(self, db):
        r = resolver(db)
        eq = Comparison("=", Col("t.v"), Literal(5))
        null = IsNull(Col("t.tag"))
        expected = 0.1 + 0.25 - 0.1 * 0.25
        assert selectivity(Or(eq, null), r) == pytest.approx(expected)

    def test_negation_complements(self, db):
        r = resolver(db)
        assert selectivity(Not(IsNull(Col("t.tag"))), r) == pytest.approx(0.75)

    def test_between_combines_bounds(self, db):
        r = resolver(db)
        sel = selectivity(Between(Col("t.v"), Literal(3), Literal(7)), r)
        assert 0 < sel < 1

    def test_in_list_scales_equality(self, db):
        r = resolver(db)
        items = (Literal(1), Literal(2), Literal(3))
        sel = selectivity(InList(Col("t.v"), items), r)
        assert sel == pytest.approx(3 / 10)
        neg = selectivity(InList(Col("t.v"), items, negated=True), r)
        assert neg == pytest.approx(1.0 - 3 / 10)

    def test_column_to_column_equality_uses_larger_ndv(self, db):
        r = resolver(db)
        sel = selectivity(Comparison("=", Col("t.k"), Col("t.v")), r)
        assert sel == pytest.approx(1 / 20)

    def test_unresolvable_column_falls_back(self, db):
        r = resolver(db)
        sel = selectivity(Comparison("=", Col("t.missing"), Literal(1)), r)
        assert sel == DEFAULT_EQ_SEL

    def test_block_resolver_alias_first(self, db):
        query = repro.compile_sql("select a.k from t a where a.v > 3", db)
        resolve = block_resolver(query.root, collect_stats(db))
        assert resolve("a.v").ndv == 10
        assert resolve("v").ndv == 10
        assert resolve("zz.v") is None


class TestLinkSelectivity:
    def test_exists_is_smooth_nonempty_probability(self):
        link = LinkSpec("exists")
        assert link_selectivity(link, 3.0) == pytest.approx(0.75)
        assert link_selectivity(link, 0.0) == 0.0

    def test_not_exists_complements(self):
        link = LinkSpec("not_exists")
        assert link_selectivity(link, 3.0) == pytest.approx(0.25)
        assert link_selectivity(link, 0.0) == 1.0

    def test_in_matches_any_of_group(self):
        link = LinkSpec("in", outer_ref="r.a", theta="=", inner_ref="s.b")
        inner = ColumnStats(ndv=10.0)
        g = 2.0
        p_nonempty = g / (1 + g)
        expected = p_nonempty * (1.0 - 0.9**g)
        got = link_selectivity(link, g, inner=inner)
        assert got == pytest.approx(expected)

    def test_in_tracks_outer_null_fraction(self):
        link = LinkSpec("in", outer_ref="r.a", theta="=", inner_ref="s.b")
        inner = ColumnStats(ndv=10.0)
        clean = link_selectivity(link, 2.0, inner=inner)
        nully = link_selectivity(
            link, 2.0, outer=ColumnStats(null_frac=0.5), inner=inner
        )
        assert nully < clean

    def test_all_passes_empty_groups(self):
        link = LinkSpec("all", outer_ref="r.a", theta="=", inner_ref="s.b")
        assert link_selectivity(link, 0.0) == 1.0

    def test_all_requires_every_element(self):
        link = LinkSpec("all", outer_ref="r.a", theta="=", inner_ref="s.b")
        inner = ColumnStats(ndv=10.0)
        g = 3.0
        p_nonempty = g / (1 + g)
        expected = (1 - p_nonempty) + p_nonempty * 0.1**g
        assert link_selectivity(link, g, inner=inner) == pytest.approx(expected)

    def test_not_in_killed_by_inner_nulls(self):
        link = LinkSpec("not_in", outer_ref="r.a", theta="<>", inner_ref="s.b")
        clean = link_selectivity(link, 4.0, inner=ColumnStats(ndv=50.0))
        nully = link_selectivity(
            link, 4.0, inner=ColumnStats(ndv=50.0, null_frac=0.5)
        )
        # one NULL element makes NOT IN UNKNOWN in 3VL: far fewer rows pass
        assert nully < clean
        assert clean > 0.3

    def test_some_more_selective_than_exists(self):
        exists = LinkSpec("exists")
        some = LinkSpec("some", outer_ref="r.a", theta="=", inner_ref="s.b")
        inner = ColumnStats(ndv=100.0)
        g = 5.0
        assert link_selectivity(some, g, inner=inner) < link_selectivity(
            exists, g
        )

    def test_aggregate_links_use_defaults(self):
        eq = LinkSpec(
            AGG_OP, outer_ref="r.a", theta="=", agg_func="count_star"
        )
        rng = LinkSpec(
            AGG_OP, outer_ref="r.a", theta=">", agg_func="count_star"
        )
        assert link_selectivity(eq, 3.0) == DEFAULT_EQ_SEL
        assert link_selectivity(rng, 3.0) == DEFAULT_RANGE_SEL


class TestPlanStats:
    @pytest.fixture()
    def linked(self):
        d = Database()
        d.create_table(
            "r",
            [Column("k", not_null=True), Column("a")],
            [(i, i % 4) for i in range(40)],
            primary_key="k",
        )
        d.create_table(
            "s",
            [Column("k", not_null=True), Column("rk"), Column("v")],
            [(i, i % 40, i % 7) for i in range(120)],
            primary_key="k",
        )
        sql = (
            "select r.k from r where exists "
            "(select * from s where s.rk = r.k)"
        )
        return d, repro.compile_sql(sql, d)

    def test_block_rows_follow_base_and_predicates(self, linked):
        db, query = linked
        ps = PlanStats(query, collect_stats(db))
        root = query.root
        (child,) = root.children
        assert ps.base_rows[root.index] == 40.0
        assert ps.block_rows[child.index] == 120.0
        # correlation s.rk = r.k: 120 inner rows / ndv 40 = 3 per outer
        assert ps.level_rows[child.index] == pytest.approx(40.0 * 3.0)
        assert 0.0 < ps.link_sel[child.index] <= 1.0
        assert ps.out_rows <= ps.block_rows[root.index]

    def test_pipeline_work_decomposes(self, linked):
        db, query = linked
        ps = PlanStats(query, collect_stats(db))
        assert ps.pipeline_work == pytest.approx(
            ps.scan_work + ps.join_work + ps.nest_work
        )
        assert ps.scan_work == pytest.approx(160.0)

    def test_overrides_replace_block_estimates(self, linked):
        db, query = linked
        (child,) = query.root.children
        ps = PlanStats(
            query, collect_stats(db), overrides={child.index: 7}
        )
        assert ps.block_rows[child.index] == 7.0

    def test_threads_clamped_to_at_least_one(self, linked):
        db, query = linked
        assert PlanStats(query, collect_stats(db), threads=0).threads == 1
        assert PlanStats(query, collect_stats(db), threads=4).threads == 4
