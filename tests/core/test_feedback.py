"""The planner's feedback loop: unit tests for :class:`FeedbackStore`
and the end-to-end convergence scenario — a seeded mis-estimate makes
``auto`` pick a row strategy, one traced execution teaches the session
the real cardinalities, and the next resolution switches to the vector
engine.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.feedback import FeedbackStore
from repro.core.optimizer import plan_fingerprint
from repro.core.stats import set_table_stats
from repro.engine import Column, Database

SQL = "select r.k from r where exists (select * from s where s.rk = r.k)"

ROW_STRATEGIES = {
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "nested-relational-bottomup",
    "nested-relational-positive-rewrite",
    "classical-unnesting",
    "aggregate-rewrite",
    "count-rewrite",
    "boolean-aggregate",
    "nested-iteration",
    "system-a-native",
}


def build_db(outer_rows: int = 800, inner_rows: int = 3000) -> Database:
    db = Database()
    db.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(i, i % 5) for i in range(outer_rows)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v")],
        [(i, i % outer_rows, i % 11) for i in range(inner_rows)],
        primary_key="k",
    )
    return db


class TestFeedbackStore:
    def test_record_bumps_epoch_once_per_change(self):
        store = FeedbackStore()
        store.record("fp", "reduce[T0]", 10)
        assert store.epoch == 1
        store.record("fp", "reduce[T0]", 10)  # identical: no bump
        assert store.epoch == 1
        store.record("fp", "reduce[T0]", 12)
        assert store.epoch == 2
        assert len(store) == 1

    def test_block_overrides_parse_span_names(self):
        store = FeedbackStore()
        store.record("fp", "reduce[T0]", 10)
        store.record("fp", "reduce[T3]", 7)
        store.record("fp", "execute", 4)
        store.record("other", "reduce[T0]", 99)
        assert store.block_overrides("fp") == {0: 10, 3: 7}
        assert store.out_rows("fp") == 4
        assert store.out_rows("missing") is None
        assert store.observations("fp") == {
            "reduce[T0]": 10,
            "reduce[T3]": 7,
            "execute": 4,
        }

    def test_clear_forgets_and_bumps(self):
        store = FeedbackStore()
        store.clear()  # empty: nothing to forget, epoch untouched
        assert store.epoch == 0
        store.record("fp", "execute", 1)
        store.clear()
        assert len(store) == 0
        assert store.epoch == 2

    def test_observe_harvests_trace(self):
        db = build_db(40, 120)
        session = repro.connect(db)
        query = session.prepare(SQL)
        result, trace = query.trace(strategy="nested-relational")
        store = FeedbackStore()
        fp = plan_fingerprint(query.query)
        seen = store.observe(fp, trace)
        assert seen >= 2  # the root span plus one reduce span per block
        assert store.out_rows(fp) == len(result)
        overrides = store.block_overrides(fp)
        assert overrides[query.query.root.index] == 40
        (child,) = query.query.root.children
        assert overrides[child.index] == 120


class TestConvergence:
    @pytest.fixture()
    def misestimated(self):
        """Real data is 800x3000 rows; the seeded statistics claim the
        tables are nearly empty, so estimate-driven costs favor the row
        engine."""
        db = build_db()
        set_table_stats(db, "r", row_count=2)
        set_table_stats(db, "s", row_count=4)
        return db

    def test_second_execution_switches_strategy(self, misestimated):
        session = repro.connect(misestimated)
        query = session.prepare(SQL)

        first = query.explain()
        assert first.chosen in ROW_STRATEGIES  # fooled by the seed
        assert first.feedback_epoch == 0

        result, trace = query.trace()
        assert trace.roots[0].attrs["strategy"] == first.chosen

        second = query.explain()
        assert second.feedback_epoch > 0
        assert second.chosen == "nested-relational-vectorized"

        # the re-costed decision actually executes
        result2, trace2 = query.trace()
        assert trace2.roots[0].attrs["strategy"] == second.chosen
        assert result2.sorted() == result.sorted()

    def test_planner_span_records_the_switch(self, misestimated):
        session = repro.connect(misestimated)
        query = session.prepare(SQL)
        _, before = query.trace()
        _, after = query.trace()
        (span_before,) = before.find("planner")
        (span_after,) = after.find("planner")
        assert span_before.attrs["chosen"] in ROW_STRATEGIES
        assert span_after.attrs["chosen"] == "nested-relational-vectorized"
        assert int(span_after.attrs["feedback_epoch"]) > int(
            span_before.attrs["feedback_epoch"]
        )

    def test_converges_after_one_observation(self, misestimated):
        session = repro.connect(misestimated)
        query = session.prepare(SQL)
        query.trace()
        settled = query.explain()
        epoch = session.feedback.epoch
        # re-observing identical cardinalities teaches nothing new
        query.trace()
        assert session.feedback.epoch == epoch
        assert query.explain().chosen == settled.chosen

    def test_feedback_is_per_session(self, misestimated):
        taught = repro.connect(misestimated)
        taught.prepare(SQL).trace()
        assert taught.feedback.epoch > 0
        fresh = repro.connect(misestimated)
        assert fresh.feedback.epoch == 0
        assert fresh.prepare(SQL).explain().chosen in ROW_STRATEGIES

    def test_untraced_execution_does_not_observe(self, misestimated):
        session = repro.connect(misestimated)
        query = session.prepare(SQL)
        query.execute()
        assert session.feedback.epoch == 0

    def test_fixed_strategy_traces_also_teach(self, misestimated):
        """The fingerprint is strategy-independent, so a traced run
        under a *fixed* strategy still feeds the auto planner."""
        session = repro.connect(misestimated)
        query = session.prepare(SQL)
        query.trace(strategy="nested-relational")
        assert session.feedback.epoch > 0
        assert query.explain().chosen == "nested-relational-vectorized"
