"""Golden-file tests for EXPLAIN and EXPLAIN ANALYZE on the six paper
queries (Figures 4-9), rendered through the typed
:class:`~repro.core.plan.Plan` API.

The expected texts live under ``tests/golden/``; regenerate them after
an intentional plan-, cost-model- or trace-format change with::

    PYTHONPATH=src python -m pytest tests/core/test_explain_golden.py --update-golden

The ``explain_*.txt`` files carry the cost-based planner's candidate
table (cheapest first, winner starred) followed by the operator tree;
``explain_fig4_q1.json`` pins the machine-readable render.  EXPLAIN
ANALYZE goldens are rendered with ``timings=False``, so the files are
fully deterministic: the tiny TPC-H instance is seeded, the planner and
its statistics sampling are deterministic, and every counter in the
trace is a function of the data alone.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.tpch import query1, query2, query3

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "golden")

#: the six figure queries, keyed by golden-file stem
PAPER_QUERIES = [
    pytest.param("fig4_q1", query1("1992-01-01", "1994-06-01"), id="fig4-q1"),
    pytest.param("fig5_q2a", query2("any", 1, 30, 6000, 25), id="fig5-q2a"),
    pytest.param("fig6_q2b", query2("all", 1, 30, 6000, 25), id="fig6-q2b"),
    pytest.param(
        "fig7_q3a", query3("all", "exists", "a", 1, 30, 6000, 25), id="fig7-q3a"
    ),
    pytest.param(
        "fig8_q3b",
        query3("all", "not exists", "b", 1, 30, 6000, 25),
        id="fig8-q3b",
    ),
    pytest.param(
        "fig9_q3c", query3("any", "exists", "c", 1, 30, 6000, 25), id="fig9-q3c"
    ),
]


def check_golden(name: str, text: str, update: bool) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if update:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return
    assert os.path.exists(path), (
        f"golden file {name} is missing — generate it with "
        "pytest --update-golden"
    )
    with open(path) as handle:
        expected = handle.read()
    assert text + "\n" == expected, (
        f"{name} drifted from its golden file; if the change is "
        "intentional, regenerate with pytest --update-golden"
    )


class TestExplainGolden:
    @pytest.mark.parametrize("stem,sql", PAPER_QUERIES)
    def test_plan_text(self, tiny_tpch, update_golden, stem, sql):
        plan = repro.connect(tiny_tpch).prepare(sql).explain()
        assert plan.cost_based
        check_golden(f"explain_{stem}.txt", plan.render("text"), update_golden)

    @pytest.mark.parametrize("stem,sql", PAPER_QUERIES[:1])
    def test_plan_json(self, tiny_tpch, update_golden, stem, sql):
        plan = repro.connect(tiny_tpch).prepare(sql).explain()
        check_golden(f"explain_{stem}.json", plan.render("json"), update_golden)


class TestExplainAnalyzeGolden:
    @pytest.mark.parametrize("stem,sql", PAPER_QUERIES)
    def test_annotated_trace_text(self, tiny_tpch, update_golden, stem, sql):
        plan = repro.connect(tiny_tpch).prepare(sql).explain(
            analyze=True, timings=False
        )
        assert plan.analysis is not None
        check_golden(f"analyze_{stem}.txt", plan.analysis, update_golden)

    @pytest.mark.parametrize("stem,sql", PAPER_QUERIES[:1])
    def test_analyze_is_deterministic(self, tiny_tpch, stem, sql):
        session = repro.connect(tiny_tpch)
        first = session.prepare(sql).explain(analyze=True, timings=False)
        second = session.prepare(sql).explain(analyze=True, timings=False)
        assert first.analysis == second.analysis
