"""Unit tests for linking selection and pseudo-selection (Definition 5)."""

import pytest

from repro.core.linking import SetPredicate
from repro.core.nest import nest
from repro.core.selection import linking_selection, pseudo_selection
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import NULL, is_null
from repro.errors import SchemaError


def joined(rows):
    """outer (o.k, o.val) ⟕ inner (i.v, i.pk) — already flattened."""
    return Relation(Schema.of("k", "val") .rename_table("o").concat(
        Schema.of("v", "pk").rename_table("i")), rows)


DATA = joined(
    [
        (1, 5, 2, 10),      # group 1: {2, 3}
        (1, 5, 3, 11),
        (2, 5, 9, 12),      # group 2: {9}
        (3, 5, NULL, NULL),  # group 3: empty (padded by outer join)
        (4, NULL, 7, 13),   # group 4: NULL linking value, {7}
    ]
)


def nested():
    return nest(DATA, by=["o.k", "o.val"], keep=["i.v", "i.pk"])


class TestStrictSelection:
    def test_all_predicate(self):
        out = linking_selection(
            nested(), SetPredicate("all", ">"), "o.val", "i.v", pk_ref="i.pk"
        )
        # group1: 5>ALL{2,3} T; group2: 5>ALL{9} F; group3: empty T;
        # group4: NULL>ALL{7} U -> dropped
        assert sorted(row[0] for row in out.rows) == [1, 3]

    def test_some_predicate(self):
        out = linking_selection(
            nested(), SetPredicate("some", "<"), "o.val", "i.v", pk_ref="i.pk"
        )
        # 5<SOME{2,3} F; 5<SOME{9} T; empty F; NULL U
        assert [row[0] for row in out.rows] == [2]

    def test_exists(self):
        out = linking_selection(
            nested(), SetPredicate("exists"), None, None, pk_ref="i.pk"
        )
        assert sorted(row[0] for row in out.rows) == [1, 2, 4]

    def test_not_exists(self):
        out = linking_selection(
            nested(), SetPredicate("not_exists"), None, None, pk_ref="i.pk"
        )
        assert [row[0] for row in out.rows] == [3]

    def test_output_is_flat_projection(self):
        out = linking_selection(
            nested(), SetPredicate("exists"), None, None, pk_ref="i.pk"
        )
        assert out.schema.names == ("o.k", "o.val")


class TestPseudoSelection:
    def test_failing_rows_padded_not_dropped(self):
        out = pseudo_selection(
            nested(),
            SetPredicate("all", ">"),
            "o.val",
            "i.v",
            pk_ref="i.pk",
            pad_refs=["o.val"],
        )
        assert len(out) == 4  # every group survives
        by_k = {row[0]: row[1] for row in out.rows}
        assert by_k[1] == 5          # passed: intact
        assert is_null(by_k[2])      # failed: padded
        assert by_k[3] == 5          # empty set: ALL passes
        assert is_null(by_k[4])      # UNKNOWN: padded

    def test_unpadded_attributes_survive_on_failure(self):
        out = pseudo_selection(
            nested(),
            SetPredicate("all", ">"),
            "o.val",
            "i.v",
            pk_ref="i.pk",
            pad_refs=["o.val"],
        )
        ks = sorted(row[0] for row in out.rows)
        assert ks == [1, 2, 3, 4]  # the non-padded attribute is intact

    def test_padding_the_key_marks_emptiness_downstream(self):
        """Padding a block's key makes the tuple a dead member for the
        next nest level — the core trick for negative linking."""
        out = pseudo_selection(
            nested(),
            SetPredicate("all", ">"),
            "o.val",
            "i.v",
            pk_ref="i.pk",
            pad_refs=["o.k", "o.val"],
        )
        padded = [row for row in out.rows if is_null(row[0])]
        assert len(padded) == 2


class TestValidation:
    def test_missing_set_attribute(self):
        flat = nest(DATA, by=["o.k", "o.val"], keep=["i.v", "i.pk"], set_name="grp")
        with pytest.raises(SchemaError):
            linking_selection(
                flat, SetPredicate("exists"), None, None, pk_ref="i.pk"
            )

    def test_pk_must_live_in_set(self):
        with pytest.raises(SchemaError):
            linking_selection(
                nested(), SetPredicate("exists"), None, None, pk_ref="o.k"
            )

    def test_linking_ref_must_be_atomic(self):
        with pytest.raises(SchemaError):
            linking_selection(
                nested(), SetPredicate("all", ">"), "i.v", "i.v", pk_ref="i.pk"
            )
