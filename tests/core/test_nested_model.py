"""Unit tests for the nested relational model (Definitions 1-2)."""

import pytest

from repro.core.nested import NestedRelation, NestedSchema, SubSchema
from repro.engine.schema import Column, Schema
from repro.engine.types import NULL
from repro.errors import SchemaError


def flat_schema():
    return NestedSchema.flat(Schema.of("a", "b", table="t"))


def one_level():
    sub = NestedSchema.flat(Schema.of("x", "y", table="s"))
    return NestedSchema(
        [Column("a", table="t"), SubSchema("grp", sub)]
    )


def two_level():
    inner = NestedSchema.flat(Schema.of("z", table="u"))
    mid = NestedSchema([Column("x", table="s"), SubSchema("inner", inner)])
    return NestedSchema([Column("a", table="t"), SubSchema("mid", mid)])


class TestDepth:
    def test_flat_depth_zero(self):
        assert flat_schema().depth == 0

    def test_one_level(self):
        assert one_level().depth == 1

    def test_two_level(self):
        """Definition 1: depth(R) = 1 + max depth of subschemas."""
        assert two_level().depth == 2

    def test_depth_max_over_subschemas(self):
        schema = NestedSchema(
            [
                Column("a", table="t"),
                SubSchema("flat1", flat_schema()),
                SubSchema("deep", one_level()),
            ]
        )
        assert schema.depth == 2


class TestSchemaAccess:
    def test_component_names_unique(self):
        with pytest.raises(SchemaError, match="duplicate"):
            NestedSchema([Column("a", table="t"), Column("a", table="t")])

    def test_index_of_qualified(self):
        s = one_level()
        assert s.index_of("t.a") == 0
        assert s.index_of("grp") == 1

    def test_index_of_bare_atomic(self):
        assert one_level().index_of("a") == 0

    def test_unknown_component(self):
        with pytest.raises(SchemaError):
            one_level().index_of("zzz")

    def test_subschema_accessor(self):
        sub = one_level().subschema("grp")
        assert sub.schema.depth == 0

    def test_subschema_accessor_rejects_atomic(self):
        with pytest.raises(SchemaError):
            one_level().subschema("t.a")

    def test_atomic_schema(self):
        assert one_level().atomic_schema().names == ("t.a",)

    def test_to_flat_requires_depth_zero(self):
        assert flat_schema().to_flat().names == ("t.a", "t.b")
        with pytest.raises(SchemaError):
            one_level().to_flat()


class TestNestedRelation:
    def test_construction_checks_arity(self):
        with pytest.raises(SchemaError):
            NestedRelation(one_level(), [(1,)])

    def test_group_accessor(self):
        r = NestedRelation(one_level(), [(1, ((10, 20), (30, 40)))])
        assert r.group(r.rows[0], "grp") == ((10, 20), (30, 40))

    def test_project_atomic_drops_sets(self):
        r = NestedRelation(one_level(), [(1, ((10, 20),))])
        flat = r.project_atomic()
        assert flat.schema.depth == 0
        assert flat.rows == [(1,)]

    def test_to_table_renders_sets(self):
        r = NestedRelation(one_level(), [(1, ((10, NULL),))])
        text = r.to_table()
        assert "{(10, null)}" in text
        assert "grp" in text

    def test_depth_property(self):
        assert NestedRelation(two_level()).depth == 2
