"""Unit tests for linking predicates (Definition 4) and their 3VL
semantics — including every NULL corner the paper builds its case on."""

import pytest

from repro.core.linking import SetPredicate, evaluate_quantified
from repro.engine.types import FALSE, NULL, TRUE, UNKNOWN
from repro.errors import ExpressionError


def members(*pairs):
    """(value, pk) members; pk defaults to a live marker."""
    out = []
    for p in pairs:
        if isinstance(p, tuple):
            out.append(p)
        else:
            out.append((p, 1))
    return out


class TestConstruction:
    def test_quantified_requires_theta(self):
        with pytest.raises(ExpressionError):
            SetPredicate("all")

    def test_unknown_quantifier(self):
        with pytest.raises(ExpressionError):
            SetPredicate("most")

    def test_describe(self):
        assert "ALL" in SetPredicate("all", ">").describe()
        assert "∅" in SetPredicate("exists").describe()


class TestAllSemantics:
    def test_vacuous_true_on_empty(self):
        assert SetPredicate("all", ">").evaluate(5, []) is TRUE

    def test_all_pass(self):
        assert SetPredicate("all", ">").evaluate(5, members(1, 2, 3)) is TRUE

    def test_one_fails(self):
        assert SetPredicate("all", ">").evaluate(5, members(1, 9)) is FALSE

    def test_paper_null_member_example(self):
        """R.A = 5 vs S.B = {2, 3, 4, null}: 5 > ALL is UNKNOWN (Section 2)."""
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, members(2, 3, 4, NULL)) is UNKNOWN

    def test_false_beats_unknown(self):
        assert SetPredicate("all", ">").evaluate(5, members(NULL, 9)) is FALSE

    def test_null_lhs_nonempty_unknown(self):
        assert SetPredicate("all", ">").evaluate(NULL, members(1)) is UNKNOWN

    def test_null_lhs_empty_still_true(self):
        """Paper Example 1, tuples four and five: a NULL linking value
        passes a negative predicate when the set is empty."""
        assert SetPredicate("all", ">").evaluate(NULL, []) is TRUE


class TestSomeSemantics:
    def test_vacuous_false_on_empty(self):
        assert SetPredicate("some", "=").evaluate(5, []) is FALSE

    def test_one_match(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, 5)) is TRUE

    def test_no_match(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, 2)) is FALSE

    def test_null_member_unknown(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, NULL)) is UNKNOWN

    def test_true_beats_unknown(self):
        assert SetPredicate("some", "=").evaluate(5, members(NULL, 5)) is TRUE


class TestExistsSemantics:
    def test_nonempty(self):
        assert SetPredicate("exists").evaluate(NULL, members(1)) is TRUE

    def test_empty(self):
        assert SetPredicate("exists").evaluate(NULL, []) is FALSE

    def test_not_exists(self):
        assert SetPredicate("not_exists").evaluate(NULL, []) is TRUE
        assert SetPredicate("not_exists").evaluate(NULL, members(1)) is FALSE

    def test_exists_is_two_valued_even_with_null_members(self):
        assert SetPredicate("exists").evaluate(NULL, members(NULL)) is TRUE


class TestPkMarkerFiltering:
    """Members whose pk is NULL are empty markers from outer joins and
    must be excluded before evaluation (paper Example 1)."""

    def test_dead_members_ignored(self):
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(9, NULL)]) is TRUE  # set is empty

    def test_dead_and_live_mixed(self):
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(9, NULL), (1, 7)]) is TRUE

    def test_exists_sees_through_markers(self):
        assert SetPredicate("exists").evaluate(NULL, [(NULL, NULL)]) is FALSE

    def test_null_value_with_live_pk_counts(self):
        """A genuine NULL member (live pk) differs from an empty marker:
        this is exactly what distinguishes {NULL} from ∅."""
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(NULL, 3)]) is UNKNOWN


class TestNegativity:
    def test_is_negative(self):
        assert SetPredicate("all", ">").is_negative
        assert SetPredicate("not_exists").is_negative
        assert not SetPredicate("some", "=").is_negative
        assert not SetPredicate("exists").is_negative


class TestEvaluateQuantified:
    def test_direct_all(self):
        assert evaluate_quantified(">", "all", 5, [1, 2]) is TRUE

    def test_direct_some(self):
        assert evaluate_quantified("=", "some", 5, [1, 5]) is TRUE

    def test_unknown_quantifier(self):
        with pytest.raises(ExpressionError):
            evaluate_quantified("=", "exactly-one", 5, [5])

    def test_not_in_equals_neq_all(self):
        """NOT IN normalizes to <> ALL: x NOT IN {set with NULL} is never
        TRUE unless the set is empty."""
        assert evaluate_quantified("<>", "all", 5, [1, NULL]) is UNKNOWN
        assert evaluate_quantified("<>", "all", 1, [1, NULL]) is FALSE
        assert evaluate_quantified("<>", "all", 5, []) is TRUE
