"""Unit tests for linking predicates (Definition 4) and their 3VL
semantics — including every NULL corner the paper builds its case on."""

import pytest

from repro.core.linking import SetPredicate, evaluate_quantified
from repro.engine.types import FALSE, NULL, TRUE, UNKNOWN
from repro.errors import ExpressionError


def members(*pairs):
    """(value, pk) members; pk defaults to a live marker."""
    out = []
    for p in pairs:
        if isinstance(p, tuple):
            out.append(p)
        else:
            out.append((p, 1))
    return out


class TestConstruction:
    def test_quantified_requires_theta(self):
        with pytest.raises(ExpressionError):
            SetPredicate("all")

    def test_unknown_quantifier(self):
        with pytest.raises(ExpressionError):
            SetPredicate("most")

    def test_describe(self):
        assert "ALL" in SetPredicate("all", ">").describe()
        assert "∅" in SetPredicate("exists").describe()


class TestAllSemantics:
    def test_vacuous_true_on_empty(self):
        assert SetPredicate("all", ">").evaluate(5, []) is TRUE

    def test_all_pass(self):
        assert SetPredicate("all", ">").evaluate(5, members(1, 2, 3)) is TRUE

    def test_one_fails(self):
        assert SetPredicate("all", ">").evaluate(5, members(1, 9)) is FALSE

    def test_paper_null_member_example(self):
        """R.A = 5 vs S.B = {2, 3, 4, null}: 5 > ALL is UNKNOWN (Section 2)."""
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, members(2, 3, 4, NULL)) is UNKNOWN

    def test_false_beats_unknown(self):
        assert SetPredicate("all", ">").evaluate(5, members(NULL, 9)) is FALSE

    def test_null_lhs_nonempty_unknown(self):
        assert SetPredicate("all", ">").evaluate(NULL, members(1)) is UNKNOWN

    def test_null_lhs_empty_still_true(self):
        """Paper Example 1, tuples four and five: a NULL linking value
        passes a negative predicate when the set is empty."""
        assert SetPredicate("all", ">").evaluate(NULL, []) is TRUE


class TestSomeSemantics:
    def test_vacuous_false_on_empty(self):
        assert SetPredicate("some", "=").evaluate(5, []) is FALSE

    def test_one_match(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, 5)) is TRUE

    def test_no_match(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, 2)) is FALSE

    def test_null_member_unknown(self):
        assert SetPredicate("some", "=").evaluate(5, members(1, NULL)) is UNKNOWN

    def test_true_beats_unknown(self):
        assert SetPredicate("some", "=").evaluate(5, members(NULL, 5)) is TRUE


class TestExistsSemantics:
    def test_nonempty(self):
        assert SetPredicate("exists").evaluate(NULL, members(1)) is TRUE

    def test_empty(self):
        assert SetPredicate("exists").evaluate(NULL, []) is FALSE

    def test_not_exists(self):
        assert SetPredicate("not_exists").evaluate(NULL, []) is TRUE
        assert SetPredicate("not_exists").evaluate(NULL, members(1)) is FALSE

    def test_exists_is_two_valued_even_with_null_members(self):
        assert SetPredicate("exists").evaluate(NULL, members(NULL)) is TRUE


class TestPkMarkerFiltering:
    """Members whose pk is NULL are empty markers from outer joins and
    must be excluded before evaluation (paper Example 1)."""

    def test_dead_members_ignored(self):
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(9, NULL)]) is TRUE  # set is empty

    def test_dead_and_live_mixed(self):
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(9, NULL), (1, 7)]) is TRUE

    def test_exists_sees_through_markers(self):
        assert SetPredicate("exists").evaluate(NULL, [(NULL, NULL)]) is FALSE

    def test_null_value_with_live_pk_counts(self):
        """A genuine NULL member (live pk) differs from an empty marker:
        this is exactly what distinguishes {NULL} from ∅."""
        pred = SetPredicate("all", ">")
        assert pred.evaluate(5, [(NULL, 3)]) is UNKNOWN


#: Every linking operator, as (quantifier, theta) for SetPredicate.
#: IN is = SOME and NOT IN is <> ALL after normalization; the θ SOME/ALL
#: rows use a non-equality theta so the matrix covers both spellings.
ALL_OPERATORS = [
    pytest.param("exists", None, id="EXISTS"),
    pytest.param("not_exists", None, id="NOT-EXISTS"),
    pytest.param("some", "=", id="IN"),
    pytest.param("all", "<>", id="NOT-IN"),
    pytest.param("some", "<", id="theta-SOME"),
    pytest.param("all", ">=", id="theta-ALL"),
]


class TestEmptyVersusNullOnlySet:
    """The distinction the pk-is-NULL convention exists to preserve:
    after a left outer join, an empty inner set {B}=∅ arrives as a single
    dead member (pk NULL) while a genuine {NULL} set has a live pk.  The
    two must evaluate differently for every linking operator — collapsing
    them is exactly the classical COUNT-rewrite bug (paper Section 2)."""

    EMPTY_SHAPES = [[], [(NULL, NULL)], [(7, NULL), (NULL, NULL)]]

    @pytest.mark.parametrize("quantifier,theta", ALL_OPERATORS)
    @pytest.mark.parametrize("lhs", [5, NULL], ids=["lhs=5", "lhs=NULL"])
    def test_empty_set_is_decided_two_valued(self, quantifier, theta, lhs):
        """Over ∅ every operator is decided — TRUE for the negative ones
        (vacuous ALL / NOT EXISTS), FALSE for the positive ones — even
        when the linking value itself is NULL (paper Example 1)."""
        pred = SetPredicate(quantifier, theta)
        expected = TRUE if pred.is_negative else FALSE
        for shape in self.EMPTY_SHAPES:
            assert pred.evaluate(lhs, shape) is expected

    @pytest.mark.parametrize("quantifier,theta", ALL_OPERATORS)
    def test_null_only_set_differs_from_empty(self, quantifier, theta):
        """{NULL} (live pk) is NOT the empty set: EXISTS/NOT EXISTS see a
        member, and every quantified comparison against it is UNKNOWN."""
        pred = SetPredicate(quantifier, theta)
        null_only = [(NULL, 1)]
        if quantifier == "exists":
            assert pred.evaluate(5, null_only) is TRUE
        elif quantifier == "not_exists":
            assert pred.evaluate(5, null_only) is FALSE
        else:
            assert pred.evaluate(5, null_only) is UNKNOWN
            assert pred.evaluate(NULL, null_only) is UNKNOWN
        # ... and never equals the ∅ outcome
        assert pred.evaluate(5, null_only) is not pred.evaluate(5, [])

    @pytest.mark.parametrize("quantifier,theta", ALL_OPERATORS)
    def test_dead_markers_never_change_live_outcome(self, quantifier, theta):
        """Adding outer-join padding members to a live set is a no-op."""
        pred = SetPredicate(quantifier, theta)
        live = [(2, 1), (NULL, 2)]
        padded = live + [(NULL, NULL), (9, NULL)]
        assert pred.evaluate(4, padded) is pred.evaluate(4, live)


class TestNegativity:
    def test_is_negative(self):
        assert SetPredicate("all", ">").is_negative
        assert SetPredicate("not_exists").is_negative
        assert not SetPredicate("some", "=").is_negative
        assert not SetPredicate("exists").is_negative


class TestEvaluateQuantified:
    def test_direct_all(self):
        assert evaluate_quantified(">", "all", 5, [1, 2]) is TRUE

    def test_direct_some(self):
        assert evaluate_quantified("=", "some", 5, [1, 5]) is TRUE

    def test_unknown_quantifier(self):
        with pytest.raises(ExpressionError):
            evaluate_quantified("=", "exactly-one", 5, [5])

    def test_not_in_equals_neq_all(self):
        """NOT IN normalizes to <> ALL: x NOT IN {set with NULL} is never
        TRUE unless the set is empty."""
        assert evaluate_quantified("<>", "all", 5, [1, NULL]) is UNKNOWN
        assert evaluate_quantified("<>", "all", 1, [1, NULL]) is FALSE
        assert evaluate_quantified("<>", "all", 5, []) is TRUE
