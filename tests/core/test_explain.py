"""Unit tests for plan explanation."""

import pytest

import repro
from repro.core.explain import explain, explain_nested_relational
from repro.errors import PlanError


@pytest.fixture()
def db(paper_db):
    return paper_db


QUERY_Q = """
select R.B, R.C, R.D
from R
where R.A > 1
  and R.B not in
    (select S.E from S
     where S.F = 5 and R.D = S.G
       and S.H > all
         (select T.J from T
          where T.K = R.C and T.L <> S.I))
"""


class TestNestedRelationalExplain:
    def test_figure3b_elements(self, db):
        q = repro.compile_sql(QUERY_Q, db)
        text = explain_nested_relational(q)
        # final projection
        assert text.splitlines()[0].startswith("π R.B, R.C, R.D")
        # both linking selections, with normalized operators
        assert "<> ALL {S.E}" in text
        assert "> ALL {T.J}" in text
        # nests with by/keep lists
        assert "υ by[attrs(T1)]" in text
        assert "υ by[attrs(T1), attrs(T2)]" in text
        # outer joins labelled with the correlated predicates
        assert "R.D = S.G" in text
        assert "S.I <> T.L" in text or "T.L <> S.I" in text
        # base relations with pushed-down selections
        assert "T1: R" in text and "T2: S" in text and "T3: T" in text

    def test_pseudo_vs_strict_markers(self, db):
        q = repro.compile_sql(QUERY_Q, db)
        text = explain_nested_relational(q)
        assert "σ*" in text  # inner negative link needs pseudo-selection
        assert "σ " in text  # root link is strict

    def test_uncorrelated_subquery_marked_virtual(self, db):
        sql = "select R.B, R.C, R.D from R where R.B in (select S.E from S)"
        q = repro.compile_sql(sql, db)
        text = explain_nested_relational(q)
        assert "virtual Cartesian product" in text


class TestDispatch:
    @pytest.mark.parametrize(
        "strategy",
        [
            "nested-relational",
            "nested-relational-sorted",
            "nested-relational-optimized",
            "nested-iteration",
            "system-a-native",
            "auto",
        ],
    )
    def test_explains_every_strategy(self, db, strategy):
        q = repro.compile_sql(QUERY_Q, db)
        text = explain(q, db, strategy=strategy)
        assert text  # non-empty plan text

    def test_bottom_up_explainer(self, db):
        sql = """
        select R.B, R.C, R.D from R
        where R.B not in (select S.E from S where R.D = S.G)
        """
        q = repro.compile_sql(sql, db)
        text = explain(q, db, strategy="nested-relational-bottomup")
        assert "bottom-up" in text
        assert "pushdown" in text

    def test_positive_rewrite_explainer(self, db):
        sql = "select R.B, R.C, R.D from R where R.B in (select S.E from S where R.D = S.G)"
        q = repro.compile_sql(sql, db)
        text = explain(q, db, strategy="nested-relational-positive-rewrite")
        assert "semijoin" in text
        assert "⋉" in text

    def test_unknown_strategy(self, db):
        q = repro.compile_sql(QUERY_Q, db)
        with pytest.raises(PlanError):
            explain(q, db, strategy="quantum")

    def test_optimized_mentions_single_pass(self, db):
        q = repro.compile_sql(QUERY_Q, db)
        text = explain(q, db, strategy="nested-relational-optimized")
        assert "single-pass" in text
