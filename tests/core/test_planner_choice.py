"""Golden planner-choice tests: what ``auto`` picks for the six paper
queries (Figures 4-9) at SF 0.01 (generated data) and SF 0.1 (seeded
row counts on the same instance, so the test stays fast).

These pin the cost model's behavior at paper scale: the vectorized
nested-relational strategy wins every figure query once the input
amortizes the batch-build setup, and restricted to the row backend the
single-pass optimized pipeline wins — with the runner-up orderings
documented per query.  An intentional cost-model change should update
these expectations alongside ``benchmarks/BENCH_planner.json``.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.optimizer import choose
from repro.core.stats import set_table_stats
from repro.tpch import TpchConfig, generate, query1, query2, query3

#: the six figure queries, keyed by golden-file stem
PAPER_QUERIES = {
    "fig4_q1": query1("1992-01-01", "1994-06-01"),
    "fig5_q2a": query2("any", 1, 30, 6000, 25),
    "fig6_q2b": query2("all", 1, 30, 6000, 25),
    "fig7_q3a": query3("all", "exists", "a", 1, 30, 6000, 25),
    "fig8_q3b": query3("all", "not exists", "b", 1, 30, 6000, 25),
    "fig9_q3c": query3("any", "exists", "c", 1, 30, 6000, 25),
}

#: expected (chosen, runner-up) restricted to the row backend at SF 0.01
ROW_CHOICE = {
    "fig4_q1": ("nested-relational-optimized", "nested-relational"),
    "fig5_q2a": ("nested-relational-optimized", "classical-unnesting"),
    "fig6_q2b": ("nested-relational-optimized", "nested-relational"),
    "fig7_q3a": ("nested-relational-optimized", "nested-relational"),
    "fig8_q3b": ("nested-relational-optimized", "nested-relational"),
    "fig9_q3c": ("nested-relational-optimized", "nested-relational"),
}

#: TPC-H SF 0.1 row counts, seeded as statistic overrides
SF01_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 1_000,
    "customer": 15_000,
    "part": 20_000,
    "partsupp": 80_000,
    "orders": 150_000,
    "lineitem": 600_572,
}


@pytest.fixture(scope="module")
def sf001():
    return generate(TpchConfig(scale_factor=0.01, seed=42))


@pytest.fixture(scope="module")
def sf01_seeded():
    """A second SF 0.01 instance whose *statistics* claim SF 0.1."""
    db = generate(TpchConfig(scale_factor=0.01, seed=42))
    for table, rows in SF01_ROWS.items():
        set_table_stats(db, table, row_count=rows)
    return db


@pytest.mark.parametrize("stem", sorted(PAPER_QUERIES))
class TestPaperQueryChoices:
    def test_sf001_chooses_vectorized(self, sf001, stem):
        query = repro.compile_sql(PAPER_QUERIES[stem], sf001)
        decision = choose(query, sf001)
        assert decision.chosen == "nested-relational-vectorized", stem

    def test_sf01_chooses_vectorized(self, sf01_seeded, stem):
        query = repro.compile_sql(PAPER_QUERIES[stem], sf01_seeded)
        decision = choose(query, sf01_seeded)
        assert decision.chosen == "nested-relational-vectorized", stem

    def test_row_backend_choice_and_runner_up(self, sf001, stem):
        query = repro.compile_sql(PAPER_QUERIES[stem], sf001)
        decision = choose(query, sf001, backend="row")
        chosen, runner_up = ROW_CHOICE[stem]
        assert decision.chosen == chosen, stem
        assert decision.candidates[1].name == runner_up, stem

    def test_decision_meets_acceptance_shape(self, sf001, stem):
        """Every auto decision on a paper query enumerates at least two
        costed candidates and picks the cheapest (the PR's acceptance
        criterion for the planner span)."""
        query = repro.compile_sql(PAPER_QUERIES[stem], sf001)
        decision = choose(query, sf001)
        costed = [c for c in decision.candidates if c.costed]
        assert len(costed) >= 2
        assert decision.est_cost == min(c.est_cost for c in decision.candidates)


class TestScaleSensitivity:
    def test_seeded_scale_raises_costs_tenfold(self, sf001, sf01_seeded):
        sql = PAPER_QUERIES["fig4_q1"]
        small = choose(repro.compile_sql(sql, sf001), sf001)
        large = choose(repro.compile_sql(sql, sf01_seeded), sf01_seeded)
        assert large.est_cost > 5 * small.est_cost

    def test_not_exists_is_priced_dearest(self, sf01_seeded):
        """Figure 8's NOT EXISTS link keeps unmatched outer rows in
        play, which the estimator prices well above the EXISTS dual."""
        q3a = choose(
            repro.compile_sql(PAPER_QUERIES["fig7_q3a"], sf01_seeded),
            sf01_seeded,
        )
        q3b = choose(
            repro.compile_sql(PAPER_QUERIES["fig8_q3b"], sf01_seeded),
            sf01_seeded,
        )
        assert q3b.est_cost > q3a.est_cost
