"""Unit tests for strategy registry and auto selection."""

import pytest

import repro
from repro.core.compute import NestedRelationalStrategy
from repro.core.optimized import (
    BottomUpLinearStrategy,
    OptimizedNestedRelationalStrategy,
    PositiveRewriteStrategy,
)
from repro.core.planner import (
    available_strategies,
    choose_strategy,
    execute,
    make_strategy,
)
from repro.engine import Column, Database
from repro.errors import PlanError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(1, 5), (2, 3)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v")],
        [(1, 1, 4), (2, 2, 10)],
        primary_key="k",
    )
    return d


class TestRegistry:
    def test_available_names(self):
        names = available_strategies()
        assert "nested-relational" in names
        assert "nested-iteration" in names
        assert "system-a-native" in names
        assert "auto" in names

    def test_make_strategy(self):
        assert isinstance(
            make_strategy("nested-relational"), NestedRelationalStrategy
        )

    def test_unknown_strategy(self):
        with pytest.raises(PlanError, match="unknown strategy"):
            make_strategy("quantum")

    def test_execute_accepts_instance(self, db):
        q = repro.compile_sql("select r.k from r", db)
        with pytest.warns(DeprecationWarning):
            out = execute(q, db, strategy=NestedRelationalStrategy())
        assert len(out) == 2


class TestAutoChoice:
    def test_flat_query(self, db):
        q = repro.compile_sql("select r.k from r where r.a > 3", db)
        assert isinstance(choose_strategy(q), NestedRelationalStrategy)

    def test_all_positive_uses_rewrite(self, db):
        q = repro.compile_sql(
            "select r.k from r where exists (select * from s where s.rk = r.k)", db
        )
        assert isinstance(choose_strategy(q), PositiveRewriteStrategy)

    def test_linear_correlated_negative_uses_bottom_up(self, db):
        q = repro.compile_sql(
            "select r.k from r where r.a > all (select s.v from s where s.rk = r.k)",
            db,
        )
        assert isinstance(choose_strategy(q), BottomUpLinearStrategy)

    def test_linear_nonlinear_correlation_uses_single_pass(self, db, paper_db):
        from tests.core.test_paper_example import QUERY_Q

        q = repro.compile_sql(QUERY_Q, paper_db)
        assert isinstance(choose_strategy(q), OptimizedNestedRelationalStrategy)

    def test_tree_query_uses_original(self, db):
        sql = """
        select r.k from r
        where exists (select * from s where s.rk = r.k)
          and r.a not in (select s2.v from s s2 where s2.rk = r.k)
        """
        q = repro.compile_sql(sql, db)
        assert isinstance(choose_strategy(q), NestedRelationalStrategy)

    def test_auto_execution_correct(self, db):
        sql = "select r.k from r where r.a > all (select s.v from s where s.rk = r.k)"
        auto = repro.connect(db).execute(sql, strategy="auto")
        oracle = repro.connect(db).execute(sql, strategy="nested-iteration")
        assert auto == oracle
