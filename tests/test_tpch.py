"""Unit tests for the TPC-H substrate."""

import pytest

import repro
from repro.engine.types import is_null
from repro.tpch import (
    BASE_ROWS,
    TpchConfig,
    count_quantity_block,
    generate,
    pick_availqty,
    pick_date_window,
    pick_size_window,
    rows_at,
)


@pytest.fixture(scope="module")
def db():
    return generate(TpchConfig(scale_factor=0.002, seed=99))


class TestGenerator:
    def test_deterministic(self):
        a = generate(TpchConfig(scale_factor=0.001, seed=1, build_indexes=False))
        b = generate(TpchConfig(scale_factor=0.001, seed=1, build_indexes=False))
        assert a.relation("orders").rows == b.relation("orders").rows
        assert a.relation("lineitem").rows == b.relation("lineitem").rows

    def test_seed_changes_data(self):
        a = generate(TpchConfig(scale_factor=0.001, seed=1, build_indexes=False))
        b = generate(TpchConfig(scale_factor=0.001, seed=2, build_indexes=False))
        assert a.relation("orders").rows != b.relation("orders").rows

    def test_row_counts_scale(self, db):
        sf = 0.002
        assert len(db.relation("orders")) == int(BASE_ROWS["orders"] * sf)
        assert len(db.relation("part")) == int(BASE_ROWS["part"] * sf)
        assert len(db.relation("partsupp")) == 4 * len(db.relation("part"))
        # lineitem averages 4 lines per order
        n_orders = len(db.relation("orders"))
        assert 1 * n_orders <= len(db.relation("lineitem")) <= 7 * n_orders

    def test_rows_at_helper(self):
        assert rows_at(1.0, "orders") == BASE_ROWS["orders"]
        assert rows_at(0.5, "nation") == BASE_ROWS["nation"]  # never scales
        assert rows_at(1e-9, "supplier") == 1  # floor of 1

    def test_all_eight_tables(self, db):
        for table in ("region", "nation", "supplier", "customer",
                      "part", "partsupp", "orders", "lineitem"):
            assert db.has_table(table)

    def test_foreign_keys_resolve(self, db):
        n_part = len(db.relation("part"))
        assert all(
            1 <= v <= n_part for v in db.relation("partsupp").column_values("ps_partkey")
        )
        n_orders = len(db.relation("orders"))
        assert all(
            1 <= v <= n_orders
            for v in db.relation("lineitem").column_values("l_orderkey")
        )

    def test_dates_ordered_iso(self, db):
        for row in db.relation("lineitem").rows[:200]:
            ship = row[db.relation("lineitem").schema.index_of("l_shipdate")]
            receipt = row[db.relation("lineitem").schema.index_of("l_receiptdate")]
            assert ship < receipt  # ISO strings compare chronologically


class TestConstraints:
    def test_price_nullable_by_default(self, db):
        assert not db.table("lineitem").not_null("l_extendedprice")
        assert not db.table("partsupp").not_null("ps_supplycost")

    def test_price_not_null_flag(self):
        d = generate(
            TpchConfig(scale_factor=0.001, seed=1, price_not_null=True,
                       build_indexes=False)
        )
        assert d.table("lineitem").not_null("l_extendedprice")
        assert d.table("partsupp").not_null("ps_supplycost")

    def test_no_actual_nulls_by_default(self, db):
        assert not any(
            is_null(v)
            for v in db.relation("lineitem").column_values("l_extendedprice")
        )

    def test_inject_null_fraction(self):
        d = generate(
            TpchConfig(scale_factor=0.002, seed=1, inject_null_fraction=0.2,
                       build_indexes=False)
        )
        values = d.relation("lineitem").column_values("l_extendedprice")
        frac = sum(1 for v in values if is_null(v)) / len(values)
        assert 0.1 < frac < 0.3


class TestIndexes:
    def test_paper_indexes_built(self, db):
        li = db.table("lineitem")
        assert li.hash_index_on(["l_orderkey"]) is not None
        assert li.hash_index_on(["l_partkey"]) is not None
        assert li.hash_index_on(["l_suppkey"]) is not None
        assert li.hash_index_on(["l_partkey", "l_suppkey"]) is not None
        ps = db.table("partsupp")
        assert ps.hash_index_on(["ps_partkey"]) is not None
        assert ps.hash_index_on(["ps_partkey", "ps_suppkey"]) is not None

    def test_pk_indexes(self, db):
        assert db.table("orders").hash_index_on(["o_orderkey"]) is not None
        assert db.table("part").hash_index_on(["p_partkey"]) is not None


class TestConstantPickers:
    def test_date_window_hits_target(self, db):
        lo, hi = pick_date_window(db, 100)
        n = sum(
            1
            for v in db.relation("orders").column_values("o_orderdate")
            if lo <= v < hi
        )
        assert 80 <= n <= 120

    def test_size_window_monotone(self, db):
        lo1, hi1 = pick_size_window(db, 50)
        lo2, hi2 = pick_size_window(db, 200)
        assert lo1 == lo2 == 1
        assert hi2 >= hi1

    def test_availqty_cutoff(self, db):
        y = pick_availqty(db, 300)
        n = sum(
            1
            for v in db.relation("partsupp").column_values("ps_availqty")
            if v < y
        )
        assert 250 <= n <= 350

    def test_quantity_block_counter(self, db):
        n = count_quantity_block(db, 25)
        manual = sum(
            1 for v in db.relation("lineitem").column_values("l_quantity") if v == 25
        )
        assert n == manual


class TestConfig:
    def test_kwargs_override(self):
        d = generate(TpchConfig(scale_factor=0.001), scale_factor=0.002,
                     build_indexes=False)
        assert len(d.relation("orders")) == int(BASE_ROWS["orders"] * 0.002)

    def test_unknown_kwarg(self):
        with pytest.raises(TypeError):
            generate(TpchConfig(), giga_mode=True)
