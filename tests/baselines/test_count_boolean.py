"""Unit tests for the count-rewrite and Boolean-aggregate baselines."""

import pytest

import repro
from repro.baselines import BooleanAggregateStrategy, CountRewriteStrategy
from repro.engine import Column, Database, NULL
from repro.errors import PlanError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(1, 5), (2, 2), (3, NULL), (4, 9)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b")],
        [(1, 1, 2), (2, 1, NULL), (3, 2, 10), (4, 4, 1), (5, 4, 2)],
        primary_key="k",
    )
    d.create_table(
        "t",
        [Column("k", not_null=True), Column("sk"), Column("c")],
        [(1, 1, 1), (2, 4, 2)],
        primary_key="k",
    )
    return d


QUERIES = [
    "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)",
    "select r.k from r where r.a < some (select s.b from s where s.rk = r.k)",
    "select r.k from r where r.a in (select s.b from s where s.rk = r.k)",
    "select r.k from r where r.a not in (select s.b from s where s.rk = r.k)",
    "select r.k from r where exists (select * from s where s.rk = r.k)",
    "select r.k from r where not exists (select * from s where s.rk = r.k)",
    """select r.k from r where r.a > all
       (select s.b from s where s.rk = r.k and not exists
          (select * from t where t.sk = s.k))""",
]


@pytest.mark.parametrize("strategy_cls", [CountRewriteStrategy, BooleanAggregateStrategy])
class TestAgainstOracle:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_oracle(self, db, strategy_cls, sql):
        q = repro.compile_sql(sql, db)
        strategy = strategy_cls()
        assert strategy.applicable(q)
        oracle = repro.execute(q, db, strategy="nested-iteration")
        assert strategy.execute(q, db) == oracle

    def test_rejects_non_linear_correlation(self, db, strategy_cls):
        sql = """
        select r.k from r where r.a > all
          (select s.b from s where s.rk = r.k and exists
             (select * from t where t.sk = r.k))
        """
        q = repro.compile_sql(sql, db)
        strategy = strategy_cls()
        assert not strategy.applicable(q)
        with pytest.raises(PlanError):
            strategy.execute(q, db)

    def test_rejects_tree_queries(self, db, strategy_cls):
        sql = """
        select r.k from r
        where exists (select * from s where s.rk = r.k)
          and exists (select * from t where t.sk = r.k)
        """
        q = repro.compile_sql(sql, db)
        assert not strategy_cls().applicable(q)


class TestNullBucketCounting:
    """The count rewrite must count UNKNOWN comparisons separately —
    naive 'count of violations = 0' reproduces the antijoin bug."""

    def test_unknown_bucket_blocks_all(self, db):
        sql = "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)"
        q = repro.compile_sql(sql, db)
        out = CountRewriteStrategy().execute(q, db).sorted().rows
        # r1 sees {2, NULL}: no violation but one UNKNOWN -> excluded.
        assert (1,) not in out
        # r3 (a=NULL) sees {10}: UNKNOWN -> excluded; r2 sees {10}: 2>10 F.
        assert out == [(4,)] or (4,) in out

    def test_distinct_preserved(self, db):
        sql = "select distinct r.a from r where exists (select * from s where s.rk = r.k)"
        q = repro.compile_sql(sql, db)
        a = CountRewriteStrategy().execute(q, db)
        b = repro.execute(q, db, strategy="nested-iteration")
        assert a == b
