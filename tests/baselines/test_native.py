"""Unit tests for the System A emulation: plan choices must follow the
paper's Section 5.2 narrative, and execution must match the oracle."""

import pytest

import repro
from repro.baselines.native import (
    ANTIJOIN,
    ANTIJOIN_NEGATED,
    NESTED_ITERATION,
    SEMIJOIN,
    SystemAEmulationStrategy,
)
from repro.tpch import query1, query2, query3


@pytest.fixture(scope="module")
def dbs():
    nullable = repro.tpch.generate(
        repro.tpch.TpchConfig(scale_factor=0.001, seed=5)
    )
    notnull = repro.tpch.generate(
        repro.tpch.TpchConfig(scale_factor=0.001, seed=5, price_not_null=True)
    )
    return nullable, notnull


def plan_actions(sql, db):
    strategy = SystemAEmulationStrategy()
    q = repro.compile_sql(sql, db)
    return {idx: p.action for idx, p in strategy.plan(q, db).items()}


class TestQuery1Plans:
    def test_nullable_forces_nested_iteration(self, dbs):
        """'if the NOT NULL constraint is dropped ... antijoin is not
        used' — the ALL subquery runs by nested iteration."""
        nullable, _ = dbs
        actions = plan_actions(query1("1993-01-01", "1994-01-01"), nullable)
        assert actions[2] == NESTED_ITERATION

    def test_not_null_enables_antijoin(self, dbs):
        """'with a NOT NULL constraint on l_extendedprice, System A
        directly performs an antijoin'."""
        _, notnull = dbs
        actions = plan_actions(query1("1993-01-01", "1994-01-01"), notnull)
        assert actions[2] == ANTIJOIN_NEGATED


class TestQuery2Plans:
    def test_q2a_semijoin_antijoin(self, dbs):
        """Query 2a: 'an antijoin of partsupp and lineitem ... and then a
        semijoin of part' — both blocks unnest."""
        nullable, _ = dbs
        actions = plan_actions(query2("any", 1, 25, 5000, 25), nullable)
        assert actions[2] == SEMIJOIN
        assert actions[3] == ANTIJOIN

    def test_q2b_nullable_nested_iteration(self, dbs):
        """Query 2b general case: ALL cannot unnest; the inner NOT EXISTS
        is evaluated per tuple (nested loop antijoin)."""
        nullable, _ = dbs
        actions = plan_actions(query2("all", 1, 25, 5000, 25), nullable)
        assert actions[2] == NESTED_ITERATION
        assert actions[3] == NESTED_ITERATION

    def test_q2b_not_null_two_antijoins(self, dbs):
        """'If there is a NOT NULL constraint on ps_supplycost ... two
        antijoins instead of one antijoin and one semijoin'."""
        _, notnull = dbs
        actions = plan_actions(query2("all", 1, 25, 5000, 25), notnull)
        assert actions[2] == ANTIJOIN_NEGATED
        assert actions[3] == ANTIJOIN


class TestQuery3Plans:
    @pytest.mark.parametrize("variant", ["a", "b", "c"])
    def test_no_antijoin_even_with_not_null(self, dbs, variant):
        """'System A is unable to use antijoin in these queries, even
        though the NOT NULL constraint is present' — the third block
        correlates with both enclosing blocks."""
        _, notnull = dbs
        actions = plan_actions(
            query3("all", "not exists", variant, 1, 25, 5000, 25), notnull
        )
        assert actions[2] == NESTED_ITERATION
        assert actions[3] == NESTED_ITERATION

    def test_explain_mentions_reason(self, dbs):
        nullable, _ = dbs
        strategy = SystemAEmulationStrategy()
        q = repro.compile_sql(query3("all", "exists", "a", 1, 25, 5000, 25), nullable)
        text = strategy.explain(q, nullable)
        assert "nested-iteration" in text
        assert "non-adjacent" in text


class TestExecutionCorrectness:
    @pytest.mark.parametrize(
        "sql_builder",
        [
            lambda: query1("1992-03-01", "1993-06-01"),
            lambda: query2("any", 1, 30, 6000, 20),
            lambda: query2("all", 1, 30, 6000, 20),
            lambda: query3("all", "exists", "a", 1, 30, 6000, 20),
            lambda: query3("all", "not exists", "b", 1, 30, 6000, 20),
            lambda: query3("any", "exists", "c", 1, 30, 6000, 20),
        ],
    )
    def test_matches_oracle(self, dbs, sql_builder):
        nullable, _ = dbs
        sql = sql_builder()
        q = repro.compile_sql(sql, nullable)
        oracle = repro.execute(q, nullable, strategy="nested-iteration")
        out = SystemAEmulationStrategy().execute(q, nullable)
        assert out == oracle

    def test_not_null_plans_also_correct(self, dbs):
        _, notnull = dbs
        for sql in (
            query1("1992-03-01", "1993-06-01"),
            query2("all", 1, 30, 6000, 20),
        ):
            q = repro.compile_sql(sql, notnull)
            oracle = repro.execute(q, notnull, strategy="nested-iteration")
            assert SystemAEmulationStrategy().execute(q, notnull) == oracle

    def test_index_choice_follows_bound_columns(self, dbs):
        """Variant (b) binds only l_suppkey by equality, so the emulation
        must probe the single-column index and fetch more rows than
        variant (a), which can use the combined index."""
        from repro.engine.metrics import collect

        nullable, _ = dbs
        strategy = SystemAEmulationStrategy()
        qa = repro.compile_sql(query3("all", "not exists", "a", 1, 25, 5000, 25), nullable)
        qb = repro.compile_sql(query3("all", "not exists", "b", 1, 25, 5000, 25), nullable)
        with collect() as ma:
            strategy.execute(qa, nullable)
        with collect() as mb:
            strategy.execute(qb, nullable)
        fetched_a = ma.get("index_rows_fetched")
        fetched_b = mb.get("index_rows_fetched")
        assert fetched_b > fetched_a
