"""Unit tests pinning the oracle's SQL semantics on hand-computed cases.

Everything else in the repository is differential-tested against
NestedIterationStrategy, so this module verifies the oracle itself
against values computed by hand from the SQL standard's rules.
"""

import pytest

import repro
from repro.baselines import NestedIterationStrategy
from repro.engine import Column, Database, NULL


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(1, 5), (2, 2), (3, NULL)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b")],
        [
            (1, 1, 2),
            (2, 1, 3),
            (3, 1, 4),
            (4, 1, NULL),   # r.k=1 sees {2,3,4,NULL}
            (5, 2, 1),      # r.k=2 sees {1}
            # r.k=3 sees {} (empty)
        ],
        primary_key="k",
    )
    return d


def run(sql, db):
    return repro.connect(db).execute(sql, strategy="nested-iteration").sorted().rows


class TestPaperNullExample:
    """Section 2: R.A = 5 against S.B = {2,3,4,NULL}."""

    def test_all_with_null_member_excludes(self, db):
        # 5 > ALL {2,3,4,NULL} is UNKNOWN -> r1 out; 2 > ALL {1} TRUE -> r2 in;
        # empty set TRUE -> r3 in.
        rows = run(
            "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)",
            db,
        )
        assert rows == [(2,), (3,)]

    def test_max_rewrite_would_differ(self, db):
        """The unsound MAX rewrite would let r1 through (max ignores NULL:
        5 > 4).  Pin that the oracle disagrees with it."""
        from repro.engine.operators import AggSpec, scalar_aggregate
        from repro.engine.operators.basic import Filter
        from repro.engine.expressions import cmp
        from repro.engine.operators import as_relation

        s1 = as_relation(Filter(db.relation("s"), cmp("s.rk", "=", 1)))
        max_b = scalar_aggregate(s1, AggSpec("max", "s.b"))
        assert max_b == 4 and 5 > max_b  # rewrite says r1 qualifies
        rows = run(
            "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)",
            db,
        )
        assert (1,) not in rows  # SQL says it does not

    def test_not_in_with_null_member(self, db):
        # r1: 5 NOT IN {2,3,4,NULL} -> UNKNOWN (out)
        # r2: 2 NOT IN {1} -> TRUE (in); r3: empty -> TRUE but r3.a NULL...
        # NOT IN over empty set is TRUE regardless of lhs.
        rows = run(
            "select r.k from r where r.a not in (select s.b from s where s.rk = r.k)",
            db,
        )
        assert rows == [(2,), (3,)]

    def test_in_with_null_member(self, db):
        # r1: 5 IN {2,3,4,NULL} -> UNKNOWN (out); add a matching member to see TRUE
        rows = run(
            "select r.k from r where r.a in (select s.b from s where s.rk = r.k)",
            db,
        )
        assert rows == []

    def test_null_lhs_against_empty_set(self, db):
        # r3.a is NULL but its set is empty: ALL -> TRUE, SOME -> FALSE.
        all_rows = run(
            "select r.k from r where r.a <> all (select s.b from s where s.rk = r.k)",
            db,
        )
        assert (3,) in all_rows
        some_rows = run(
            "select r.k from r where r.a = some (select s.b from s where s.rk = r.k)",
            db,
        )
        assert (3,) not in some_rows


class TestExistential:
    def test_exists(self, db):
        rows = run(
            "select r.k from r where exists (select * from s where s.rk = r.k)", db
        )
        assert rows == [(1,), (2,)]

    def test_not_exists(self, db):
        rows = run(
            "select r.k from r where not exists (select * from s where s.rk = r.k)",
            db,
        )
        assert rows == [(3,)]

    def test_exists_ignores_null_members(self, db):
        """EXISTS is about row existence, not value NULLness: the NULL-b
        row still witnesses existence."""
        rows = run(
            "select r.k from r where exists "
            "(select * from s where s.rk = r.k and s.b is null)",
            db,
        )
        assert rows == [(1,)]


class TestDuplicates:
    def test_output_preserves_outer_duplicates(self):
        d = Database()
        d.create_table(
            "t", [Column("k", not_null=True), Column("v")], [(1, 7), (2, 7)],
            primary_key="k",
        )
        out = repro.connect(d).execute("select v from t", strategy="nested-iteration")
        assert out.rows == [(7,), (7,)]

    def test_distinct_dedupes(self):
        d = Database()
        d.create_table(
            "t", [Column("k", not_null=True), Column("v")], [(1, 7), (2, 7)],
            primary_key="k",
        )
        out = repro.connect(d).execute("select distinct v from t", strategy="nested-iteration")
        assert out.rows == [(7,)]


class TestThreeLevelQuery:
    def test_three_levels_deep(self, db):
        db.create_table(
            "t2",
            [Column("k", not_null=True), Column("sk"), Column("c")],
            [(1, 1, 9), (2, 5, 1)],
            primary_key="k",
        )
        sql = """
        select r.k from r
        where exists (select * from s where s.rk = r.k and s.b not in
            (select t2.c from t2 where t2.sk = s.k))
        """
        rows = run(sql, db)
        # r1: s-rows k=1..4; each s: t2 set for s.k=1 -> {9}: 2 NOT IN {9} TRUE
        #  -> exists TRUE. r2: s.k=5 -> t2 {1}: 1 NOT IN {1} FALSE -> no s row
        #  qualifies -> out. r3: no s rows -> out.
        assert rows == [(1,)]
