"""Unit tests for Kim's MAX/MIN rewrite and its NULL guards."""

import pytest

import repro
from repro.baselines import AggregateRewriteStrategy
from repro.engine import Column, Database, NULL
from repro.errors import PlanError, UnsoundRewriteError


@pytest.fixture()
def nullable_db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a", not_null=True)],
        [(1, 5), (2, 2), (3, 7)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b")],
        [(1, 1, 2), (2, 1, 3), (3, 1, 4), (4, 1, NULL), (5, 2, 1)],
        primary_key="k",
    )
    return d


@pytest.fixture()
def notnull_db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a", not_null=True)],
        [(1, 5), (2, 2), (3, 7)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b", not_null=True)],
        [(1, 1, 2), (2, 1, 3), (3, 1, 4), (5, 2, 1)],
        primary_key="k",
    )
    return d


ALL_SQL = "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)"


class TestGuards:
    def test_nullable_refused(self, nullable_db):
        q = repro.compile_sql(ALL_SQL, nullable_db)
        with pytest.raises(UnsoundRewriteError, match="NULLable"):
            AggregateRewriteStrategy().execute(q, nullable_db)

    def test_unguarded_reproduces_paper_bug(self, nullable_db):
        """'R.A >ALL (select S.B...) is not equal to R.A > (select
        max(S.B)...)' — the MAX rewrite wrongly admits r1."""
        q = repro.compile_sql(ALL_SQL, nullable_db)
        wrong = (
            AggregateRewriteStrategy(respect_null_soundness=False)
            .execute(q, nullable_db)
            .sorted()
            .rows
        )
        oracle = (
            repro.execute(q, nullable_db, strategy="nested-iteration")
            .sorted()
            .rows
        )
        assert (1,) in wrong
        assert (1,) not in oracle

    def test_equality_quantifier_rejected(self, notnull_db):
        q = repro.compile_sql(
            "select r.k from r where r.a = some (select s.b from s where s.rk = r.k)",
            notnull_db,
        )
        strategy = AggregateRewriteStrategy()
        assert strategy.applicable(q, notnull_db) is not None
        with pytest.raises(PlanError, match="MIN/MAX"):
            strategy.execute(q, notnull_db)

    def test_multi_level_rejected(self, notnull_db):
        notnull_db.create_table(
            "t",
            [Column("k", not_null=True), Column("sk"), Column("c", not_null=True)],
            [(1, 1, 9)],
            primary_key="k",
        )
        sql = """
        select r.k from r where r.a > all
          (select s.b from s where s.rk = r.k and exists
             (select * from t where t.sk = s.k))
        """
        q = repro.compile_sql(sql, notnull_db)
        with pytest.raises(PlanError, match="one-level"):
            AggregateRewriteStrategy().execute(q, notnull_db)


class TestSoundCases:
    @pytest.mark.parametrize(
        "op,quant",
        [(">", "all"), (">=", "all"), ("<", "all"), ("<=", "all"),
         (">", "some"), ("<", "some"), (">=", "some"), ("<=", "some")],
    )
    def test_matches_oracle_without_nulls(self, notnull_db, op, quant):
        word = "all" if quant == "all" else "any"
        sql = (
            f"select r.k from r where r.a {op} {word} "
            "(select s.b from s where s.rk = r.k)"
        )
        q = repro.compile_sql(sql, notnull_db)
        strategy = AggregateRewriteStrategy()
        assert strategy.applicable(q, notnull_db) is None
        oracle = repro.execute(q, notnull_db, strategy="nested-iteration")
        assert strategy.execute(q, notnull_db) == oracle

    def test_empty_set_semantics(self, notnull_db):
        # r3 has no s rows: ALL -> include, SOME -> exclude
        all_q = repro.compile_sql(ALL_SQL, notnull_db)
        out = AggregateRewriteStrategy().execute(all_q, notnull_db)
        assert (3,) in out.rows
        some_q = repro.compile_sql(
            "select r.k from r where r.a > any (select s.b from s where s.rk = r.k)",
            notnull_db,
        )
        out = AggregateRewriteStrategy().execute(some_q, notnull_db)
        assert (3,) not in out.rows

    def test_uncorrelated_subquery(self, notnull_db):
        sql = "select r.k from r where r.a > all (select s.b from s)"
        q = repro.compile_sql(sql, notnull_db)
        oracle = repro.execute(q, notnull_db, strategy="nested-iteration")
        assert AggregateRewriteStrategy().execute(q, notnull_db) == oracle

    def test_registered_in_planner(self, notnull_db):
        out = repro.connect(notnull_db).execute(ALL_SQL, strategy="aggregate-rewrite")
        oracle = repro.connect(notnull_db).execute(ALL_SQL, strategy="nested-iteration")
        assert out == oracle
