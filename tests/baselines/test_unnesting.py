"""Unit tests for classical unnesting: soundness guards and the wrong
answers the paper warns about when the guards are ignored."""

import pytest

import repro
from repro.baselines import ClassicalUnnestingStrategy
from repro.engine import Column, Database, NULL
from repro.errors import PlanError, UnsoundRewriteError


@pytest.fixture()
def nullable_db():
    """R.A = 5 vs S.B = {2,3,4,NULL} — the paper's Section 2 example."""
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a", not_null=True)],
        [(1, 5), (2, 2)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b")],  # b NULLable
        [(1, 1, 2), (2, 1, 3), (3, 1, 4), (4, 1, NULL), (5, 2, 1)],
        primary_key="k",
    )
    return d


@pytest.fixture()
def notnull_db():
    """Same data minus the NULL, with NOT NULL declared on s.b."""
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a", not_null=True)],
        [(1, 5), (2, 2)],
        primary_key="k",
    )
    d.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b", not_null=True)],
        [(1, 1, 2), (2, 1, 3), (3, 1, 4), (5, 2, 1)],
        primary_key="k",
    )
    return d


ALL_SQL = "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)"
NOT_IN_SQL = "select r.k from r where r.a not in (select s.b from s where s.rk = r.k)"


class TestSoundnessGuard:
    def test_nullable_linked_attribute_refused(self, nullable_db):
        q = repro.compile_sql(ALL_SQL, nullable_db)
        strategy = ClassicalUnnestingStrategy()
        assert strategy.applicable(q, nullable_db) is not None
        with pytest.raises(UnsoundRewriteError, match="NULLable"):
            strategy.execute(q, nullable_db)

    def test_not_null_makes_rewrite_sound(self, notnull_db):
        q = repro.compile_sql(ALL_SQL, notnull_db)
        strategy = ClassicalUnnestingStrategy()
        assert strategy.applicable(q, notnull_db) is None
        out = strategy.execute(q, notnull_db)
        oracle = repro.execute(q, notnull_db, strategy="nested-iteration")
        assert out == oracle

    def test_unguarded_rewrite_gives_wrong_answer(self, nullable_db):
        """The heart of the paper's argument: with NULLs present, the
        antijoin rewrite *keeps* r1 (no tuple violates 5 > b via non-NULL
        comparison) while SQL semantics reject it (UNKNOWN)."""
        q = repro.compile_sql(ALL_SQL, nullable_db)
        unsound = ClassicalUnnestingStrategy(respect_null_soundness=False)
        wrong = unsound.execute(q, nullable_db).sorted().rows
        oracle = (
            repro.execute(q, nullable_db, strategy="nested-iteration").sorted().rows
        )
        assert (1,) in wrong       # antijoin keeps it
        assert (1,) not in oracle  # SQL does not
        assert wrong != oracle

    def test_unguarded_not_in_wrong_too(self, nullable_db):
        q = repro.compile_sql(NOT_IN_SQL, nullable_db)
        unsound = ClassicalUnnestingStrategy(respect_null_soundness=False)
        wrong = unsound.execute(q, nullable_db)
        oracle = repro.execute(q, nullable_db, strategy="nested-iteration")
        assert wrong != oracle


class TestPositiveRewrites:
    """Positive operators are always soundly rewritable."""

    @pytest.mark.parametrize(
        "sql",
        [
            "select r.k from r where exists (select * from s where s.rk = r.k)",
            "select r.k from r where r.a in (select s.b from s where s.rk = r.k)",
            "select r.k from r where r.a < some (select s.b from s where s.rk = r.k)",
            "select r.k from r where not exists (select * from s where s.rk = r.k)",
        ],
    )
    def test_matches_oracle_even_with_nulls(self, nullable_db, sql):
        q = repro.compile_sql(sql, nullable_db)
        strategy = ClassicalUnnestingStrategy()
        assert strategy.applicable(q, nullable_db) is None
        out = strategy.execute(q, nullable_db)
        oracle = repro.execute(q, nullable_db, strategy="nested-iteration")
        assert out == oracle


class TestShapeLimits:
    def test_non_adjacent_correlation_rejected(self, nullable_db):
        """Query 3's shape: the inner block correlates with the outermost
        block — semijoin/antijoin folding loses needed attributes."""
        nullable_db.create_table(
            "t",
            [Column("k", not_null=True), Column("rk"), Column("c")],
            [(1, 1, 1)],
            primary_key="k",
        )
        sql = """
        select r.k from r where exists
          (select * from s where s.rk = r.k and exists
             (select * from t where t.rk = r.k))
        """
        q = repro.compile_sql(sql, nullable_db)
        strategy = ClassicalUnnestingStrategy()
        reason = strategy.applicable(q, nullable_db)
        assert reason is not None and "non-adjacent" in reason
        with pytest.raises(PlanError):
            strategy.execute(q, nullable_db)

    def test_two_level_linear_ok(self, notnull_db):
        notnull_db.create_table(
            "t",
            [Column("k", not_null=True), Column("sk"), Column("c")],
            [(1, 1, 1), (2, 3, 2)],
            primary_key="k",
        )
        sql = """
        select r.k from r where exists
          (select * from s where s.rk = r.k and not exists
             (select * from t where t.sk = s.k))
        """
        q = repro.compile_sql(sql, notnull_db)
        strategy = ClassicalUnnestingStrategy()
        assert strategy.applicable(q, notnull_db) is None
        out = strategy.execute(q, notnull_db)
        oracle = repro.execute(q, notnull_db, strategy="nested-iteration")
        assert out == oracle


class TestOuterAttributeGuard:
    def test_nullable_linking_attribute_also_unsound(self):
        """NULL θ ALL {nonempty} is UNKNOWN but an antijoin keeps the row;
        the guard must cover the outer side too."""
        d = Database()
        d.create_table(
            "r",
            [Column("k", not_null=True), Column("a")],  # a NULLable
            [(1, NULL)],
            primary_key="k",
        )
        d.create_table(
            "s",
            [Column("k", not_null=True), Column("rk"), Column("b", not_null=True)],
            [(1, 1, 2)],
            primary_key="k",
        )
        q = repro.compile_sql(ALL_SQL, d)
        with pytest.raises(UnsoundRewriteError, match="linking attribute"):
            ClassicalUnnestingStrategy().execute(q, d)
        # and indeed the unguarded rewrite is wrong on this data:
        wrong = ClassicalUnnestingStrategy(respect_null_soundness=False).execute(q, d)
        oracle = repro.execute(q, d, strategy="nested-iteration")
        assert wrong != oracle
