"""The differential runner, the shrinker, and the corpus writer —
including the end-to-end self-test: an injected linking-predicate bug
must be caught, minimized, and frozen as a runnable regression."""

import subprocess
import sys

import pytest

import repro
from repro.fuzz import (
    DifferentialRunner,
    FuzzCase,
    FuzzConfig,
    MiscountingSpanStrategy,
    MutatedLinkStrategy,
    case_digest,
    corpus_module_source,
    generate_case,
    is_interesting,
    mutate_first_link,
    run_fuzz,
    shrink_case,
    write_corpus_file,
)
from repro.fuzz.runner import _applies
from repro.fuzz.shrink import _stmt_variants
from repro.sql import parse


class TestApplicabilityProtocols:
    """The registry mixes ``applicable(query) -> bool`` with
    ``applicable(query, db) -> Optional[str]``; the runner must read
    both correctly."""

    class BoolGuard:
        def __init__(self, verdict):
            self.verdict = verdict

        def applicable(self, query):
            return self.verdict

    class ReasonGuard:
        def __init__(self, reason):
            self.reason = reason

        def applicable(self, query, db):
            return self.reason

    def test_bool_protocol(self):
        assert _applies(self.BoolGuard(True), None, None)
        assert not _applies(self.BoolGuard(False), None, None)

    def test_reason_protocol(self):
        assert _applies(self.ReasonGuard(None), None, None)
        assert not _applies(self.ReasonGuard("not supported"), None, None)

    def test_no_guard_means_applicable(self):
        assert _applies(object(), None, None)


class TestCleanRun:
    def test_small_run_is_ok(self):
        config = FuzzConfig(iterations=25, seed=3)
        report = DifferentialRunner().run(config)
        assert report.ok
        assert report.cases_run == 25
        assert report.strategy_checks > 0
        assert "OK" in report.summary()

    def test_progress_callback_invoked(self):
        seen = []
        config = FuzzConfig(iterations=5, seed=3)
        DifferentialRunner().run(config, progress=lambda i, r: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]


def _first_injected_failure(seed=42, max_iterations=500):
    """Run with the mutated strategy until the first disagreement."""
    config = FuzzConfig(iterations=max_iterations, seed=seed)
    runner = DifferentialRunner(extra_strategies=[MutatedLinkStrategy()])
    report = runner.run(config)
    return runner, report


class TestBugInjection:
    def test_mutation_flips_the_link(self):
        db = generate_case(FuzzConfig(iterations=1, seed=1), 0).db_spec.build()
        query = repro.compile_sql(
            "select b0.k from t0 b0 where exists (select * from t1 b1)", db
        )
        mutated = mutate_first_link(query)
        links = [b.link for b in mutated.root.walk() if b.link is not None]
        assert links[0].operator == "not_exists"
        # the original query is untouched
        original = [b.link for b in query.root.walk() if b.link is not None]
        assert original[0].operator == "exists"

    def test_injected_bug_caught_within_500_iterations(self):
        """ISSUE acceptance: a deliberately mutated linking predicate is
        detected by the differential oracle in under 500 cases."""
        runner, report = _first_injected_failure()
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind == "disagreement"
        assert failure.strategy == "nested-relational[mutated-link]"
        assert report.cases_run <= 500

    def test_injected_bug_shrinks_and_freezes(self, tmp_path):
        """...and the shrunk case lands in the corpus as a pytest file."""
        config = FuzzConfig(iterations=500, seed=42)
        runner = DifferentialRunner(extra_strategies=[MutatedLinkStrategy()])
        outcome = run_fuzz(config, runner=runner, corpus_dir=str(tmp_path))
        assert not outcome.ok
        assert outcome.shrunk_case is not None
        original = outcome.report.failures[0].case
        assert outcome.shrunk_case.db_spec.total_rows <= original.db_spec.total_rows
        assert len(outcome.shrunk_case.sql) <= len(original.sql)
        # the shrunk case still fails the same way
        assert is_interesting(runner.check_case(outcome.shrunk_case))
        assert outcome.corpus_path is not None
        # the frozen regression runs green under plain pytest (it pins the
        # *registered* strategies, which all agree)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", outcome.corpus_path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestTraceBugInjection:
    """A strategy whose *results* are right but whose operator spans
    miscount rows must be caught by the trace invariants — the class of
    bug the differential value comparison cannot see."""

    def test_results_match_but_trace_fails(self):
        """The miscounting strategy agrees with the oracle on values."""
        case = generate_case(FuzzConfig(iterations=1, seed=7), 0)
        db = case.db_spec.build()
        query = repro.compile_sql(case.sql, db)
        oracle = repro.execute(query, db, strategy="nested-iteration")
        assert MiscountingSpanStrategy().execute(query, db) == oracle

    def test_caught_by_trace_invariants(self):
        config = FuzzConfig(iterations=100, seed=7)
        runner = DifferentialRunner(
            extra_strategies=[MiscountingSpanStrategy()]
        )
        report = runner.run(config)
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind == "trace"
        assert failure.strategy == "nested-relational[miscounting-span]"

    def test_invisible_without_trace_checking(self):
        """With check_traces off, the same run is clean — the bug really
        is invisible to value comparison and Metrics checks alone."""
        config = FuzzConfig(iterations=25, seed=7)
        runner = DifferentialRunner(
            extra_strategies=[MiscountingSpanStrategy()],
            check_traces=False,
        )
        assert runner.run(config).ok

    def test_shrinks_and_freezes_with_traces(self, tmp_path):
        config = FuzzConfig(iterations=100, seed=7)
        runner = DifferentialRunner(
            extra_strategies=[MiscountingSpanStrategy()]
        )
        outcome = run_fuzz(config, runner=runner, corpus_dir=str(tmp_path))
        assert not outcome.ok
        assert outcome.shrunk_failure is not None
        assert outcome.shrunk_failure.kind == "trace"
        # both per-operator traces ride along into the frozen regression
        assert outcome.shrunk_failure.trace_text
        assert "oracle 'nested-iteration' trace:" in outcome.shrunk_failure.trace_text
        with open(outcome.corpus_path) as handle:
            source = handle.read()
        assert "Per-operator traces at the minimized case:" in source
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", outcome.corpus_path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestAttachTraceText:
    def test_disagreement_gets_both_traces(self):
        runner, report = _first_injected_failure()
        failure = runner.attach_trace_text(report.failures[0])
        assert failure.trace_text
        assert "oracle 'nested-iteration' trace:" in failure.trace_text
        assert (
            "strategy 'nested-relational[mutated-link]' trace:"
            in failure.trace_text
        )
        # rendered without timings: deterministic, no wall-clock noise
        assert "ms" not in failure.trace_text
        # describe() carries the traces too (indented under the failure)
        assert "oracle 'nested-iteration' trace:" in failure.describe()

    def test_compile_error_failures_skipped(self):
        case = generate_case(FuzzConfig(iterations=1, seed=3), 0)
        from repro.fuzz import Failure

        failure = Failure(case, "<compile>", "compile-error", "nope")
        assert DifferentialRunner().attach_trace_text(failure).trace_text is None


class TestShrinker:
    def test_shrink_requires_a_failing_case(self):
        case = generate_case(FuzzConfig(iterations=1, seed=3), 0)
        runner = DifferentialRunner()
        with pytest.raises(ValueError):
            shrink_case(case, runner.check_case)

    def test_variants_are_structurally_smaller(self):
        stmt = parse(
            "select b0.k from t0 b0 where b0.a > 1 and "
            "exists (select * from t1 b1 where b1.a = b0.a)"
        )
        for variant in _stmt_variants(stmt):
            assert len(str(variant)) <= len(str(stmt)) or variant != stmt

    def test_compile_error_is_not_interesting(self):
        from repro.fuzz.runner import Failure

        case = generate_case(FuzzConfig(iterations=1, seed=3), 0)
        assert not is_interesting(
            Failure(case, "<compile>", "compile-error", "nope")
        )
        assert not is_interesting(None)
        assert is_interesting(Failure(case, "x", "disagreement", "d"))


class TestCorpus:
    def _case(self):
        return generate_case(FuzzConfig(iterations=1, seed=8), 2)

    def test_digest_stable_and_content_sensitive(self):
        case = self._case()
        assert case_digest(case) == case_digest(case)
        other = generate_case(FuzzConfig(iterations=1, seed=8), 3)
        assert case_digest(case) != case_digest(other)

    def test_module_source_is_valid_python(self):
        source = corpus_module_source(self._case())
        compile(source, "<corpus>", "exec")
        assert "def test_all_strategies_agree_with_oracle" in source

    def test_written_file_passes_pytest(self, tmp_path):
        path = write_corpus_file(self._case(), str(tmp_path))
        assert path.endswith(".py")
        assert (tmp_path / "__init__.py").exists()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_bad_name_rejected(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            write_corpus_file(self._case(), str(tmp_path), name="fuzz.py")
