"""Tiny-memory-budget fuzzing: spill paths on random queries."""

from __future__ import annotations

import os

import pytest

from repro.fuzz import DifferentialRunner, FuzzConfig


def _run(tmp_path, monkeypatch=None, fault=None, iterations=8, **kwargs):
    if monkeypatch is not None and fault is not None:
        monkeypatch.setenv("REPRO_FAULT", fault)
    runner = DifferentialRunner(
        memory_limit_mb=0.002,  # ~2 KB: every join/nest wants to spill
        spill_dir=str(tmp_path),
        **kwargs,
    )
    config = FuzzConfig(iterations=iterations, seed=7, max_rows=8)
    return runner.run(config)


def test_budget_mode_matches_oracle(tmp_path):
    report = _run(tmp_path)
    assert report.ok, report.failures[0].describe() if report.failures else ""
    assert report.cases_run == report.iterations
    # the budget mode must still compare real executions, not skip all
    assert report.strategy_checks > 0
    # spill passes cleaned their temp directories behind themselves
    assert os.listdir(str(tmp_path)) == []


def test_budget_mode_accepts_injected_spill_failure(tmp_path, monkeypatch):
    """REPRO_FAULT=spill_io surfaces typed SpillErrors; the runner counts
    them as governed skips, not strategy bugs."""
    report = _run(tmp_path, monkeypatch, fault="spill_io")
    assert report.ok, report.failures[0].describe() if report.failures else ""
    assert os.listdir(str(tmp_path)) == []


def test_spill_error_without_fault_is_a_failure(tmp_path):
    """An uninjected SpillError must NOT be silently accepted."""
    from repro.errors import SpillError

    runner = DifferentialRunner(
        memory_limit_mb=0.002, spill_dir=str(tmp_path)
    )
    assert not runner._budget_skip(SpillError("real bug"), "nested-relational")


def test_oracle_is_never_budgeted(tmp_path):
    from repro.errors import ResourceExhaustedError
    from repro.fuzz.runner import ORACLE

    runner = DifferentialRunner(
        memory_limit_mb=0.002, spill_dir=str(tmp_path)
    )
    assert not runner._budget_skip(ResourceExhaustedError("x"), ORACLE)
