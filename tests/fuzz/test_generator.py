"""Unit tests for the fuzz query/schema generators: determinism, depth
bounds, analyzer compatibility, and coverage of the operator space."""

import random

import pytest

import repro
from repro.fuzz import FuzzConfig, QueryGenerator, case_rng, generate_case
from repro.fuzz.datagen import (
    ALL_COLUMNS,
    EMPTY_TABLE_RATE,
    PK_COLUMN,
    random_database_spec,
)
from repro.fuzz.runner import _count_operators
from repro.engine.types import is_null
from repro.sql import parse, render_sql


class TestDeterminism:
    def test_same_seed_same_case(self):
        config = FuzzConfig(iterations=1, seed=13)
        a = generate_case(config, 5)
        b = generate_case(config, 5)
        assert a.sql == b.sql
        assert a.db_spec == b.db_spec

    def test_different_iterations_differ(self):
        config = FuzzConfig(iterations=1, seed=13)
        sqls = {generate_case(config, i).sql for i in range(10)}
        assert len(sqls) > 1

    def test_case_rng_is_stable_stream(self):
        """String seeding pins the stream: the same (seed, iteration)
        must reproduce cases across sessions and Python versions."""
        assert case_rng(4, 2).random() == case_rng(4, 2).random()
        assert case_rng(4, 2).random() != case_rng(4, 3).random()


class TestConfigValidation:
    def test_depth_bounds(self):
        with pytest.raises(ValueError):
            FuzzConfig(max_depth=0)
        with pytest.raises(ValueError):
            FuzzConfig(max_depth=5)

    def test_null_rate_bounds(self):
        with pytest.raises(ValueError):
            FuzzConfig(null_rate=1.5)

    def test_negative_iterations(self):
        with pytest.raises(ValueError):
            FuzzConfig(iterations=-1)


class TestGeneratedQueries:
    def test_every_case_compiles(self):
        """Generated queries must stay inside the analyzer's subset."""
        config = FuzzConfig(iterations=1, seed=99, max_depth=4)
        for i in range(40):
            case = generate_case(config, i)
            db = case.db_spec.build()
            query = repro.compile_sql(case.sql, db)
            assert 1 <= query.nesting_depth <= 4

    def test_depth_respects_budget(self):
        config = FuzzConfig(iterations=1, seed=7, max_depth=2)
        for i in range(30):
            case = generate_case(config, i)
            db = case.db_spec.build()
            assert repro.compile_sql(case.sql, db).nesting_depth <= 2

    def test_operator_space_covered(self):
        """A few hundred cases must exercise all six operator families
        and both SOME and ALL quantified links."""
        config = FuzzConfig(iterations=1, seed=0)
        histogram = {}
        for i in range(300):
            _count_operators(generate_case(config, i).stmt, histogram)
        assert "exists" in histogram
        assert "not_exists" in histogram
        assert "in" in histogram
        assert "not_in" in histogram
        assert any(" some" in k for k in histogram)
        assert any(" all" in k for k in histogram)

    def test_tree_shapes_occur(self):
        config = FuzzConfig(iterations=1, seed=0, max_depth=3)
        trees = 0
        for i in range(120):
            case = generate_case(config, i)
            query = repro.compile_sql(case.sql, case.db_spec.build())
            if query.is_tree:
                trees += 1
        assert trees > 0

    def test_correlated_and_uncorrelated_occur(self):
        config = FuzzConfig(iterations=1, seed=0)
        correlated = uncorrelated = 0
        for i in range(100):
            case = generate_case(config, i)
            query = repro.compile_sql(case.sql, case.db_spec.build())
            inner = [b for b in query.blocks if b.link is not None]
            if any(b.correlations for b in inner):
                correlated += 1
            if inner and all(not b.correlations for b in inner):
                uncorrelated += 1
        assert correlated > 0 and uncorrelated > 0


class TestDatagen:
    def test_pk_sequential_not_null(self):
        spec = random_database_spec(random.Random(1))
        for table in spec.tables:
            assert [row[0] for row in table.rows] == list(range(len(table.rows)))

    def test_null_rate_one_means_all_null_values(self):
        spec = random_database_spec(random.Random(2), null_rate=1.0)
        for table in spec.tables:
            for row in table.rows:
                assert all(is_null(v) for v in row[1:])

    def test_empty_tables_appear(self):
        rng = random.Random(3)
        empties = sum(
            1
            for _ in range(60)
            for t in random_database_spec(rng).tables
            if not t.rows
        )
        # 240 tables at EMPTY_TABLE_RATE each: expect a healthy handful
        assert empties > 0
        assert EMPTY_TABLE_RATE > 0

    def test_with_rows_replaces_only_named_table(self):
        spec = random_database_spec(random.Random(4))
        smaller = spec.with_rows("t1", [])
        assert smaller.tables[1].rows == ()
        assert smaller.tables[0] == spec.tables[0]

    def test_build_creates_engine_tables(self):
        spec = random_database_spec(random.Random(5))
        db = spec.build()
        for table in spec.tables:
            assert db.has_table(table.name)
            schema = db.table(table.name).schema
            assert tuple(c.name for c in schema.columns) == ALL_COLUMNS
            assert db.table(table.name).primary_key == PK_COLUMN


class TestRenderedSqlRoundTrip:
    def test_generated_sql_round_trips(self):
        """parse(render(stmt)) re-renders to the identical text — the
        corpus files depend on this being exact."""
        config = FuzzConfig(iterations=1, seed=21, max_depth=4)
        for i in range(40):
            case = generate_case(config, i)
            sql = case.sql
            assert render_sql(parse(sql)) == sql
