"""Unparser gaps surfaced by feeding its output to a real parser.

Running rendered SQL through SQLite exposed three classes of drift the
internal round-trip property could not see: float literals in exponent
notation (``repr(1e-05)``) that our own lexer rejected, identifiers
that silently re-parse as keywords, and literal forms real engines read
differently.  These tests pin the fixes: dialect rendering always
quotes, the internal renderer validates what it cannot quote, and every
generated case's dialect SQL actually executes in SQLite.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import ReproError
from repro.fuzz import FuzzConfig, generate_case
from repro.oracle import SQLITE, make_adapter, render_for
from repro.sql import ast as A, parse
from repro.sql.unparse import render_float_literal, render_sql


def _stmt(column: str = "a", table: str = "t") -> A.SelectStmt:
    return A.SelectStmt(
        items=(A.SelectItem(expr=A.ColumnRef(None, column), star=False),),
        tables=(A.TableRef(table),),
        where=None,
    )


# ---------------------------------------------------------------------- #
# float literals
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "value", [1e-05, -2.5e-07, 0.1, 123.25, 1e17, -1e300, 5e-324]
)
def test_float_literal_roundtrips_through_our_parser(value):
    literal = render_float_literal(value)
    stmt = parse(f"select a from t where a = {literal}")
    assert stmt.where.right.value == value


@pytest.mark.parametrize("value", [1e-05, -2.5e-07, 1e17])
def test_float_literal_roundtrips_through_sqlite(value):
    literal = render_float_literal(value)
    conn = sqlite3.connect(":memory:")
    try:
        (result,) = conn.execute(f"select {literal}").fetchone()
    finally:
        conn.close()
    assert result == value


@pytest.mark.parametrize("value", [float("inf"), float("-inf"), float("nan")])
def test_non_finite_floats_are_rejected(value):
    with pytest.raises(ReproError):
        render_float_literal(value)


def test_lexer_accepts_exponent_notation():
    assert parse("select a from t where a > 1e5").where.right.value == 1e5
    assert parse("select a from t where a > 1.5E-3").where.right.value == 1.5e-3


def test_exponent_does_not_eat_alias():
    # "from t e" must still read the 'e' as an alias, not an exponent
    stmt = parse("select e.a from t e where e.a > 1")
    assert stmt.tables[0].alias == "e"


def test_limit_rejects_exponent_form():
    with pytest.raises(ReproError):
        parse("select a from t limit 1e2")


# ---------------------------------------------------------------------- #
# identifier validation (internal) and quoting (dialect)
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("name", ["select", "ALL", "order", "a b", "1abc", ""])
def test_internal_renderer_rejects_unquotable_identifiers(name):
    with pytest.raises(ReproError):
        render_sql(_stmt(column=name))


def test_internal_renderer_rejects_keyword_table():
    with pytest.raises(ReproError):
        render_sql(_stmt(table="where"))


def test_dialect_renderer_quotes_keyword_identifiers():
    # the dialect renderer can express what ours cannot: quoting makes
    # a keyword-named column legal in a real engine
    text = render_for(_stmt(column="order", table="t"), SQLITE)
    assert '"order"' in text
    conn = sqlite3.connect(":memory:")
    try:
        conn.execute('create table t ("order")')
        conn.execute('insert into t values (7)')
        assert conn.execute(text).fetchall() == [(7,)]
    finally:
        conn.close()


def test_dialect_renderer_escapes_string_quotes():
    stmt = parse("select a from t where a = 'it''s'")
    text = render_for(stmt, SQLITE)
    assert "'it''s'" in text


# ---------------------------------------------------------------------- #
# aggregates, GROUP BY/HAVING and disjunctive links through the dialect
# ---------------------------------------------------------------------- #


def _sqlite_fixture(conn: sqlite3.Connection) -> None:
    conn.execute("create table t (k, a)")
    conn.executemany("insert into t values (?, ?)", [(1, 1), (2, 2), (3, None)])
    conn.execute("create table s (k, b)")
    conn.executemany("insert into s values (?, ?)", [(1, 1), (2, 1), (3, 2)])


@pytest.mark.parametrize(
    "sql, expected",
    [
        # aggregate scalar subqueries, both orientations and zero-count
        ("select t.k from t where t.a = (select max(s.b) from s)", [(2,)]),
        (
            "select t.k from t where "
            "(select count(*) from s where s.b = t.a) = 1",
            [(2,)],
        ),
        (
            "select t.k from t where "
            "0 = (select count(s.k) from s where s.b = t.k)",
            [(3,)],
        ),
        # GROUP BY / HAVING in root and subquery position
        ("select t.a, count(*) from t group by t.a", [(None, 1), (1, 1), (2, 1)]),
        (
            "select s.b, count(*) from s group by s.b having count(*) > 1",
            [(1, 2)],
        ),
        (
            "select t.k from t where t.a in "
            "(select s.b from s group by s.b having count(*) >= 2)",
            [(1,)],
        ),
        # disjunctive and negated linking predicates
        (
            "select t.k from t where t.a = 2 "
            "or t.a in (select s.b from s where s.b = 1)",
            [(1,), (2,)],
        ),
        (
            "select t.k from t where not (t.k in (select s.b from s)) "
            "or exists (select * from s where s.k = t.a)",
            [(1,), (2,), (3,)],
        ),
    ],
)
def test_dialect_sql_answers_match_sqlite(sql, expected):
    """Rendered dialect SQL for aggregate/grouped/disjunctive shapes is
    not just parseable by SQLite — it computes the expected answer."""
    stmt = parse(sql)
    text = render_for(stmt, SQLITE)
    conn = sqlite3.connect(":memory:")
    try:
        _sqlite_fixture(conn)
        rows = conn.execute(text).fetchall()
    finally:
        conn.close()
    assert sorted(rows, key=repr) == sorted(expected, key=repr), text


def test_dialect_grouped_quantified_probe_keeps_having():
    """The quantified-over-grouped-subquery rewrite must probe the
    *aggregated* result — inlining the subquery WHERE would bypass the
    HAVING filter and readmit single-occurrence groups."""
    sql = (
        "select t.k from t where t.a in "
        "(select s.b from s group by s.b having count(*) >= 2)"
    )
    text = render_for(parse(sql), SQLITE)
    assert "having" in text
    conn = sqlite3.connect(":memory:")
    try:
        _sqlite_fixture(conn)
        rows = conn.execute(text).fetchall()
    finally:
        conn.close()
    # only b=1 occurs twice; t.a=2 must NOT match despite s containing 2
    assert rows == [(1,)]


def test_dialect_round_trips_through_our_parser():
    """Dialect output for the new shapes stays inside our own grammar
    (modulo identifier quoting), so corpus files re-parse."""
    for sql in [
        "select t.k from t where t.a = (select max(s.b) from s)",
        "select t.a, count(*) from t group by t.a having count(*) > 0",
        "select t.k from t where not (t.a in (select s.b from s))",
    ]:
        stmt = parse(sql)
        rendered = render_sql(stmt)
        assert parse(rendered) == stmt, rendered


# ---------------------------------------------------------------------- #
# the property: generated dialect SQL executes in SQLite
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(40))
def test_generated_dialect_sql_executes_in_sqlite(seed):
    case = generate_case(FuzzConfig(iterations=1, seed=seed), 0)
    db = case.db_spec.build()
    with make_adapter("sqlite", db) as adapter:
        rows, dialect_sql, _ = adapter.execute(case.stmt)
    assert isinstance(rows, list), dialect_sql


@pytest.mark.parametrize("seed", range(40, 70))
def test_generated_aggregate_sql_executes_in_sqlite(seed):
    """Same property with the aggregate/grouped/disjunctive generator
    shapes forced on — exercises the scalar-subquery and derived-table
    rendering paths."""
    config = FuzzConfig(
        iterations=1,
        seed=seed,
        aggregate_probability=0.6,
        group_probability=0.5,
        disjunction_probability=0.4,
        root_group_probability=0.5,
    )
    case = generate_case(config, 0)
    db = case.db_spec.build()
    with make_adapter("sqlite", db) as adapter:
        rows, dialect_sql, _ = adapter.execute(case.stmt)
    assert isinstance(rows, list), dialect_sql
