"""Unit tests for semantic analysis (AST -> NestedQuery)."""

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.errors import AnalysisError
from repro.sql.analyzer import compile_sql


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "emp",
        [Column("id", not_null=True), Column("dept"), Column("salary")],
        [(1, 10, 100)],
        primary_key="id",
    )
    d.create_table(
        "dept",
        [Column("id", not_null=True), Column("budget")],
        [(10, 1000)],
        primary_key="id",
    )
    return d


class TestResolution:
    def test_bare_names_qualified(self, db):
        q = compile_sql("select id from emp", db)
        assert q.root.select_refs == ["emp.id"]

    def test_ambiguous_bare_name(self, db):
        with pytest.raises(AnalysisError, match="ambiguous"):
            compile_sql("select id from emp, dept", db)

    def test_unknown_table(self, db):
        with pytest.raises(AnalysisError, match="unknown table"):
            compile_sql("select x from ghost", db)

    def test_unknown_column(self, db):
        with pytest.raises(AnalysisError, match="unresolved|no column"):
            compile_sql("select wages from emp", db)

    def test_alias_resolution(self, db):
        q = compile_sql("select e.id from emp e", db)
        assert q.root.select_refs == ["e.id"]
        assert q.root.tables == {"e": "emp"}

    def test_table_name_resolution_under_alias(self, db):
        # referencing by base table name when aliased is accepted
        q = compile_sql("select emp.id from emp", db)
        assert q.root.select_refs == ["emp.id"]

    def test_star_expansion(self, db):
        q = compile_sql("select * from dept", db)
        assert q.root.select_refs == ["dept.id", "dept.budget"]

    def test_repeated_table_gets_fresh_alias(self, db):
        sql = """
        select emp.id from emp
        where exists (select * from emp e2 where e2.id = emp.id)
        """
        q = compile_sql(sql, db)
        aliases = [a for b in q.blocks for a in b.tables]
        assert len(set(aliases)) == len(aliases)

    def test_same_table_twice_without_alias_renamed(self, db):
        sql = """
        select emp.id from emp
        where emp.salary in (select emp.salary from emp)
        """
        q = compile_sql(sql, db)
        child = q.root.children[0]
        assert list(child.tables.values()) == ["emp"]
        assert list(child.tables.keys()) != ["emp"]  # renamed, e.g. emp_2


class TestClassification:
    def test_local_predicate(self, db):
        q = compile_sql("select id from emp where salary > 50 and dept = 10", db)
        assert q.root.local_predicate is not None
        assert q.root.correlations == []
        assert q.root.children == []

    def test_correlation_extracted(self, db):
        sql = """
        select id from emp
        where exists (select * from dept where dept.id = emp.dept)
        """
        q = compile_sql(sql, db)
        child = q.root.children[0]
        assert len(child.correlations) == 1
        corr = child.correlations[0]
        assert corr.outer_ref == "emp.dept"
        assert corr.inner_ref == "dept.id"
        assert corr.op == "="

    def test_correlation_orientation_flipped(self, db):
        """``emp.salary < dept.budget`` written either way must orient the
        outer attribute on the left with the operator flipped."""
        sql_a = """
        select id from emp
        where exists (select * from dept where emp.salary < dept.budget)
        """
        sql_b = """
        select id from emp
        where exists (select * from dept where dept.budget > emp.salary)
        """
        ca = compile_sql(sql_a, db).root.children[0].correlations[0]
        cb = compile_sql(sql_b, db).root.children[0].correlations[0]
        assert (ca.outer_ref, ca.op, ca.inner_ref) == (cb.outer_ref, cb.op, cb.inner_ref)
        assert ca.outer_ref == "emp.salary" and ca.op == "<"

    def test_linking_specs(self, db):
        sql = "select id from emp where salary in (select budget from dept)"
        q = compile_sql(sql, db)
        link = q.root.children[0].link
        assert link.operator == "in"
        assert link.outer_ref == "emp.salary"
        assert link.inner_ref == "dept.budget"

    def test_quantified_link(self, db):
        sql = "select id from emp where salary >= all (select budget from dept)"
        link = compile_sql(sql, db).root.children[0].link
        assert link.operator == "all" and link.theta == ">="

    def test_exists_has_no_linked_attr(self, db):
        sql = "select id from emp where not exists (select * from dept)"
        link = compile_sql(sql, db).root.children[0].link
        assert link.operator == "not_exists"
        assert link.inner_ref is None


class TestRejections:
    def test_subquery_under_or(self, db):
        # subqueries under OR now lower into marked links + a residual
        sql = """
        select id from emp
        where salary > 1 or exists (select * from dept)
        """
        query = compile_sql(sql, db)
        assert query.has_disjunction
        (child,) = query.root.children
        assert child.link.mark is not None

    def test_not_over_subquery(self, db):
        # NOT over a subquery predicate lowers into a negated mark
        sql = "select id from emp where not (salary in (select budget from dept))"
        query = compile_sql(sql, db)
        assert query.has_disjunction
        (child,) = query.root.children
        assert child.link.mark is not None

    def test_multi_column_subquery_select(self, db):
        sql = "select id from emp where salary in (select id, budget from dept)"
        with pytest.raises(AnalysisError, match="exactly one column"):
            compile_sql(sql, db)

    def test_correlated_select_item(self, db):
        sql = """
        select id from emp
        where exists (select emp.id from dept where dept.id = emp.dept)
        """
        with pytest.raises(AnalysisError, match="enclosing"):
            compile_sql(sql, db)

    def test_non_simple_correlated_predicate(self, db):
        sql = """
        select id from emp
        where exists (select * from dept where dept.budget > emp.salary + 1)
        """
        with pytest.raises(AnalysisError, match="simple"):
            compile_sql(sql, db)

    def test_linking_attr_must_be_column(self, db):
        sql = "select id from emp where salary + 1 in (select budget from dept)"
        with pytest.raises(AnalysisError, match="plain column"):
            compile_sql(sql, db)


class TestEndToEnd:
    def test_run_sql_wrapper(self, db):
        out = repro.run_sql("select id from emp where salary > 50", db)
        assert out.rows == [(1,)]

    def test_value_exprs_in_local_predicates(self, db):
        out = repro.connect(db).execute("select id from emp where salary + 10 > 105")
        assert len(out) == 1

    def test_between_and_inlist(self, db):
        out = repro.connect(db).execute("select id from emp where salary between 50 and 150 and dept in (10, 20)")
        assert len(out) == 1

    def test_is_null_predicate(self, db):
        db.create_table(
            "x", [Column("k", not_null=True), Column("v")], [(1, NULL), (2, 5)],
            primary_key="k",
        )
        out = repro.connect(db).execute("select k from x where v is null")
        assert out.rows == [(1,)]
