"""The AST -> SQL renderer must be the parser's inverse: rendered text
re-parses to an equal AST and re-renders to the identical string.  The
fuzz corpus depends on this being exact."""

import pytest

from repro.errors import ReproError
from repro.sql import ast as A, parse, render_sql


def round_trip(sql):
    stmt = parse(sql)
    rendered = render_sql(stmt)
    assert parse(rendered) == stmt, rendered
    # idempotence: rendering is a fixpoint after one pass
    assert render_sql(parse(rendered)) == rendered
    return rendered


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "select r.a from r",
            "select distinct r.a, r.b from r, s where r.a = s.b",
            "select r.k from r where r.a > 1 and r.b <= 3",
            "select r.k from r where r.a between 1 and 3",
            "select r.k from r where r.a is null or r.b is not null",
            "select r.k from r where r.a in (1, 2, null)",
            "select r.k from r where r.a not in (0)",
            "select r.k from r where not (r.a = 1 or r.b = 2)",
            "select r.k from r where exists (select * from s where s.b = r.a)",
            "select r.k from r where not exists (select s.b from s)",
            "select r.k from r where r.a in (select s.b from s)",
            "select r.k from r where r.a not in (select s.b from s)",
            "select r.k from r where r.a < some (select s.b from s where s.k <> r.k)",
            "select r.k from r where r.a >= all (select s.b from s)",
            "select r.k from r where r.a = null",
            "select o.k from o where o.a > all (select l.b from l where "
            "l.k = o.k and exists (select * from p where p.k = l.k))",
        ],
    )
    def test_round_trips(self, sql):
        round_trip(sql)

    def test_order_by_and_limit(self):
        rendered = round_trip("select r.a from r order by r.a desc limit 3")
        assert "order by r.a desc" in rendered
        assert "limit 3" in rendered

    def test_quantifier_spelling_normalized(self):
        """ANY normalizes to SOME in the AST; rendering keeps it there."""
        rendered = round_trip("select r.k from r where r.a = any (select s.b from s)")
        assert " some " in rendered

    def test_neq_spelling_normalized(self):
        rendered = round_trip("select r.k from r where r.a != 1")
        assert "<>" in rendered

    def test_arith_parenthesized(self):
        rendered = round_trip("select r.k from r where r.a + 1 > r.b * 2")
        assert "(r.a + 1)" in rendered

    def test_string_constant_escaped(self):
        rendered = round_trip("select r.k from r where r.a = 'it''s'")
        assert "'it''s'" in rendered


class TestErrors:
    def test_unknown_value_expression(self):
        stmt = parse("select r.a from r")
        bad = A.SelectStmt(
            items=(A.SelectItem(expr=None, star=True),),
            tables=stmt.tables,
            where=A.ComparisonPred("=", object(), A.Constant(1)),
        )
        with pytest.raises(ReproError):
            render_sql(bad)

    def test_unknown_constant_type(self):
        stmt = parse("select r.a from r")
        bad = A.SelectStmt(
            items=stmt.items,
            tables=stmt.tables,
            where=A.ComparisonPred(
                "=", A.ColumnRef("r", "a"), A.Constant(object())
            ),
        )
        with pytest.raises(ReproError):
            render_sql(bad)
