"""The AST -> SQL renderer must be the parser's inverse: rendered text
re-parses to an equal AST and re-renders to the identical string.  The
fuzz corpus depends on this being exact."""

import pytest

from repro.errors import ReproError
from repro.sql import ast as A, parse, render_sql


def round_trip(sql):
    stmt = parse(sql)
    rendered = render_sql(stmt)
    assert parse(rendered) == stmt, rendered
    # idempotence: rendering is a fixpoint after one pass
    assert render_sql(parse(rendered)) == rendered
    return rendered


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "select r.a from r",
            "select distinct r.a, r.b from r, s where r.a = s.b",
            "select r.k from r where r.a > 1 and r.b <= 3",
            "select r.k from r where r.a between 1 and 3",
            "select r.k from r where r.a is null or r.b is not null",
            "select r.k from r where r.a in (1, 2, null)",
            "select r.k from r where r.a not in (0)",
            "select r.k from r where not (r.a = 1 or r.b = 2)",
            "select r.k from r where exists (select * from s where s.b = r.a)",
            "select r.k from r where not exists (select s.b from s)",
            "select r.k from r where r.a in (select s.b from s)",
            "select r.k from r where r.a not in (select s.b from s)",
            "select r.k from r where r.a < some (select s.b from s where s.k <> r.k)",
            "select r.k from r where r.a >= all (select s.b from s)",
            "select r.k from r where r.a = null",
            "select o.k from o where o.a > all (select l.b from l where "
            "l.k = o.k and exists (select * from p where p.k = l.k))",
            # aggregate scalar subqueries, both orientations
            "select r.k from r where r.a = (select max(s.b) from s)",
            "select r.k from r where (select count(*) from s where s.k = r.k) = 0",
            "select r.k from r where r.a < (select avg(s.b) from s where s.k = r.k)",
            "select r.k from r where 2 >= (select sum(s.a) from s)",
            "select r.k from r where r.a <> (select count(s.b) from s)",
            # GROUP BY / HAVING, root and subquery
            "select r.a, count(*) from r group by r.a",
            "select r.a, min(r.b), max(r.b) from r group by r.a having count(*) > 1",
            "select r.k from r where r.a in "
            "(select s.b from s group by s.b having sum(s.a) >= 3)",
            # disjunctive and negated linking predicates
            "select r.k from r where r.a = 1 or r.a in (select s.b from s)",
            "select r.k from r where not (r.a in (select s.b from s))",
            "select r.k from r where exists (select * from s where s.k = r.k) "
            "or (select count(*) from s where s.b = r.a) = 0",
        ],
    )
    def test_round_trips(self, sql):
        round_trip(sql)

    def test_count_star_rendering(self):
        rendered = round_trip("select r.a, count(*) from r group by r.a")
        assert "count(*)" in rendered

    def test_having_renders_after_group_by(self):
        rendered = round_trip(
            "select r.a from r group by r.a having count(*) > 1"
        )
        assert rendered.index("group by") < rendered.index("having")

    def test_order_by_and_limit(self):
        rendered = round_trip("select r.a from r order by r.a desc limit 3")
        assert "order by r.a desc" in rendered
        assert "limit 3" in rendered

    def test_quantifier_spelling_normalized(self):
        """ANY normalizes to SOME in the AST; rendering keeps it there."""
        rendered = round_trip("select r.k from r where r.a = any (select s.b from s)")
        assert " some " in rendered

    def test_neq_spelling_normalized(self):
        rendered = round_trip("select r.k from r where r.a != 1")
        assert "<>" in rendered

    def test_arith_parenthesized(self):
        rendered = round_trip("select r.k from r where r.a + 1 > r.b * 2")
        assert "(r.a + 1)" in rendered

    def test_string_constant_escaped(self):
        rendered = round_trip("select r.k from r where r.a = 'it''s'")
        assert "'it''s'" in rendered


class TestErrors:
    def test_unknown_value_expression(self):
        stmt = parse("select r.a from r")
        bad = A.SelectStmt(
            items=(A.SelectItem(expr=None, star=True),),
            tables=stmt.tables,
            where=A.ComparisonPred("=", object(), A.Constant(1)),
        )
        with pytest.raises(ReproError):
            render_sql(bad)

    def test_unknown_constant_type(self):
        stmt = parse("select r.a from r")
        bad = A.SelectStmt(
            items=stmt.items,
            tables=stmt.tables,
            where=A.ComparisonPred(
                "=", A.ColumnRef("r", "a"), A.Constant(object())
            ),
        )
        with pytest.raises(ReproError):
            render_sql(bad)
