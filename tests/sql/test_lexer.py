"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_lowercased(self):
        assert kinds("SELECT Select select") == [("kw", "select")] * 3

    def test_identifiers_keep_case(self):
        assert kinds("MyTable") == [("ident", "MyTable")]

    def test_numbers(self):
        assert kinds("42 3.14") == [("number", "42"), ("number", "3.14")]

    def test_qualified_name_not_a_decimal(self):
        toks = kinds("t.a")
        assert toks == [("ident", "t"), ("op", "."), ("ident", "a")]

    def test_number_then_dot_ident(self):
        toks = kinds("1.x")
        assert toks[0] == ("number", "1")

    def test_strings(self):
        assert kinds("'hello'") == [("string", "hello")]

    def test_string_escape_doubled_quote(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_operators_maximal_munch(self):
        assert kinds("<= <> >= < >") == [
            ("op", "<="),
            ("op", "<>"),
            ("op", ">="),
            ("op", "<"),
            ("op", ">"),
        ]

    def test_illegal_character(self):
        with pytest.raises(ParseError, match="illegal"):
            tokenize("select @")

    def test_comments_skipped(self):
        assert kinds("select -- a comment\n 1") == [("kw", "select"), ("number", "1")]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestPositions:
    def test_line_numbers(self):
        toks = tokenize("select\nfrom")
        assert toks[0].line == 1
        assert toks[1].line == 2

    def test_token_helpers(self):
        tok = tokenize("select")[0]
        assert tok.is_kw("select") and not tok.is_kw("from")
        assert "select" in repr(tok)


class TestRealQueries:
    def test_paper_query_tokens(self):
        text = """
        select o_orderkey from orders
        where o_totalprice > all (select l_extendedprice from lineitem
                                  where l_orderkey = o_orderkey)
        """
        toks = tokenize(text)
        values = [t.value for t in toks if t.kind == "kw"]
        assert values.count("select") == 2
        assert "all" in values
