"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast as A
from repro.sql.parser import parse


class TestSelectShape:
    def test_items_and_tables(self):
        stmt = parse("select a, t.b from t")
        assert len(stmt.items) == 2
        assert stmt.items[0].expr == A.ColumnRef(None, "a")
        assert stmt.items[1].expr == A.ColumnRef("t", "b")
        assert stmt.tables == (A.TableRef("t", None),)

    def test_star(self):
        stmt = parse("select * from t")
        assert stmt.items[0].star

    def test_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_aliases(self):
        stmt = parse("select a from t as x, u y")
        assert stmt.tables[0].effective_alias == "x"
        assert stmt.tables[1].effective_alias == "y"

    def test_no_where(self):
        assert parse("select a from t").where is None

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("select a from t junk extra ,")


class TestPredicates:
    def where(self, text):
        return parse(f"select a from t where {text}").where

    def test_comparison(self):
        p = self.where("a < 5")
        assert isinstance(p, A.ComparisonPred)
        assert p.op == "<"

    def test_neq_alias(self):
        assert self.where("a != 5").op == "<>"

    def test_and_or_precedence(self):
        p = self.where("a = 1 or b = 2 and c = 3")
        assert isinstance(p, A.OrPred)
        assert isinstance(p.right, A.AndPred)

    def test_parenthesized(self):
        p = self.where("(a = 1 or b = 2) and c = 3")
        assert isinstance(p, A.AndPred)
        assert isinstance(p.left, A.OrPred)

    def test_not(self):
        p = self.where("not a = 1")
        assert isinstance(p, A.NotPred)

    def test_between(self):
        p = self.where("a between 1 and 3")
        assert isinstance(p, A.BetweenPred)

    def test_is_null(self):
        assert self.where("a is null") == A.IsNullPred(
            A.ColumnRef(None, "a"), negated=False
        )
        assert self.where("a is not null").negated

    def test_in_list(self):
        p = self.where("a in (1, 2, 3)")
        assert isinstance(p, A.InListPred)
        assert len(p.items) == 3

    def test_not_in_list(self):
        assert self.where("a not in (1)").negated


class TestSubqueryPredicates:
    def where(self, text):
        return parse(f"select a from t where {text}").where

    def test_exists(self):
        p = self.where("exists (select * from u)")
        assert isinstance(p, A.ExistsPred) and not p.negated

    def test_not_exists(self):
        p = self.where("not exists (select * from u)")
        assert isinstance(p, A.ExistsPred) and p.negated

    def test_in_subquery(self):
        p = self.where("a in (select b from u)")
        assert isinstance(p, A.InSubqueryPred) and not p.negated

    def test_not_in_subquery(self):
        p = self.where("a not in (select b from u)")
        assert isinstance(p, A.InSubqueryPred) and p.negated

    @pytest.mark.parametrize("word,quant", [("any", "some"), ("some", "some"), ("all", "all")])
    def test_quantified(self, word, quant):
        p = self.where(f"a > {word} (select b from u)")
        assert isinstance(p, A.QuantifiedPred)
        assert p.quantifier == quant
        assert p.op == ">"

    def test_nested_two_levels(self):
        p = self.where(
            "a > all (select b from u where exists (select * from v where v.x = u.b))"
        )
        inner = p.subquery.where
        assert isinstance(inner, A.ExistsPred)

    def test_conjunction_of_subqueries(self):
        p = self.where(
            "exists (select * from u) and not exists (select * from v)"
        )
        assert isinstance(p, A.AndPred)
        assert isinstance(p.left, A.ExistsPred)
        assert isinstance(p.right, A.ExistsPred) and p.right.negated


class TestValues:
    def value(self, text):
        pred = parse(f"select a from t where a = {text}").where
        return pred.right

    def test_negative_number(self):
        assert self.value("-5") == A.Constant(-5)

    def test_float(self):
        assert self.value("2.5") == A.Constant(2.5)

    def test_string(self):
        assert self.value("'abc'") == A.Constant("abc")

    def test_null_true_false(self):
        from repro.engine.types import NULL

        assert self.value("null") == A.Constant(NULL)
        assert self.value("true") == A.Constant(True)
        assert self.value("false") == A.Constant(False)

    def test_arithmetic_precedence(self):
        v = self.value("1 + 2 * 3")
        assert isinstance(v, A.BinaryArith) and v.op == "+"
        assert isinstance(v.right, A.BinaryArith) and v.right.op == "*"

    def test_parenthesized_value(self):
        v = self.value("(1 + 2) * 3")
        assert v.op == "*"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "update t set a = 1",
            "select from t",
            "select a from",
            "select a from t where",
            "select a from t where a >",
            "select a from t where a in (",
            "select a from t where exists select * from u",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_line(self):
        try:
            parse("select a\nfrom t\nwhere a >")
        except ParseError as e:
            assert e.line >= 1
        else:
            pytest.fail("expected ParseError")


class TestPaperQueries:
    def test_query_q_parses(self):
        from tests.core.test_paper_example import QUERY_Q

        stmt = parse(QUERY_Q)
        outer = stmt.where
        # R.A > 1 AND R.B NOT IN (...)
        assert isinstance(outer, A.AndPred)
        not_in = outer.right
        assert isinstance(not_in, A.InSubqueryPred) and not_in.negated
        inner = not_in.subquery.where
        # three conjuncts: S.F=5, R.D=S.G, S.H > ALL (...)
        def flatten(p):
            if isinstance(p, A.AndPred):
                return flatten(p.left) + flatten(p.right)
            return [p]

        parts = flatten(inner)
        assert len(parts) == 3
        assert isinstance(parts[2], A.QuantifiedPred)
        assert parts[2].quantifier == "all"

    def test_tpch_builders_parse(self):
        from repro.tpch import query1, query2, query3

        parse(query1("1993-01-01", "1994-01-01"))
        parse(query2("any", 1, 10, 500, 25))
        for v in "abc":
            parse(query3("all", "not exists", v, 1, 10, 500, 25))
