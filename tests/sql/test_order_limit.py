"""Tests for ORDER BY / LIMIT support."""

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.errors import AnalysisError, ParseError


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "t",
        [Column("k", not_null=True), Column("v"), Column("g")],
        [(1, 30, "b"), (2, 10, "a"), (3, 20, "b"), (4, NULL, "a")],
        primary_key="k",
    )
    d.create_table(
        "u",
        [Column("k", not_null=True), Column("tk")],
        [(1, 1), (2, 3)],
        primary_key="k",
    )
    return d


class TestParsing:
    def test_order_and_limit_parsed(self):
        from repro.sql.parser import parse

        stmt = parse("select a from t order by a desc, b asc limit 3")
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 3

    def test_limit_requires_integer(self):
        from repro.sql.parser import parse

        with pytest.raises(ParseError, match="integer"):
            parse("select a from t limit 2.5")


class TestExecution:
    def test_order_ascending_nulls_first(self, db):
        out = repro.connect(db).execute("select k, v from t order by v")
        assert [r[0] for r in out.rows] == [4, 2, 3, 1]

    def test_order_descending(self, db):
        out = repro.connect(db).execute("select k, v from t order by v desc")
        assert [r[0] for r in out.rows] == [1, 3, 2, 4]

    def test_multi_key_order(self, db):
        out = repro.connect(db).execute("select g, v, k from t order by g, v desc")
        assert [r[2] for r in out.rows] == [2, 4, 1, 3]

    def test_limit(self, db):
        out = repro.connect(db).execute("select k, v from t order by v desc limit 2")
        assert [r[0] for r in out.rows] == [1, 3]

    def test_limit_zero(self, db):
        out = repro.connect(db).execute("select k from t limit 0")
        assert len(out) == 0

    def test_limit_beyond_cardinality(self, db):
        out = repro.connect(db).execute("select k from t limit 100")
        assert len(out) == 4

    @pytest.mark.parametrize(
        "strategy",
        ["nested-iteration", "nested-relational", "nested-relational-optimized",
         "system-a-native"],
    )
    def test_applies_to_every_strategy(self, db, strategy):
        sql = (
            "select k, v from t where exists (select * from u where u.tk = t.k) "
            "order by v desc limit 1"
        )
        out = repro.connect(db).execute(sql, strategy=strategy)
        assert out.rows == [(1, 30)]


class TestRejections:
    def test_order_in_subquery_rejected(self, db):
        sql = (
            "select k from t where k in "
            "(select tk from u order by tk)"
        )
        with pytest.raises(AnalysisError, match="outermost"):
            repro.connect(db).execute(sql)

    def test_order_item_must_be_selected(self, db):
        with pytest.raises(AnalysisError, match="SELECT list"):
            repro.connect(db).execute("select k from t order by v")
