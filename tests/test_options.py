"""Unit and integration tests for :class:`repro.options.ExecutionOptions`
and the canonical layering — session defaults ← ``options=`` bundle ←
explicit per-call keyword arguments — shared by every entry point.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.engine import NULL, Column, Database
from repro.errors import InvalidArgumentError
from repro.options import OPTION_FIELDS, ExecutionOptions, layer_options


@pytest.fixture()
def db():
    d = Database()
    d.create_table(
        "r",
        [Column("k", not_null=True), Column("a")],
        [(i, i % 3) for i in range(12)],
        primary_key="k",
    )
    return d


class TestBundle:
    def test_defaults_inherit_everything(self):
        opts = ExecutionOptions()
        assert all(getattr(opts, f) is None for f in OPTION_FIELDS)
        assert opts.describe() == "defaults"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionOptions().threads = 4

    def test_merged_non_none_wins(self):
        base = ExecutionOptions(strategy="auto", threads=2, logic="3vl")
        over = ExecutionOptions(threads=8, backend="vector")
        merged = base.merged(over)
        assert merged == ExecutionOptions(
            strategy="auto", backend="vector", threads=8, logic="3vl"
        )

    def test_merged_none_is_identity(self):
        base = ExecutionOptions(threads=2)
        assert base.merged(None) is base
        assert base.merged(ExecutionOptions()) == base

    def test_merged_rejects_other_types(self):
        with pytest.raises(InvalidArgumentError, match="ExecutionOptions"):
            ExecutionOptions().merged({"threads": 4})

    def test_replace_updates_and_clears(self):
        opts = ExecutionOptions(threads=2, backend="vector")
        assert opts.replace(threads=8).threads == 8
        cleared = opts.replace(backend=None)
        assert cleared.backend is None
        assert cleared.threads == 2

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(InvalidArgumentError, match="workers"):
            ExecutionOptions().replace(workers=4)

    def test_describe_lists_non_none(self):
        text = ExecutionOptions(threads=4, logic="2vl").describe()
        assert text == "threads=4, logic='2vl'"

    def test_layer_options_precedence(self):
        base = ExecutionOptions(strategy="auto", threads=2)
        bundle = ExecutionOptions(threads=4, backend="vector")
        eff = layer_options(base, bundle, threads=8, logic="2vl")
        assert eff.threads == 8  # kwarg beats bundle beats base
        assert eff.backend == "vector"  # bundle beats base
        assert eff.strategy == "auto"  # base survives
        assert eff.logic == "2vl"

    def test_layer_options_without_base(self):
        eff = layer_options(None, None, threads=3)
        assert eff == ExecutionOptions(threads=3)


class TestSessionIntegration:
    SQL = "select r.k from r where r.a > 0"

    def test_session_bundle_sets_defaults(self, db):
        session = repro.connect(
            db, options=ExecutionOptions(strategy="nested-relational")
        )
        _, trace = session.prepare(self.SQL).trace()
        assert trace.roots[0].attrs["strategy"] == "nested-relational"

    def test_call_bundle_beats_session_bundle(self, db):
        session = repro.connect(
            db, options=ExecutionOptions(strategy="nested-relational")
        )
        _, trace = session.prepare(self.SQL).trace(
            options=ExecutionOptions(strategy="nested-iteration")
        )
        assert trace.roots[0].attrs["strategy"] == "nested-iteration"

    def test_kwarg_beats_call_bundle(self, db):
        session = repro.connect(db)
        _, trace = session.prepare(self.SQL).trace(
            strategy="nested-relational",
            options=ExecutionOptions(strategy="nested-iteration"),
        )
        assert trace.roots[0].attrs["strategy"] == "nested-relational"

    def test_backend_option_routes_execution(self, db):
        session = repro.connect(db, options=ExecutionOptions(backend="vector"))
        _, trace = session.prepare(self.SQL).trace()
        assert trace.roots[0].attrs["strategy"] == (
            "nested-relational-vectorized"
        )

    def test_logic_option_per_call(self, db):
        db.create_table("n", [Column("x")], [(1,), (NULL,)])
        sql = "select n.x from n where not (n.x = 0)"
        session = repro.connect(db)
        query = session.prepare(sql)
        # 3VL: NOT (NULL = 0) stays UNKNOWN, the NULL row is excluded
        assert len(query.execute()) == 1
        # 2VL: NULL = 0 is plain FALSE, so its negation admits the row
        two = query.execute(options=ExecutionOptions(logic="2vl"))
        assert len(two) == 2
        # the override is per-call: the session default still stands
        assert len(query.execute()) == 1

    def test_invalid_logic_rejected(self, db):
        session = repro.connect(db)
        with pytest.raises(InvalidArgumentError):
            session.prepare(self.SQL).execute(
                options=ExecutionOptions(logic="4vl")
            )

    def test_options_on_one_shot_execute(self, db):
        result = repro.connect(db).execute(
            self.SQL, options=ExecutionOptions(strategy="nested-iteration")
        )
        assert len(result) == 8

    def test_explain_honours_strategy_option(self, db):
        session = repro.connect(db)
        plan = session.prepare(self.SQL).explain(
            options=ExecutionOptions(strategy="nested-relational")
        )
        assert plan.chosen == "nested-relational"
        assert not plan.cost_based

    def test_verify_accepts_options(self, db):
        report = repro.connect(db).prepare(self.SQL).verify(
            options=ExecutionOptions(strategy="nested-relational")
        )
        assert report.acceptable
