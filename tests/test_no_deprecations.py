"""The deprecated shims must be the *only* way to trigger a
DeprecationWarning: every internal code path — session execution, the
cost-based planner, tracing, explain, verify, the CLI, the fuzzer —
runs clean.  This pins the PR-3 migration: no internal caller still
routes through ``repro.run_sql`` or ``repro.core.planner.execute`` /
``execute_traced``.
"""

import warnings

import pytest

import repro
from repro.options import ExecutionOptions

SQL = (
    "select o_orderkey from orders where exists "
    "(select * from lineitem where l_orderkey = o_orderkey)"
)


@pytest.fixture()
def strict():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestInternalPathsAreClean:
    def test_session_execution_surface(self, tiny_tpch, strict):
        session = repro.connect(tiny_tpch)
        query = session.prepare(SQL)
        result = query.execute()
        assert query.execute(strategy="nested-relational") == result
        assert query.execute(backend="vector").sorted() == result.sorted()
        assert query.execute(options=ExecutionOptions(threads=2)) == result
        traced, trace = query.trace()
        assert traced == result
        assert trace.find("planner")

    def test_explain_and_describe(self, tiny_tpch, strict):
        query = repro.connect(tiny_tpch).prepare(SQL)
        plan = query.explain()
        assert plan.cost_based
        plan.render("json")
        query.describe()

    def test_verify_path(self, tiny_tpch, strict):
        report = repro.connect(tiny_tpch).prepare(SQL).verify(
            strategy="nested-relational"
        )
        assert report.acceptable

    def test_fuzz_runner_path(self, strict):
        from repro.fuzz import DifferentialRunner, FuzzConfig, run_fuzz

        outcome = run_fuzz(
            FuzzConfig(iterations=3, seed=11),
            runner=DifferentialRunner(),
            corpus_dir=None,
            shrink=False,
        )
        assert outcome.ok

    def test_cli_run_and_explain(self, strict, capsys):
        from repro.cli import main

        assert main(["run", SQL, "--tpch", "0.001"]) == 0
        assert main(["explain", SQL, "--tpch", "0.001"]) == 0
        capsys.readouterr()


class TestShimsStillWarn:
    def test_run_sql_warns(self, tiny_tpch):
        with pytest.warns(DeprecationWarning, match="run_sql"):
            repro.run_sql("select n_name from nation", tiny_tpch)

    def test_planner_execute_warns(self, tiny_tpch):
        query = repro.compile_sql("select n_name from nation", tiny_tpch)
        with pytest.warns(DeprecationWarning, match="execute"):
            repro.execute(query, tiny_tpch)
