"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.bench.harness import Experiment, SeriesPoint, StrategyMeasurement
from repro.bench.plot import render_chart


def make_experiment(values_by_strategy, labels=None):
    n = len(next(iter(values_by_strategy.values())))
    labels = labels or [f"p{i}" for i in range(n)]
    exp = Experiment("TEST", "synthetic")
    for i in range(n):
        point = SeriesPoint(label=labels[i], block_sizes=(i,), intermediate_rows=i)
        for name, values in values_by_strategy.items():
            point.measurements[name] = StrategyMeasurement(
                strategy=name,
                seconds=values[i] / 1000.0,
                result_rows=1,
                metrics={"rows_scanned": values[i]},
            )
        exp.points.append(point)
    return exp


class TestRenderChart:
    def test_contains_legend_and_labels(self):
        exp = make_experiment({"a-strategy": [10, 20], "b-strategy": [5, 6]})
        text = render_chart(exp, metric="cost")
        assert "legend:" in text
        assert "a-strategy" in text and "b-strategy" in text
        assert "p0" in text and "p1" in text

    def test_growth_places_glyphs_on_distinct_rows(self):
        exp = make_experiment({"grows": [10, 1000]})
        text = render_chart(exp, metric="cost", height=10)
        rows_with_glyph = [
            i
            for i, line in enumerate(text.splitlines())
            if "|" in line and "*" in line.split("|", 1)[1]
        ]
        assert len(rows_with_glyph) == 2
        assert rows_with_glyph[0] < rows_with_glyph[1]  # larger value higher

    def test_log_scale_automatic(self):
        exp = make_experiment({"wide": [1, 10_000]})
        assert "log10" in render_chart(exp, metric="cost")
        narrow = make_experiment({"narrow": [100, 110]})
        assert "log10" not in render_chart(narrow, metric="cost")

    def test_explicit_linear_scale(self):
        exp = make_experiment({"wide": [1, 10_000]})
        assert "log10" not in render_chart(exp, metric="cost", log_scale=False)

    def test_metric_variants(self):
        exp = make_experiment({"s": [10, 20]})
        for metric in ("seconds", "cost", "rows", "rows_scanned"):
            assert "TEST" in render_chart(exp, metric=metric)

    def test_empty_metric_handled(self):
        exp = make_experiment({"s": [10, 20]})
        out = render_chart(exp, metric="nonexistent_counter")
        assert "no data" in out

    def test_coincident_series_both_visible(self):
        exp = make_experiment({"one": [50, 50], "two": [50, 50]})
        text = render_chart(exp, metric="cost")
        assert "*" in text and "o" in text


class TestCliChart:
    def test_bench_chart_flag(self, capsys):
        from repro.cli import main

        code = main(["bench", "--figure", "fig4", "--sf", "0.001", "--chart"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out
