"""Integration tests for deep and wide query shapes.

The paper claims the nested relational approach handles "nested queries
of any type and any level" uniformly.  These tests push past the
two-level workloads of the benchmark section: three-level chains,
tree queries with two and three subqueries in one block, subqueries at
different depths, and combinations of every linking operator — all
differentially checked against the tuple-iteration oracle.
"""

import pytest

import repro
from repro.engine import Column, Database, NULL

STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
]


@pytest.fixture(scope="module")
def db():
    d = Database()
    d.create_table(
        "a",
        [Column("k", not_null=True), Column("x"), Column("y")],
        [(i, i % 5, i % 3) for i in range(20)],
        primary_key="k",
    )
    d.create_table(
        "b",
        [Column("k", not_null=True), Column("ak"), Column("v")],
        [(i, i % 20, (i * 7) % 10 if i % 6 else NULL) for i in range(40)],
        primary_key="k",
    )
    d.create_table(
        "c",
        [Column("k", not_null=True), Column("bk"), Column("w")],
        [(i, i % 40, i % 4) for i in range(60)],
        primary_key="k",
    )
    d.create_table(
        "d",
        [Column("k", not_null=True), Column("ck"), Column("z")],
        [(i, i % 60, i % 2) for i in range(50)],
        primary_key="k",
    )
    return d


def check(db, sql, strategies=STRATEGIES):
    q = repro.compile_sql(sql, db)
    oracle = repro.execute(q, db, strategy="nested-iteration").sorted()
    for strategy in strategies:
        got = repro.execute(q, db, strategy=strategy).sorted()
        assert got == oracle, f"{strategy}: {got.rows} != {oracle.rows}"
    return oracle


class TestThreeLevels:
    def test_all_all_all(self, db):
        check(
            db,
            """select a.k from a where a.x > all
               (select b.v from b where b.ak = a.k and b.v <= all
                  (select c.w from c where c.bk = b.k))""",
        )

    def test_mixed_three_levels(self, db):
        check(
            db,
            """select a.k from a where exists
               (select * from b where b.ak = a.k and b.v not in
                  (select c.w from c where c.bk = b.k and exists
                     (select * from d where d.ck = c.k and d.z = a.y)))""",
        )

    def test_four_levels_deep(self, db):
        oracle = check(
            db,
            """select a.k from a where a.x >= some
               (select b.v from b where b.ak = a.k and not exists
                  (select * from c where c.bk = b.k and c.w in
                     (select d.z from d where d.ck = c.k)))""",
        )
        assert len(oracle) > 0  # non-trivial result

    def test_depth_classification(self, db):
        q = repro.compile_sql(
            """select a.k from a where exists
               (select * from b where b.ak = a.k and exists
                  (select * from c where c.bk = b.k and exists
                     (select * from d where d.ck = c.k)))""",
            db,
        )
        assert q.nesting_depth == 3
        assert q.n_blocks == 4


class TestTreeQueries:
    def test_two_children_mixed(self, db):
        check(
            db,
            """select a.k from a
               where exists (select * from b where b.ak = a.k)
                 and a.x not in (select c.w from c where c.bk = a.k)""",
        )

    def test_three_children_one_block(self, db):
        oracle = check(
            db,
            """select a.k from a
               where exists (select * from b where b.ak = a.k)
                 and a.x > any (select c.w from c where c.bk = a.k)
                 and not exists (select * from d where d.ck = a.k and d.z = 1)""",
        )
        assert len(oracle) >= 0

    def test_subroot_below_root(self, db):
        """The subroot is an inner block: b carries two subqueries."""
        check(
            db,
            """select a.k from a where a.x in
               (select b.v from b where b.ak = a.k
                  and exists (select * from c where c.bk = b.k)
                  and b.v > all (select d.z from d where d.ck = b.k))""",
        )

    def test_tree_expression_structure(self, db):
        q = repro.compile_sql(
            """select a.k from a
               where exists (select * from b where b.ak = a.k)
                 and exists (select * from c where c.bk = a.k)""",
            db,
        )
        tree = repro.TreeExpression(q)
        assert len(tree.subroots()) == 1
        assert len(tree.leaves()) == 2

    def test_tree_with_deep_branches(self, db):
        check(
            db,
            """select a.k from a
               where a.x <= all (select b.v from b where b.ak = a.k and
                                 exists (select * from c where c.bk = b.k))
                 and exists (select * from d where d.ck = a.k)""",
        )


class TestOperatorMatrix:
    """Every pair of linking operators across two levels."""

    OPS = {
        "exists": "exists (select * from {t} where {corr})",
        "not_exists": "not exists (select * from {t} where {corr})",
        "in": "{lhs} in (select {val} from {t} where {corr})",
        "not_in": "{lhs} not in (select {val} from {t} where {corr})",
        "lt_any": "{lhs} < any (select {val} from {t} where {corr})",
        "ge_all": "{lhs} >= all (select {val} from {t} where {corr})",
    }

    @pytest.mark.parametrize("outer_op", sorted(OPS))
    @pytest.mark.parametrize("inner_op", sorted(OPS))
    def test_pairs(self, db, outer_op, inner_op):
        inner = self.OPS[inner_op].format(
            t="c", corr="c.bk = b.k", lhs="b.v", val="c.w"
        )
        outer = self.OPS[outer_op].format(
            t="b", corr=f"b.ak = a.k and {inner}", lhs="a.x", val="b.v"
        )
        check(db, f"select a.k from a where {outer}")


class TestEdgeCases:
    def test_empty_outer_block(self, db):
        oracle = check(
            db,
            "select a.k from a where a.x > 99 and exists "
            "(select * from b where b.ak = a.k)",
        )
        assert len(oracle) == 0

    def test_empty_inner_block_negative(self, db):
        """Inner Δ eliminates every tuple: NOT EXISTS holds everywhere."""
        oracle = check(
            db,
            "select a.k from a where not exists "
            "(select * from b where b.ak = a.k and b.v > 99)",
        )
        assert len(oracle) == len(db.relation("a"))

    def test_empty_inner_block_all(self, db):
        oracle = check(
            db,
            "select a.k from a where a.x > all "
            "(select b.v from b where b.ak = a.k and b.v > 99)",
        )
        assert len(oracle) == len(db.relation("a"))

    def test_multi_table_outer_block(self, db):
        check(
            db,
            """select a.k, b.k from a, b
               where a.k = b.ak and a.x not in
                 (select c.w from c where c.bk = b.k)""",
        )

    def test_multi_table_inner_block(self, db):
        check(
            db,
            """select a.k from a where a.x in
               (select c.w from b, c where b.k = c.bk and b.ak = a.k)""",
        )

    def test_self_join_across_levels(self, db):
        check(
            db,
            """select a.k from a where a.x > all
               (select a2.x from a a2 where a2.y = a.y and a2.k <> a.k)""",
        )
