"""Property test: tracing is observation-only.

For random (query, database) pairs from the fuzzer's generator and a
random strategy, executing with tracing enabled must produce exactly
the same result rows AND exactly the same ``Metrics`` counters as
executing with tracing disabled — the tracer may never perturb what it
observes.  On top of that, every trace drawn this way must satisfy the
span-tree invariants and reconcile with the Metrics totals.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.engine.metrics import collect
from repro.engine.trace import (
    reconcile_with_metrics,
    trace_invariant_violations,
    tracing,
)
from repro.errors import ReproError
from repro.fuzz import FuzzConfig, generate_case

#: strategies that accept every generated query (guarded ones would
#: force per-case applicability plumbing without adding trace coverage)
STRATEGY_NAMES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "nested-iteration",
    "system-a-native",
    "auto",
]

cases = st.builds(
    generate_case,
    config=st.builds(
        FuzzConfig,
        iterations=st.just(1),
        seed=st.integers(min_value=0, max_value=2**16),
        max_depth=st.integers(min_value=1, max_value=3),
        null_rate=st.sampled_from([0.0, 0.25, 0.5]),
        max_rows=st.integers(min_value=1, max_value=6),
    ),
    iteration=st.integers(min_value=0, max_value=3),
)


@given(case=cases, strategy=st.sampled_from(STRATEGY_NAMES))
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_tracing_on_off_parity(case, strategy):
    db = case.db_spec.build()
    query = repro.compile_sql(case.sql, db)

    try:
        with collect() as plain_metrics:
            plain = repro.execute(query, db, strategy=strategy)
    except ReproError:
        # a strategy rejecting the query must reject it identically
        # under tracing; nothing further to compare
        with collect():
            with tracing():
                try:
                    repro.execute(query, db, strategy=strategy)
                except ReproError:
                    return
        raise AssertionError(
            f"{strategy} raised without tracing but succeeded with it"
        )

    with collect() as traced_metrics:
        with tracing() as trace:
            traced = repro.execute(query, db, strategy=strategy)

    assert traced.sorted() == plain.sorted()
    assert traced_metrics.snapshot() == plain_metrics.snapshot()
    assert trace_invariant_violations(
        trace, result_cardinality=len(traced)
    ) == []
    assert reconcile_with_metrics(trace, traced_metrics.snapshot()) == []
