"""Aggregate-linking NULL matrix: every aggregate θ-comparison ×
pathological inner relation shapes, cross-checked against SQLite.

The scalar-subquery form ``x θ (SELECT agg(...) ...)`` has its own NULL
corners on top of the quantified ones: ``MAX``/``MIN``/``SUM``/``AVG``
over an empty or NULL-only group are NULL (making the comparison
UNKNOWN), while ``COUNT`` is 0 (making it very much defined) — the
asymmetry behind the COUNT bug.  Each cell runs the row, vectorized and
parallel strategies and diffs every one against SQLite for the same
data, with a NULL outer operand in the mix throughout.
"""

from __future__ import annotations

import pytest

from repro.engine import Column, Database, NULL
from repro.oracle import cross_check

STRATEGIES = (
    "nested-relational",
    "nested-relational-vectorized",
    "nested-relational-parallel",
)

#: inner-relation shapes: name -> rows of inner_t(k, a)
INNER_SHAPES = {
    "empty": [],
    "null-only": [(1, NULL), (2, NULL)],
    "mixed": [(1, 1), (2, NULL), (3, 3)],
    "no-nulls": [(1, 1), (2, 2)],
}

#: aggregate θ-comparisons over outer_t.a vs the inner aggregate
PREDICATES = {
    "eq-max": "outer_t.a = (select max(a) from inner_t)",
    "lt-avg": "outer_t.a < (select avg(a) from inner_t)",
    "ge-sum": "outer_t.a >= (select sum(a) from inner_t)",
    "neq-min": "outer_t.a <> (select min(a) from inner_t)",
    "eq-count-star": "outer_t.a = (select count(*) from inner_t)",
    "eq-count-col": "outer_t.a = (select count(a) from inner_t)",
    "zero-eq-count": "0 = (select count(a) from inner_t)",
    # flipped orientation: the subquery on the left
    "max-le-outer": "(select max(a) from inner_t) <= outer_t.a",
}

#: correlated variants — the inner group depends on the outer row, so
#: empty and NULL-only groups arise per outer tuple
CORRELATED_PREDICATES = {
    "corr-eq-max": (
        "outer_t.a = (select max(a) from inner_t where inner_t.g = outer_t.k)"
    ),
    "corr-lt-avg": (
        "outer_t.a < (select avg(a) from inner_t where inner_t.g = outer_t.k)"
    ),
    "corr-ge-sum": (
        "outer_t.a >= (select sum(a) from inner_t where inner_t.g = outer_t.k)"
    ),
    "corr-count-eq-zero": (
        "(select count(*) from inner_t where inner_t.g = outer_t.k) = 0"
    ),
    "corr-count-col-eq-zero": (
        "(select count(a) from inner_t where inner_t.g = outer_t.k) = 0"
    ),
}

#: correlated inner shapes: rows of inner_t(k, g, a); outer pks are 1..4
CORRELATED_SHAPES = {
    "empty": [],
    # group 1 is NULL-only, group 2 mixed, groups 3/4 empty
    "null-only-group": [(1, 1, NULL), (2, 1, NULL), (3, 2, 2), (4, 2, NULL)],
    "null-group-key": [(1, NULL, 1), (2, NULL, NULL)],
    "dense": [(1, 1, 1), (2, 2, 2), (3, 3, NULL), (4, 4, 4)],
}


def build_db(inner_rows) -> Database:
    db = Database()
    db.create_table(
        "outer_t",
        [Column("k", not_null=True), Column("a")],
        # NULL outer operand: NULL θ agg is UNKNOWN even when the
        # aggregate is defined — except nothing: COUNT never rescues it
        [(1, 1), (2, 2), (3, NULL), (4, 0)],
        primary_key="k",
    )
    db.create_table(
        "inner_t",
        [Column("k", not_null=True), Column("a")],
        inner_rows,
        primary_key="k",
    )
    return db


def build_correlated_db(inner_rows) -> Database:
    db = Database()
    db.create_table(
        "outer_t",
        [Column("k", not_null=True), Column("a")],
        [(1, 1), (2, 2), (3, NULL), (4, 0)],
        primary_key="k",
    )
    db.create_table(
        "inner_t",
        [Column("k", not_null=True), Column("g"), Column("a")],
        inner_rows,
        primary_key="k",
    )
    return db


@pytest.mark.parametrize("shape", sorted(INNER_SHAPES))
@pytest.mark.parametrize("predicate", sorted(PREDICATES))
def test_aggregate_link_matches_sqlite(shape, predicate):
    db = build_db(INNER_SHAPES[shape])
    sql = f"select k from outer_t where {PREDICATES[predicate]}"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, f"{predicate} × {shape}:\n{report.describe()}"


@pytest.mark.parametrize("shape", sorted(CORRELATED_SHAPES))
@pytest.mark.parametrize("predicate", sorted(CORRELATED_PREDICATES))
def test_correlated_aggregate_link_matches_sqlite(shape, predicate):
    db = build_correlated_db(CORRELATED_SHAPES[shape])
    sql = f"select k from outer_t where {CORRELATED_PREDICATES[predicate]}"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, f"{predicate} × {shape}:\n{report.describe()}"


def test_null_only_group_aggregates_to_null():
    """MAX over a non-empty but NULL-only set is NULL — every comparison
    with it is UNKNOWN, so no outer row qualifies."""
    import repro

    db = build_db(INNER_SHAPES["null-only"])
    sql = "select k from outer_t where outer_t.a = (select max(a) from inner_t)"
    for strategy in STRATEGIES:
        assert repro.connect(db).execute(sql, strategy=strategy).rows == [], strategy


def test_count_of_column_skips_nulls():
    """count(a) over the NULL-only set is 0 while count(*) is 2 — the
    matrix's sharpest cell, pinned explicitly."""
    import repro

    db = build_db(INNER_SHAPES["null-only"])
    zero = "select k from outer_t where outer_t.a = (select count(a) from inner_t)"
    two = "select k from outer_t where outer_t.a = (select count(*) from inner_t)"
    for strategy in STRATEGIES:
        assert sorted(repro.connect(db).execute(zero, strategy=strategy).rows) == [(4,)]
        assert sorted(repro.connect(db).execute(two, strategy=strategy).rows) == [(2,)]
