"""The external oracle wired through the fuzz pipeline.

The self-test mirror of the internal ``--inject-bug`` flow: a
deliberately lying engine adapter is registered, the runner must catch
the divergence as an ``external-divergence`` failure, ddmin must shrink
it, and the corpus writer must freeze a module whose second test
replays the case through the real engine.
"""

from __future__ import annotations

import pytest

from repro.fuzz import (
    DifferentialRunner,
    FuzzConfig,
    run_fuzz,
)
from repro.fuzz.shrink import INTERESTING_KINDS, shrink_case
from repro.oracle import ADAPTER_FACTORIES
from repro.oracle.sqlite_adapter import SqliteAdapter


class LyingSqliteAdapter(SqliteAdapter):
    """SQLite, except the first result row of every query is dropped."""

    name = "lying-sqlite"

    def execute_sql(self, sql):
        rows = super().execute_sql(sql)
        return rows[1:]


@pytest.fixture
def lying_engine():
    ADAPTER_FACTORIES["lying-sqlite"] = LyingSqliteAdapter
    try:
        yield "lying-sqlite"
    finally:
        del ADAPTER_FACTORIES["lying-sqlite"]


def test_external_kinds_are_interesting_to_the_shrinker():
    assert "external-divergence" in INTERESTING_KINDS
    assert "external-error" in INTERESTING_KINDS


def test_runner_counts_external_checks():
    runner = DifferentialRunner(
        strategies=("nested-relational",), oracle="sqlite"
    )
    report = runner.run(FuzzConfig(iterations=20, seed=5))
    assert report.ok, report.failures and report.failures[0].describe()
    assert report.external_checks == 20
    assert "external oracle check(s)" in report.summary()


def test_internal_mode_skips_external_checks():
    runner = DifferentialRunner(
        strategies=("nested-relational",), oracle="internal"
    )
    assert runner.oracle is None
    report = runner.run(FuzzConfig(iterations=5, seed=5))
    assert report.external_checks == 0


def test_lying_engine_is_caught_and_shrunk(lying_engine):
    runner = DifferentialRunner(
        strategies=("nested-relational",), oracle=lying_engine
    )
    report = runner.run(FuzzConfig(iterations=50, seed=5))
    assert not report.ok
    failure = report.failures[0]
    assert failure.kind == "external-divergence"
    assert failure.strategy == f"oracle:{lying_engine}"
    assert "dialect SQL" in failure.detail

    case, shrunk = shrink_case(failure.case, runner.check_case)
    assert shrunk.kind == "external-divergence"
    assert case.db_spec.total_rows <= failure.case.db_spec.total_rows


def test_lying_engine_corpus_file_replays_external(lying_engine, tmp_path):
    runner = DifferentialRunner(
        strategies=("nested-relational",), oracle=lying_engine
    )
    outcome = run_fuzz(
        FuzzConfig(iterations=50, seed=5),
        runner=runner,
        corpus_dir=str(tmp_path),
    )
    assert not outcome.ok
    assert outcome.corpus_path is not None
    source = open(outcome.corpus_path).read()
    assert "test_agrees_with_external_oracle" in source
    assert f'engine = "{lying_engine}"' in source
    assert "external-divergence" in source  # provenance docstring

    # the frozen module is importable and its internal test still passes
    namespace: dict = {}
    exec(compile(source, outcome.corpus_path, "exec"), namespace)
    namespace["test_all_strategies_agree_with_oracle"]()
    # replaying through the lying engine reproduces the divergence
    with pytest.raises(AssertionError):
        namespace["test_agrees_with_external_oracle"]()


def test_attach_trace_text_handles_external_failure(lying_engine):
    runner = DifferentialRunner(
        strategies=("nested-relational",), oracle=lying_engine
    )
    report = runner.run(FuzzConfig(iterations=50, seed=5))
    failure = runner.attach_trace_text(report.failures[0])
    assert failure.trace_text is not None
    assert "oracle 'nested-iteration' trace" in failure.trace_text
    # no attempt to execute "oracle:lying-sqlite" as a strategy
    assert "strategy 'oracle:" not in failure.trace_text
