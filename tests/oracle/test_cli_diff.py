"""The ``repro diff`` verb and ``repro fuzz --oracle``."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDiff:
    def test_diff_agreement_exits_zero(self, capsys):
        code = main(
            [
                "diff",
                "select o_orderkey from orders where o_totalprice > 100000",
                "--tpch", "0.001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "vs sqlite: agree" in out

    def test_diff_multiple_strategies(self, capsys):
        code = main(
            [
                "diff",
                "select c_name from customer where exists (select o_orderkey "
                "from orders where o_custkey = c_custkey)",
                "--tpch", "0.001",
                "--strategies", "nested-iteration,nested-relational,auto",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("agree") == 3

    def test_diff_explain_prints_engine_plan(self, capsys):
        code = main(
            [
                "diff",
                "select p_partkey from part where p_size > 10",
                "--tpch", "0.001",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sqlite plan:" in out
        assert "SCAN" in out

    def test_diff_quantified_rewrite_roundtrips(self, capsys):
        code = main(
            [
                "diff",
                "select o_orderkey from orders where o_totalprice > all "
                "(select l_extendedprice from lineitem "
                "where l_orderkey = o_orderkey)",
                "--tpch", "0.001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "case when exists" in out  # the 3VL rewrite is visible

    def test_diff_limit_query_is_rejected(self, capsys):
        code = main(
            [
                "diff",
                "select p_partkey from part limit 3",
                "--tpch", "0.001",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_diff_file_input(self, tmp_path, capsys):
        query = tmp_path / "q.sql"
        query.write_text("select n_name from nation where n_regionkey = 0\n")
        code = main(["diff", "--file", str(query), "--tpch", "0.001"])
        assert code == 0
        assert "agree" in capsys.readouterr().out


class TestFuzzOracle:
    def test_fuzz_with_sqlite_oracle(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "25",
                "--seed", "11",
                "--oracle", "sqlite",
                "--corpus-dir", str(tmp_path),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "external oracle check(s)" in out

    def test_fuzz_internal_oracle_unchanged(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "10",
                "--seed", "11",
                "--corpus-dir", str(tmp_path),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "external oracle" not in out

    def test_fuzz_rejects_unknown_oracle(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--oracle", "postgres", "--iterations", "1"])
