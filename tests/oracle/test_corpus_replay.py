"""Every checked-in fuzz regression replayed through the SQLite oracle.

The corpus is the fuzzer's memory of every bug it ever caught; each
module already asserts internal agreement (all strategies vs the
tuple-iteration oracle).  This test grounds the same cases externally:
the module's database and SQL go through :func:`repro.oracle.cross_check`
against SQLite, and every strategy the module lists must agree — or hit
a registered known divergence, which is then asserted *as* expected.
"""

from __future__ import annotations

import glob
import importlib.util
import os

import pytest

from repro.oracle import cross_check, find_known

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "fuzz_corpus")

_MODULES = sorted(
    path
    for path in glob.glob(os.path.join(CORPUS_DIR, "test_fuzz_*.py"))
)


def _load(path: str):
    name = "corpus_replay_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_corpus_is_nonempty():
    assert _MODULES, f"no corpus modules under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", _MODULES, ids=[os.path.basename(p) for p in _MODULES]
)
def test_corpus_case_agrees_with_sqlite(path):
    module = _load(path)
    db = module.build_db()
    strategies = ["nested-iteration"] + [
        s for s in module.STRATEGIES if s != "nested-iteration"
    ]
    reports = cross_check(db, module.SQL, engine="sqlite", strategies=strategies)
    for report in reports:
        if report.ok:
            continue
        known = find_known(module.SQL, "sqlite")
        assert known is not None, (
            f"{os.path.basename(path)}: unregistered divergence\n"
            + report.describe()
        )
        # a registered divergence must actually *be* diverging — if the
        # engines start agreeing, the registry entry has gone stale
        assert report.known is not None and report.known.key == known.key
