"""Adapter protocol, dialect rendering, bag diffing, known-divergence
registry — the repro.oracle building blocks."""

from __future__ import annotations

import datetime

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.errors import (
    OracleDivergenceError,
    OracleError,
    OracleUnavailableError,
    OracleUnsupportedError,
)
from repro.oracle import (
    InternalAdapter,
    KnownDivergence,
    SQLITE,
    adapter_names,
    canonical_value,
    clear_registered,
    comparable,
    cross_check,
    diff_bags,
    engine_available,
    find_known,
    make_adapter,
    register_known_divergence,
    registry_report,
    render_for,
    verify_or_raise,
)
from repro.sql import parse


@pytest.fixture
def small_db() -> Database:
    db = Database()
    db.create_table(
        "t0",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [(1, 1, 2), (2, NULL, 0), (3, -1, NULL)],
        primary_key="k",
    )
    db.create_table(
        "t1",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [(1, 2, NULL), (2, NULL, 1)],
        primary_key="k",
    )
    return db


# ---------------------------------------------------------------------- #
# registry / availability
# ---------------------------------------------------------------------- #


def test_adapter_registry_names():
    assert adapter_names() == ["duckdb", "internal", "sqlite"]


def test_sqlite_always_available():
    assert engine_available("sqlite")
    assert engine_available("internal")


def test_unknown_engine_raises():
    with pytest.raises(OracleUnavailableError):
        make_adapter("postgres")
    assert not engine_available("postgres")


def test_duckdb_gated_not_crashing():
    # whichever way the container is built, the answer is a clean bool
    assert engine_available("duckdb") in (True, False)


# ---------------------------------------------------------------------- #
# the sqlite adapter
# ---------------------------------------------------------------------- #


def test_sqlite_adapter_roundtrips_values(small_db):
    with make_adapter("sqlite", small_db) as adapter:
        rows = adapter.execute_sql('select "a" from "t0" order by "k"')
        assert rows == [(1,), (None,), (-1,)]


def test_sqlite_adapter_execute_renders_dialect(small_db):
    stmt = parse("select a from t0 where a > 0")
    with make_adapter("sqlite", small_db) as adapter:
        rows, dialect_sql, seconds = adapter.execute(stmt)
    assert rows == [(1,)]
    assert '"t0"' in dialect_sql
    assert seconds >= 0


def test_sqlite_adapter_reload_replaces_tables(small_db):
    adapter = make_adapter("sqlite", small_db)
    adapter.load(small_db)  # idempotent: DROP + CREATE
    assert len(adapter.execute_sql('select * from "t0"')) == 3
    adapter.close()


def test_sqlite_adapter_rejects_bad_sql(small_db):
    with make_adapter("sqlite", small_db) as adapter:
        with pytest.raises(OracleError):
            adapter.execute_sql("select nonsense from nowhere")


def test_sqlite_explain_returns_plan(small_db):
    with make_adapter("sqlite", small_db) as adapter:
        plan = adapter.explain('select * from "t0"')
    assert "SCAN" in plan


def test_internal_adapter_matches_engine(small_db):
    with make_adapter("internal", small_db) as adapter:
        rows, _, _ = adapter.execute_text("select a from t0 where a > 0")
    assert rows == [(1,)]
    assert isinstance(adapter, InternalAdapter)


# ---------------------------------------------------------------------- #
# dialect rendering
# ---------------------------------------------------------------------- #


def test_dialect_quotes_identifiers():
    stmt = parse("select a from t0 where t0.a = 1")
    text = render_for(stmt, SQLITE)
    assert '"a"' in text and '"t0"."a"' in text


def test_dialect_integer_division_promoted(small_db):
    # our engine and DuckDB use true division; sqlite must agree
    reports = cross_check(
        small_db, "select k from t0 where (k / 2) > 0.9",
        strategies=("nested-iteration",),
    )
    assert reports[0].ok, reports[0].describe()
    assert "* 1.0" in reports[0].dialect_sql


def test_dialect_quantified_rewrite_is_3vl(small_db):
    stmt = parse("select k from t0 where a > some (select a from t1)")
    text = render_for(stmt, SQLITE)
    assert "case when exists" in text
    assert "is null" in text


def test_comparable_rejects_bare_limit():
    with pytest.raises(OracleUnsupportedError):
        comparable(parse("select a from t0 limit 3"))


# ---------------------------------------------------------------------- #
# canonicalization and bag diffing
# ---------------------------------------------------------------------- #


def test_canonical_value_unifies_null_markers():
    assert canonical_value(None) == canonical_value(NULL)


def test_canonical_value_unifies_numerics():
    assert canonical_value(1) == canonical_value(1.0) == canonical_value(True)
    assert canonical_value(0.1) != canonical_value(0.2)


def test_canonical_value_dates_as_iso_text():
    day = datetime.date(1995, 3, 14)
    assert canonical_value(day) == canonical_value("1995-03-14")


def test_diff_bags_agreement_is_none():
    assert diff_bags([(1, NULL)], [(1.0, None)]) is None


def test_diff_bags_respects_multiplicity():
    diff = diff_bags([(1,), (1,)], [(1,)])
    assert diff is not None
    assert diff.ours_multiplicity == 2
    assert diff.theirs_multiplicity == 1
    assert diff.extra == 1 and diff.missing == 0
    assert "x2" in diff.describe()


def test_diff_bags_order_insensitive():
    assert diff_bags([(1,), (2,)], [(2,), (1,)]) is None


# ---------------------------------------------------------------------- #
# cross_check / verify_or_raise
# ---------------------------------------------------------------------- #


def test_cross_check_multiple_strategies(small_db):
    reports = cross_check(
        small_db,
        "select k from t0 where exists (select k from t1 where t1.a = t0.a)",
        strategies=("nested-iteration", "nested-relational", "auto"),
    )
    assert len(reports) == 3
    assert all(r.ok for r in reports)
    verify_or_raise(reports)  # no-op on agreement


def test_cross_check_labels_backend_and_threads(small_db):
    (report,) = cross_check(
        small_db,
        "select k from t0 where a is not null",
        strategies=("nested-relational-vectorized",),
        backend="vector",
    )
    assert report.strategy == "nested-relational-vectorized@vector"
    assert report.ok


def test_verify_or_raise_carries_comparison(small_db):
    reports = cross_check(
        small_db, "select a from t0", strategies=("nested-iteration",)
    )
    # forge a divergence: claim sqlite saw one extra row
    report = reports[0]
    forged = diff_bags([(1,)], [(1,), (2,)])
    report.diff = forged
    with pytest.raises(OracleDivergenceError) as info:
        verify_or_raise([report])
    assert info.value.comparison is report


# ---------------------------------------------------------------------- #
# known-divergence registry
# ---------------------------------------------------------------------- #


def test_builtin_limit_divergence_matches():
    stmt = parse("select a from t0 limit 2")
    known = find_known("select a from t0 limit 2", "sqlite", stmt)
    assert known is not None and known.key == "limit-without-total-order"


def test_registered_divergence_by_digest():
    sql = "select a from t0 where a = 42"
    try:
        register_known_divergence(
            KnownDivergence(
                key="test-entry",
                engines=("sqlite",),
                reason="synthetic registry test",
                sql_digest=repro.oracle.sql_digest(sql),
            )
        )
        assert find_known(sql, "sqlite").key == "test-entry"
        # engine scoping: a duckdb lookup must not match
        assert find_known(sql, "duckdb") is None
        assert "test-entry" in registry_report()
    finally:
        clear_registered()
    assert find_known(sql, "sqlite") is None
