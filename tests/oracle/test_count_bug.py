"""The COUNT bug, pinned against SQLite.

Kim's aggregate-rewrite of a correlated ``COUNT(*)`` subquery joins the
outer and inner relations before aggregating — which silently drops
outer tuples whose inner group is *empty*, exactly the tuples a
``count(*) = 0`` predicate exists to select.  The nested-relational
approach never leaves the outer tuple, so the zero-count groups survive
by construction.  Every test here runs the row, vectorized and parallel
evaluation strategies and diffs each against SQLite's answer for the
same data.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine import Column, Database, NULL
from repro.oracle import cross_check

STRATEGIES = (
    "nested-relational",
    "nested-relational-vectorized",
    "nested-relational-parallel",
)


def build_db(emp_rows) -> Database:
    """Departments with and without employees; dept 30 has none."""
    db = Database()
    db.create_table(
        "dept",
        [Column("k", not_null=True), Column("budget")],
        [(10, 2), (20, 0), (30, 0), (40, NULL)],
        primary_key="k",
    )
    db.create_table(
        "emp",
        [Column("k", not_null=True), Column("dept"), Column("salary")],
        emp_rows,
        primary_key="k",
    )
    return db


#: employee shapes: name -> rows of emp(k, dept, salary)
EMP_SHAPES = {
    # dept 30 and 40 have zero employees — the COUNT-bug rows
    "some-empty-groups": [(1, 10, 5), (2, 10, 7), (3, 20, NULL)],
    # every department's group is empty
    "all-empty": [],
    # a NULL grouping key never matches any department
    "null-dept-only": [(1, NULL, 5), (2, NULL, NULL)],
    "mixed": [(1, 10, 5), (2, NULL, 7), (3, 20, NULL), (4, 20, 3)],
}

#: correlated-aggregate predicates over the department's employee group
PREDICATES = {
    "count-eq-zero": (
        "(select count(*) from emp e where e.dept = d.k) = 0"
    ),
    "zero-eq-count": (
        "0 = (select count(*) from emp e where e.dept = d.k)"
    ),
    "count-eq-budget": (
        "d.budget = (select count(*) from emp e where e.dept = d.k)"
    ),
    "count-ge-one": (
        "(select count(*) from emp e where e.dept = d.k) >= 1"
    ),
    # count(salary) skips NULLs, count(*) does not — dept 20's group
    # in "some-empty-groups" distinguishes the two
    "count-col-eq-zero": (
        "(select count(e.salary) from emp e where e.dept = d.k) = 0"
    ),
}


@pytest.mark.parametrize("shape", sorted(EMP_SHAPES))
@pytest.mark.parametrize("predicate", sorted(PREDICATES))
def test_correlated_count_matches_sqlite(shape, predicate):
    db = build_db(EMP_SHAPES[shape])
    sql = f"select d.k from dept d where {PREDICATES[predicate]}"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, f"{predicate} × {shape}:\n{report.describe()}"


def test_zero_count_departments_survive():
    """The headline case: departments with no employees are exactly the
    ones ``count(*) = 0`` must return."""
    db = build_db(EMP_SHAPES["some-empty-groups"])
    sql = (
        "select d.k from dept d "
        "where (select count(*) from emp e where e.dept = d.k) = 0"
    )
    for strategy in STRATEGIES:
        result = repro.connect(db).execute(sql, strategy=strategy)
        assert sorted(result.rows) == [(30,), (40,)], strategy
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, report.describe()


def test_count_bug_shape_under_every_strategy():
    """Every *always-applicable* strategy — not just the three backends —
    agrees on the COUNT-bug shape."""
    from repro.fuzz import ALWAYS_STRATEGIES, ORACLE

    db = build_db(EMP_SHAPES["mixed"])
    sql = (
        "select d.k from dept d "
        "where d.budget = (select count(*) from emp e where e.dept = d.k)"
    )
    session = repro.connect(db)
    oracle = session.execute(sql, strategy=ORACLE).sorted()
    for strategy in ALWAYS_STRATEGIES:
        result = session.execute(sql, strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"


@pytest.mark.parametrize("shape", sorted(EMP_SHAPES))
def test_having_count_with_empty_groups(shape):
    """``HAVING count(*)`` filters *existing* groups — a department with
    no employees contributes no group at all, the dual of the COUNT-bug
    row surviving a scalar ``= 0`` comparison."""
    db = build_db(EMP_SHAPES[shape])
    sql = (
        "select d.k from dept d where d.k in "
        "(select e.dept from emp e group by e.dept having count(*) >= 1)"
    )
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, f"having × {shape}:\n{report.describe()}"
    if shape == "all-empty":
        result = repro.connect(db).execute(sql)
        assert result.rows == []


def test_having_count_zero_is_unsatisfiable():
    """``GROUP BY ... HAVING count(*) = 0`` can never hold: a group only
    exists because at least one row landed in it."""
    db = build_db(EMP_SHAPES["mixed"])
    sql = (
        "select d.k from dept d where d.k in "
        "(select e.dept from emp e group by e.dept having count(*) = 0)"
    )
    for strategy in STRATEGIES:
        assert repro.connect(db).execute(sql, strategy=strategy).rows == [], strategy
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, report.describe()


def test_uncorrelated_count_over_empty_table():
    """``(SELECT count(*) FROM empty)`` is 0, not NULL — the scalar
    subquery must not collapse to the empty-set NULL convention."""
    db = build_db(EMP_SHAPES["all-empty"])
    sql = "select d.k from dept d where (select count(*) from emp e) = 0"
    for strategy in STRATEGIES:
        result = repro.connect(db).execute(sql, strategy=strategy)
        assert len(result) == 4, strategy
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, report.describe()
