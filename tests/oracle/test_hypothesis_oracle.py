"""Property: on NULL-free data, every applicable strategy agrees with
SQLite on generated subquery queries.

NULL-free data removes the one axis where textbook presentations and
engines have historically disagreed, so agreement here must be *exact*
— any divergence is a genuine unparser/dialect/strategy bug, never a
semantics judgement call.  Hypothesis drives the fuzzer's own seeded
generator (seed in, deterministic case out), so every found failure is
replayable as ``repro fuzz --seed N``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine.types import is_null  # noqa: E402
from repro.fuzz import FuzzConfig, generate_case  # noqa: E402
from repro.fuzz.corpus import applicable_strategies  # noqa: E402
from repro.fuzz.datagen import DatabaseSpec  # noqa: E402
from repro.oracle import cross_check  # noqa: E402


def _null_free(spec: DatabaseSpec) -> DatabaseSpec:
    """Replace residual NULLs with 0: the generator's NULL-only-table
    bias fires even at null_rate=0, and this property is about the
    NULL-free regime specifically."""
    out = spec
    for table in spec.tables:
        if any(is_null(v) for row in table.rows for v in row):
            rows = [
                tuple(0 if is_null(v) else v for v in row)
                for row in table.rows
            ]
            out = out.with_rows(table.name, rows)
    return out


@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_null_free_cases_agree_with_sqlite(seed):
    config = FuzzConfig(iterations=1, seed=seed, null_rate=0.0)
    case = generate_case(config, 0)
    case = type(case)(
        stmt=case.stmt,
        db_spec=_null_free(case.db_spec),
        seed=case.seed,
        iteration=case.iteration,
    )
    db = case.db_spec.build()
    strategies = ["nested-iteration"] + applicable_strategies(case)
    reports = cross_check(db, case.sql, engine="sqlite", strategies=strategies)
    for report in reports:
        assert report.ok, f"seed={seed}\n{report.describe()}"
