"""External differential oracle tests (repro.oracle)."""
