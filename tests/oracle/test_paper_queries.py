"""Acceptance gate: the six paper queries (Figures 4-9) agree with
SQLite for every always-applicable strategy, on row and vector backends.

This is the PR's headline claim made executable: the strategies the
paper proposes produce exactly the rows a real SQL engine produces on
the paper's own workload.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import ALWAYS_STRATEGIES
from repro.oracle import (
    cross_check,
    external_baseline,
    make_adapter,
    paper_query_suite,
    write_oracle_artifact,
)

SF_STRATEGIES = ("nested-iteration",) + tuple(ALWAYS_STRATEGIES)


@pytest.fixture(scope="module")
def suite(tiny_tpch):
    return paper_query_suite(tiny_tpch)


@pytest.fixture(scope="module")
def sqlite_db(tiny_tpch):
    with make_adapter("sqlite", tiny_tpch) as adapter:
        yield adapter


def test_suite_covers_all_six_figures(suite):
    assert [name for name, _ in suite] == [
        "fig4_q1", "fig5_q2a", "fig6_q2b", "fig7_q3a", "fig8_q3b", "fig9_q3c",
    ]


@pytest.mark.parametrize("index", range(6))
def test_paper_query_agrees_for_every_strategy(tiny_tpch, suite, sqlite_db, index):
    name, sql = suite[index]
    reports = cross_check(
        tiny_tpch, sql, engine="sqlite",
        strategies=SF_STRATEGIES, adapter=sqlite_db,
    )
    for report in reports:
        assert report.acceptable, f"{name}:\n{report.describe()}"
        assert report.ok, f"{name}: unexpected registered divergence"


def test_paper_query_vector_backend_agrees(tiny_tpch, suite, sqlite_db):
    name, sql = suite[0]
    (report,) = cross_check(
        tiny_tpch, sql, engine="sqlite",
        strategies=("nested-relational-vectorized",),
        backend="vector", adapter=sqlite_db,
    )
    assert report.ok, f"{name}:\n{report.describe()}"


def test_external_baseline_artifact(tiny_tpch, tmp_path):
    artifact = external_baseline(tiny_tpch, engine="sqlite", sf=0.002)
    assert artifact["kind"] == "oracle-baseline"
    assert artifact["engine_version"]
    assert len(artifact["queries"]) == 6
    assert all(q["agree"] for q in artifact["queries"])
    assert all(q["engine_plan"] for q in artifact["queries"])
    path = write_oracle_artifact(artifact, str(tmp_path))
    assert path.endswith("BENCH_oracle_sqlite.json")
    with open(path) as handle:
        assert json.load(handle)["schema_version"] == 1


def test_paper_query_nulls_injected_agrees(tiny_tpch_nulls):
    """The NULL-injected variant — where classical rewrites break — must
    still match SQLite for the paper's strategies."""
    suite = paper_query_suite(tiny_tpch_nulls)
    with make_adapter("sqlite", tiny_tpch_nulls) as adapter:
        for name, sql in suite:
            reports = cross_check(
                tiny_tpch_nulls, sql, engine="sqlite",
                strategies=("nested-iteration", "nested-relational", "auto"),
                adapter=adapter,
            )
            for report in reports:
                assert report.ok, f"{name}:\n{report.describe()}"
