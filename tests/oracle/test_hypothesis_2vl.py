"""Property: on NULL-free data, 2VL == 3VL == SQLite for every
registered strategy; with NULLs the two logics diverge only in the
catalogued ways.

Libkin's central claim ("Handling SQL Nulls with Two-Valued Logic") is
that two-valued evaluation — every comparison with NULL is plain FALSE
— computes *exactly* the same answers as Kleene 3VL whenever the data
is NULL-free.  Hypothesis drives the fuzzer's seeded generator (now
covering aggregate links, GROUP BY/HAVING blocks and disjunctive
linking predicates), runs every applicable strategy under both logic
modes, and requires byte-equal results plus SQLite agreement.

On NULL-*bearing* data the modes genuinely differ (``NOT (x = y)``
with NULL x is TRUE under 2VL, ...); such divergences are expected and
documented in the known-divergence registry rather than asserted away.

One subtlety: a NULL-free *database* does not guarantee a NULL-free
*evaluation*.  ``sum``/``avg``/``min``/``max`` over an empty group
evaluate to NULL (``count`` yields 0), so a scalar-aggregate link
whose correlated subquery matches nothing manufactures a NULL out of
thin air — and ``NOT (NULL >= x)`` then legitimately diverges (3VL
drops the row, 2VL keeps it).  Libkin's equivalence is about NULL-free
evaluations, so the property below skips those shapes; the divergence
itself is demonstrated deterministically further down.
"""

from __future__ import annotations

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings, strategies as st  # noqa: E402

import repro  # noqa: E402
from repro.engine import NULL, Column, Database  # noqa: E402
from repro.engine.logic import logic_mode  # noqa: E402
from repro.engine.types import is_null  # noqa: E402
from repro.fuzz import FuzzConfig, generate_case  # noqa: E402
from repro.fuzz.corpus import applicable_strategies  # noqa: E402
from repro.fuzz.datagen import DatabaseSpec  # noqa: E402
from repro.oracle import cross_check  # noqa: E402
from repro.sql import ast as A  # noqa: E402
from repro.oracle.known import (  # noqa: E402
    KnownDivergence,
    clear_registered,
    find_known,
    register_known_divergence,
)


def _null_free(spec: DatabaseSpec) -> DatabaseSpec:
    """Replace residual NULLs with 0 (the generator's NULL-only-table
    bias fires even at null_rate=0)."""
    out = spec
    for table in spec.tables:
        if any(is_null(v) for row in table.rows for v in row):
            rows = [
                tuple(0 if is_null(v) else v for v in row)
                for row in table.rows
            ]
            out = out.with_rows(table.name, rows)
    return out


def _has_null_making_aggregate(node) -> bool:
    """True if the statement contains ``sum``/``avg``/``min``/``max`` —
    the aggregates that evaluate to NULL over an empty group, breaking
    the NULL-free-evaluation premise (``count`` safely yields 0)."""
    if isinstance(node, A.AggregateCall):
        return node.func != "count"
    if dataclasses.is_dataclass(node):
        return any(
            _has_null_making_aggregate(getattr(node, field.name))
            for field in dataclasses.fields(node)
        )
    if isinstance(node, (tuple, list)):
        return any(_has_null_making_aggregate(item) for item in node)
    return False


@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_null_free_2vl_equals_3vl_equals_sqlite(seed):
    config = FuzzConfig(iterations=1, seed=seed, null_rate=0.0, logic="2vl")
    case = generate_case(config, 0)
    # an empty-group sum/avg/min/max manufactures a NULL even on
    # NULL-free data (seed=121 found one), and the logics then diverge
    # by design — see test_empty_group_aggregate_null_diverges below
    assume(not _has_null_making_aggregate(case.stmt))
    case = type(case)(
        stmt=case.stmt,
        db_spec=_null_free(case.db_spec),
        seed=case.seed,
        iteration=case.iteration,
    )
    db = case.db_spec.build()
    strategies = ["nested-iteration"] + applicable_strategies(case)
    query = repro.compile_sql(case.sql, db)
    for strategy in strategies:
        with logic_mode("3vl"):
            three = repro.execute(query, db, strategy=strategy).sorted()
        with logic_mode("2vl"):
            two = repro.execute(query, db, strategy=strategy).sorted()
        assert two == three, (
            f"seed={seed} strategy={strategy}: 2VL and 3VL disagree on "
            f"NULL-free data\n  {case.sql}"
        )
    # ... and both equal SQLite's 3VL answer
    reports = cross_check(db, case.sql, engine="sqlite", strategies=strategies)
    for report in reports:
        assert report.ok, f"seed={seed}\n{report.describe()}"


def test_empty_group_aggregate_null_diverges():
    """The shape the property above must exclude, pinned concretely
    (distilled from fuzz seed=121): on a NULL-free database, a
    correlated ``avg`` whose group is empty evaluates to NULL, and
    ``NOT (NULL >= x)`` keeps the row under 2VL while 3VL drops it."""
    db = Database()
    db.create_table(
        "t",
        [Column("k", not_null=True), Column("a")],
        [(1, 1), (2, 2), (3, 99)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("a")],
        [(1, 5)],
        primary_key="k",
    )
    sql = (
        "select k from t "
        "where not (select avg(s.a) from s where s.a > t.a) >= t.a"
    )
    query = repro.compile_sql(sql, db)
    with logic_mode("3vl"):
        three = repro.execute(query, db, strategy="nested-relational")
    with logic_mode("2vl"):
        two = repro.execute(query, db, strategy="nested-relational")
    # rows k=1,2: avg({5}) = 5 >= a is TRUE, NOT drops them either way.
    # row k=3: the group {s.a > 99} is empty -> avg is NULL despite the
    # NULL-free data; 3VL's NOT(UNKNOWN) drops it, 2VL's NOT(FALSE)
    # keeps it.
    assert sorted(three.rows) == []
    assert sorted(two.rows) == [(3,)]
    # and the property's guard recognizes the original fuzz shape
    config = FuzzConfig(iterations=1, seed=121, null_rate=0.0, logic="2vl")
    case = generate_case(config, 0)
    assert _has_null_making_aggregate(case.stmt)


def _build_null_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [Column("k", not_null=True), Column("a")],
        [(1, 1), (2, NULL), (3, 3)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("a")],
        [(1, 1), (2, NULL)],
        primary_key="k",
    )
    return db


def test_null_bearing_divergence_is_catalogued():
    """A concrete NULL-bearing 2VL/3VL divergence, demonstrated and then
    registered as a known divergence so external-oracle comparisons of
    2VL results never flake over it.

    ``NOT (NULL IN {1})``: 3VL calls the membership UNKNOWN, negation
    preserves UNKNOWN, and the row drops; 2VL calls ``NULL = 1`` plain
    FALSE, classical negation makes it TRUE, and the row survives.
    (Atomic ``NOT IN`` does *not* diverge — the NULL operand fails its
    ``<>`` comparison in both logics and FALSE and UNKNOWN drop alike.)
    """
    db = _build_null_db()
    sql = (
        "select k from t "
        "where not (t.a in (select a from s where a is not null))"
    )
    query = repro.compile_sql(sql, db)
    with logic_mode("3vl"):
        three = repro.execute(query, db, strategy="nested-relational")
    with logic_mode("2vl"):
        two = repro.execute(query, db, strategy="nested-relational")
    # 3VL: row k=2 has NULL a -> NOT UNKNOWN is UNKNOWN -> dropped.
    # 2VL: NULL = 1 is FALSE -> NOT FALSE is TRUE -> kept.
    assert sorted(three.rows) == [(3,)]
    assert sorted(two.rows) == [(2,), (3,)]

    entry = register_known_divergence(
        KnownDivergence(
            key="2vl-negated-null-membership",
            engines=("*",),
            reason=(
                "under two-valued logic a NULL operand makes the "
                "membership atom FALSE, so an explicit NOT over it "
                "becomes TRUE where 3VL engines report UNKNOWN"
            ),
            matches=lambda stmt, engine: True,
        )
    )
    try:
        assert find_known(sql, "sqlite") is entry
    finally:
        clear_registered()


def test_2vl_session_flag_round_trip():
    """The same divergence through the public Session API: connect's
    ``logic=`` flag governs every execution in the session (and
    overrides any ambient :func:`logic_mode`)."""
    db = _build_null_db()
    sql = (
        "select k from t "
        "where not (t.a in (select a from s where a is not null))"
    )
    three = repro.connect(db).execute(sql)
    two = repro.connect(db, logic="2vl").execute(sql)
    assert sorted(three.rows) == [(3,)]
    assert sorted(two.rows) == [(2,), (3,)]
