"""Acceptance gate: aggregate & scalar-subquery example queries agree
with SQLite for every always-applicable strategy.

The aggregate companion to ``test_paper_queries.py``: eight TPC-H
flavored queries exercising the shapes the paper's Section 2 taxonomy
calls *aggregate subqueries* — uncorrelated and correlated MAX/AVG/SUM,
the Q22-style zero-count predicate, grouped subqueries behind IN,
disjunctive aggregate links, and a grouped root — each executed by the
tuple-iteration oracle plus every always-applicable strategy and diffed
against SQLite.
"""

from __future__ import annotations

import pytest

from repro.fuzz import ALWAYS_STRATEGIES
from repro.oracle import cross_check, make_adapter

SF_STRATEGIES = ("nested-iteration",) + tuple(ALWAYS_STRATEGIES)

#: name -> aggregate/scalar-subquery example query over TPC-H
EXAMPLE_QUERIES = {
    # uncorrelated MAX, the simplest scalar link
    "richest-supplier": (
        "select s.s_suppkey from supplier s "
        "where s.s_acctbal = (select max(s2.s_acctbal) from supplier s2)"
    ),
    # COUNT-bug shape: nations with *no* suppliers must survive
    "supplierless-nations": (
        "select n.n_nationkey from nation n "
        "where (select count(*) from supplier s "
        "where s.s_nationkey = n.n_nationkey) = 0"
    ),
    # Q17 flavor: correlated AVG over the part's own offers
    "above-average-price": (
        "select p.p_partkey from part p "
        "where p.p_retailprice > (select avg(ps.ps_supplycost) "
        "from partsupp ps where ps.ps_partkey = p.p_partkey)"
    ),
    # Q22 flavor: constant on the left, count(col) skipping nothing
    "customers-without-orders": (
        "select c.c_custkey from customer c "
        "where 0 = (select count(o.o_orderkey) from orders o "
        "where o.o_custkey = c.c_custkey)"
    ),
    # correlated SUM with an inequality theta
    "acctbal-covers-supply": (
        "select s.s_suppkey from supplier s "
        "where s.s_acctbal >= (select sum(ps.ps_supplycost) "
        "from partsupp ps where ps.ps_suppkey = s.s_suppkey)"
    ),
    # grouped subquery behind IN: nations popular with customers
    "customers-in-popular-nations": (
        "select c.c_custkey from customer c "
        "where c.c_nationkey in (select c2.c_nationkey from customer c2 "
        "group by c2.c_nationkey having count(*) >= 20)"
    ),
    # disjunctive aggregate link: region 0 or supplierless
    "region-zero-or-supplierless": (
        "select n.n_nationkey from nation n "
        "where n.n_regionkey = 0 or (select count(*) from supplier s "
        "where s.s_nationkey = n.n_nationkey) = 0"
    ),
    # grouped root with HAVING
    "crowded-regions": (
        "select n.n_regionkey, count(*) from nation n "
        "group by n.n_regionkey having count(*) > 4"
    ),
}


@pytest.fixture(scope="module")
def sqlite_db(tiny_tpch):
    with make_adapter("sqlite", tiny_tpch) as adapter:
        yield adapter


def test_at_least_six_examples():
    assert len(EXAMPLE_QUERIES) >= 6


@pytest.mark.parametrize("name", sorted(EXAMPLE_QUERIES))
def test_aggregate_example_agrees_for_every_strategy(
    tiny_tpch, sqlite_db, name
):
    reports = cross_check(
        tiny_tpch,
        EXAMPLE_QUERIES[name],
        engine="sqlite",
        strategies=SF_STRATEGIES,
        adapter=sqlite_db,
    )
    for report in reports:
        assert report.ok, f"{name}:\n{report.describe()}"
