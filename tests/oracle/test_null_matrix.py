"""NULL-semantics matrix: every linking operator × pathological inner
relation shapes, cross-checked against SQLite.

The corners classical unnesting gets wrong — and the exact 3VL behavior
the paper's linking predicates must reproduce — all hinge on how the
inner relation's NULLs flow through IN / NOT IN / θ SOME / θ ALL /
EXISTS / NOT EXISTS.  Each cell of the matrix runs the row,
vectorized and parallel evaluation strategies and diffs every one
against SQLite's answer for the same data.
"""

from __future__ import annotations

import pytest

from repro.engine import Column, Database, NULL
from repro.oracle import cross_check

STRATEGIES = (
    "nested-relational",
    "nested-relational-vectorized",
    "nested-relational-parallel",
)

#: inner-relation shapes: name -> rows of inner(k, a)
INNER_SHAPES = {
    "empty": [],
    "null-only": [(1, NULL), (2, NULL)],
    "mixed": [(1, 1), (2, NULL), (3, 3)],
    "no-nulls": [(1, 1), (2, 2)],
}

#: the six linking operators over outer.a vs inner.a
PREDICATES = {
    "in": "outer_t.a in (select a from inner_t)",
    "not-in": "outer_t.a not in (select a from inner_t)",
    "eq-some": "outer_t.a = some (select a from inner_t)",
    "neq-all": "outer_t.a <> all (select a from inner_t)",
    "gt-all": "outer_t.a > all (select a from inner_t)",
    "lt-some": "outer_t.a < some (select a from inner_t)",
    "exists": "exists (select a from inner_t where inner_t.a = outer_t.a)",
    "not-exists": "not exists (select a from inner_t where inner_t.a = outer_t.a)",
}


def build_db(inner_rows) -> Database:
    db = Database()
    db.create_table(
        "outer_t",
        [Column("k", not_null=True), Column("a")],
        # a NULL outer operand is its own corner: NULL IN (...) is never
        # TRUE, and NULL θ ALL (empty) is still vacuously TRUE
        [(1, 1), (2, 2), (3, NULL), (4, 99)],
        primary_key="k",
    )
    db.create_table(
        "inner_t",
        [Column("k", not_null=True), Column("a")],
        inner_rows,
        primary_key="k",
    )
    return db


@pytest.mark.parametrize("shape", sorted(INNER_SHAPES))
@pytest.mark.parametrize("operator", sorted(PREDICATES))
def test_linking_operator_matches_sqlite(shape, operator):
    db = build_db(INNER_SHAPES[shape])
    sql = f"select k from outer_t where {PREDICATES[operator]}"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok, f"{operator} × {shape}:\n{report.describe()}"


def test_vacuous_all_is_true_everywhere():
    """x θ ALL (empty) is TRUE for every x, including NULL x — the
    classical COUNT-bug corner, pinned against SQLite explicitly."""
    db = build_db(INNER_SHAPES["empty"])
    sql = "select k from outer_t where outer_t.a > all (select a from inner_t)"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok and report.ours_rows == 4, report.describe()


def test_not_in_null_inner_filters_everything():
    """x NOT IN (..., NULL, ...) is never TRUE — both engines must
    return the empty relation."""
    db = build_db(INNER_SHAPES["null-only"])
    sql = "select k from outer_t where outer_t.a not in (select a from inner_t)"
    reports = cross_check(db, sql, engine="sqlite", strategies=STRATEGIES)
    for report in reports:
        assert report.ok and report.ours_rows == 0, report.describe()
