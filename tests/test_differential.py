"""Integration tests: every strategy against the tuple-iteration oracle
on the paper's TPC-H workloads, with and without NULLs.

This is the repository's strongest correctness statement: the nested
relational approach (all variants) and the System A emulation agree with
direct SQL semantics on every paper query, on data containing NULLs.
"""

import pytest

import repro
from repro.baselines import BooleanAggregateStrategy, CountRewriteStrategy
from repro.tpch import query1, query2, query3

LINEAR_STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "nested-relational-bottomup",
    "nested-relational-vectorized",
    "system-a-native",
    "auto",
]

TREE_CORRELATED_STRATEGIES = [
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-optimized",
    "nested-relational-vectorized",
    "system-a-native",
    "auto",
]


def assert_all_agree(db, sql, strategies):
    prepared = repro.connect(db).prepare(sql)
    oracle = prepared.execute(strategy="nested-iteration").sorted()
    for strategy in strategies:
        result = prepared.execute(strategy=strategy).sorted()
        assert result == oracle, f"{strategy} disagrees with the oracle"
    return oracle


class TestQuery1:
    @pytest.mark.parametrize("window", [("1992-01-01", "1992-09-01"),
                                        ("1993-01-01", "1994-06-01")])
    def test_clean_data(self, tiny_tpch, window):
        assert_all_agree(tiny_tpch, query1(*window), LINEAR_STRATEGIES)

    def test_null_data(self, tiny_tpch_nulls):
        out = assert_all_agree(
            tiny_tpch_nulls, query1("1992-01-01", "1995-01-01"), LINEAR_STRATEGIES
        )
        assert len(out) > 0  # non-trivial workload

    def test_not_null_constraint_data(self, tiny_tpch_not_null):
        assert_all_agree(
            tiny_tpch_not_null, query1("1992-01-01", "1995-01-01"),
            LINEAR_STRATEGIES + ["classical-unnesting"],
        )


class TestQuery2:
    @pytest.mark.parametrize("quantifier", ["any", "all"])
    def test_clean_data(self, tiny_tpch, quantifier):
        assert_all_agree(
            tiny_tpch, query2(quantifier, 1, 30, 6000, 25), LINEAR_STRATEGIES
        )

    @pytest.mark.parametrize("quantifier", ["any", "all"])
    def test_null_data(self, tiny_tpch_nulls, quantifier):
        assert_all_agree(
            tiny_tpch_nulls, query2(quantifier, 1, 30, 6000, 25), LINEAR_STRATEGIES
        )

    def test_count_and_boolean_baselines(self, tiny_tpch_nulls):
        sql = query2("all", 1, 30, 6000, 25)
        prepared = repro.connect(tiny_tpch_nulls).prepare(sql)
        oracle = prepared.execute(strategy="nested-iteration")
        q = prepared.query
        assert CountRewriteStrategy().execute(q, tiny_tpch_nulls) == oracle
        assert BooleanAggregateStrategy().execute(q, tiny_tpch_nulls) == oracle


class TestQuery3:
    @pytest.mark.parametrize("variant", ["a", "b", "c"])
    @pytest.mark.parametrize(
        "quantifier,existential",
        [("all", "exists"), ("all", "not exists"), ("any", "exists")],
    )
    def test_clean_data(self, tiny_tpch, quantifier, existential, variant):
        assert_all_agree(
            tiny_tpch,
            query3(quantifier, existential, variant, 1, 30, 6000, 25),
            TREE_CORRELATED_STRATEGIES,
        )

    @pytest.mark.parametrize("variant", ["a", "b", "c"])
    def test_null_data_negative_ops(self, tiny_tpch_nulls, variant):
        assert_all_agree(
            tiny_tpch_nulls,
            query3("all", "not exists", variant, 1, 30, 6000, 25),
            TREE_CORRELATED_STRATEGIES,
        )


class TestResultShapes:
    def test_query1_result_columns(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        out = session.execute(query1("1992-01-01", "1995-01-01"))
        assert out.schema.names == ("orders.o_orderkey", "orders.o_orderpriority")

    def test_query2_result_columns(self, tiny_tpch):
        session = repro.connect(tiny_tpch)
        out = session.execute(query2("all", 1, 30, 6000, 25))
        assert out.schema.names == ("part.p_partkey", "part.p_name")
