"""Unit tests for the benchmark harness itself (small scale)."""

import math

import pytest

import repro
from repro.bench import (
    Experiment,
    block_sizes,
    default_db,
    intermediate_result_size,
    measure_strategy,
    run_point,
)
from repro.bench.harness import ProcessingProfile, processing_profile
from repro.tpch import query1, query2


@pytest.fixture(scope="module")
def db():
    return default_db(sf=0.001, seed=11)


class TestMeasurement:
    def test_measure_strategy(self, db):
        sql = query1("1992-01-01", "1995-01-01")
        query = repro.compile_sql(sql, db)
        m = measure_strategy(query, db, "nested-relational")
        assert m.seconds > 0
        assert m.result_rows >= 0
        assert m.metrics.get("rows_scanned", 0) > 0
        assert m.cost >= m.raw_cost  # weights only inflate

    def test_run_point_collects_all_strategies(self, db):
        sql = query1("1992-01-01", "1995-01-01")
        point = run_point(sql, db, ["nested-relational", "system-a-native"])
        assert set(point.measurements) == {
            "nested-relational",
            "system-a-native",
        }
        sizes = point.block_sizes
        assert len(sizes) == 2 and all(s >= 0 for s in sizes)

    def test_strategies_in_one_point_agree_on_cardinality(self, db):
        sql = query2("all", 1, 40, 9000, 25)
        point = run_point(
            sql,
            db,
            ["nested-relational", "nested-relational-optimized",
             "nested-relational-bottomup", "system-a-native"],
        )
        cards = {m.result_rows for m in point.measurements.values()}
        assert len(cards) == 1


class TestIntermediateResult:
    def test_ir_at_least_outer_block(self, db):
        sql = query1("1992-01-01", "1995-01-01")
        query = repro.compile_sql(sql, db)
        ir = intermediate_result_size(query, db)
        outer = block_sizes(query, db)[0]
        assert ir >= outer  # left outer join keeps every outer tuple

    def test_ir_for_flat_query(self, db):
        query = repro.compile_sql("select o_orderkey from orders", db)
        assert intermediate_result_size(query, db) == len(db.relation("orders"))

    def test_ir_for_tree_query(self, db):
        sql = """
        select p_partkey, p_name from part
        where exists (select * from partsupp where ps_partkey = p_partkey)
          and p_retailprice > all (select ps_supplycost from partsupp ps2
                                   where ps2.ps_partkey = p_partkey)
        """
        query = repro.compile_sql(sql, db)
        assert not query.is_linear
        assert intermediate_result_size(query, db) > 0


class TestExperimentFormatting:
    def test_format_table_metrics(self, db):
        exp = Experiment("X", "format test")
        sql = query1("1992-01-01", "1995-01-01")
        exp.points.append(run_point(sql, db, ["nested-relational"]))
        for metric in ("seconds", "cost", "rows"):
            text = exp.format_table(metric)
            assert "nested-relational" in text
            assert "X" in text

    def test_named_counter_column(self, db):
        exp = Experiment("X", "counter test")
        sql = query1("1992-01-01", "1995-01-01")
        exp.points.append(run_point(sql, db, ["system-a-native"]))
        text = exp.format_table("index_probes")
        assert "index_probes" in text

    def test_speedup(self, db):
        exp = Experiment("X", "speedup test")
        sql = query1("1992-01-01", "1995-01-01")
        exp.points.append(
            run_point(sql, db, ["nested-relational", "system-a-native"])
        )
        ratios = exp.speedup("system-a-native", "nested-relational")
        assert len(ratios) == 1 and ratios[0] > 0

    def test_speedup_missing_strategy_is_nan(self, db):
        exp = Experiment("X", "nan test")
        sql = query1("1992-01-01", "1995-01-01")
        exp.points.append(run_point(sql, db, ["nested-relational"]))
        assert math.isnan(exp.speedup("ghost", "nested-relational")[0])


class TestProcessingProfile:
    def test_profile_fields(self, db):
        sql = query1("1992-01-01", "1995-01-01")
        profile = processing_profile(sql, db, repeats=1)
        assert profile.intermediate_rows > 0
        assert profile.original_seconds >= 0
        assert profile.optimized_seconds >= 0

    def test_ratio_property(self):
        p = ProcessingProfile("x", 10, original_seconds=0.2, optimized_seconds=0.1)
        assert p.ratio == pytest.approx(2.0)
        p0 = ProcessingProfile("x", 10, original_seconds=0.2, optimized_seconds=0.0)
        assert p0.ratio == float("inf")

    def test_rejects_tree_queries(self, db):
        sql = """
        select p_partkey, p_name from part
        where exists (select * from partsupp where ps_partkey = p_partkey)
          and p_size > all (select ps_availqty from partsupp ps2
                            where ps2.ps_partkey = p_partkey)
        """
        with pytest.raises(ValueError, match="linear"):
            processing_profile(sql, db, repeats=1)
