"""The committed perf-trajectory seed artifact.

``benchmarks/baselines/BENCH_vector_baseline.json`` is the frozen
output of ``scripts/bench_vector.py --name vector_baseline`` — future
sessions diff their numbers against it.  These tests pin its shape:
it must exist, carry both strategies over a non-empty Figure 4 series,
and every embedded trace must validate against the span-tree checks
(the same ones ``scripts/validate_trace.py`` applies in CI).
"""

from __future__ import annotations

import json
import os

BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "baselines",
    "BENCH_vector_baseline.json",
)


def _load():
    with open(BASELINE) as fh:
        return json.load(fh)


def test_baseline_is_committed():
    assert os.path.exists(BASELINE), "perf baseline artifact missing"


def test_baseline_shape():
    doc = _load()
    assert doc["scale_factor"] > 0
    experiments = doc["experiments"]
    assert experiments, "baseline must hold at least one experiment"
    for experiment in experiments:
        points = experiment["points"]
        assert points, "experiment with no series points"
        for point in points:
            measurements = point["measurements"]
            assert "nested-relational" in measurements
            assert "nested-relational-vectorized" in measurements
            for m in measurements.values():
                assert m["seconds"] > 0
                assert m["result_rows"] >= 0

    # both strategies agree on every point (it is the same query)
    for experiment in experiments:
        for point in experiment["points"]:
            rows = {
                m["result_rows"]
                for m in point["measurements"].values()
            }
            assert len(rows) == 1, "strategies disagreed on result size"


def test_baseline_traces_validate():
    from repro.engine.trace import validate_trace_dict

    doc = _load()
    n = 0
    for experiment in doc["experiments"]:
        for point in experiment["points"]:
            for m in point["measurements"].values():
                trace = m.get("trace")
                assert trace is not None, "measurement without a trace"
                validate_trace_dict(trace)  # raises on schema violation
                n += 1
    assert n > 0
