"""The public Session/PreparedQuery surface, the strategy registry, the
typed error contract, and the deprecation shims over the 1.0 entry
points."""

from __future__ import annotations

import pytest

import repro
from repro.cli import main
from repro.errors import InvalidArgumentError, PlanError, ReproError

SQL = (
    "select o_orderkey from orders where o_totalprice > all "
    "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
)


@pytest.fixture(scope="module")
def micro_tpch():
    # the nested-iteration oracle is O(|orders| x |lineitem|); keep the
    # tests that compare against it on a few hundred rows
    return repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.0002))


class TestSession:
    def test_prepare_execute_roundtrip(self, micro_tpch):
        session = repro.connect(micro_tpch)
        prepared = session.prepare(SQL)
        auto = prepared.execute()
        oracle = prepared.execute(strategy="nested-iteration")
        assert auto == oracle

    def test_backend_selection_is_transparent(self, tiny_tpch_nulls):
        prepared = repro.connect(tiny_tpch_nulls).prepare(SQL)
        row = prepared.execute(backend="row")
        vec = prepared.execute(backend="vector")
        assert row.sorted() == vec.sorted()

    def test_prepare_once_execute_many(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        first = prepared.execute(strategy="nested-relational")
        second = prepared.execute(strategy="nested-relational-vectorized")
        assert first.sorted() == second.sorted()

    def test_trace_returns_span_tree(self, tiny_tpch):
        result, trace = repro.connect(tiny_tpch).prepare(SQL).trace(
            backend="vector"
        )
        assert trace.root is not None
        assert trace.root.counters["rows_out"] == len(result)

    def test_explain_analyze(self, tiny_tpch):
        text = repro.connect(tiny_tpch).prepare(SQL).explain(
            strategy="nested-relational-vectorized", analyze=True,
            timings=False,
        )
        assert "EXPLAIN ANALYZE" in text
        assert "vec-nest-link" in text

    def test_session_one_shot_execute(self, tiny_tpch):
        out = repro.connect(tiny_tpch).execute(
            "select n_name from nation where n_nationkey < 3"
        )
        assert len(out) == 3

    def test_session_strategies_listing(self, tiny_tpch):
        names = repro.connect(tiny_tpch).strategies()
        assert "nested-relational-vectorized" in names
        assert "auto" in names


class TestTypedErrors:
    def test_connect_rejects_non_database(self):
        with pytest.raises(InvalidArgumentError):
            repro.connect({"not": "a database"})

    def test_prepare_rejects_non_string(self, tiny_tpch):
        with pytest.raises(InvalidArgumentError):
            repro.connect(tiny_tpch).prepare(42)

    def test_unknown_strategy_is_plan_error(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        with pytest.raises(PlanError):
            prepared.execute(strategy="no-such-strategy")

    def test_unknown_backend_is_plan_error(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        with pytest.raises(PlanError):
            prepared.execute(backend="gpu")

    def test_row_only_strategy_on_vector_backend(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        with pytest.raises(PlanError):
            prepared.execute(strategy="system-a-native", backend="vector")

    def test_backend_alias_maps_generic_names(self, micro_tpch):
        prepared = repro.connect(micro_tpch).prepare(SQL)
        # the generic name resolves to the vectorized entry on "vector"
        out = prepared.execute(strategy="nested-relational", backend="vector")
        assert out == prepared.execute(strategy="nested-iteration")

    def test_fuzz_config_out_of_range(self):
        from repro.fuzz import FuzzConfig

        with pytest.raises(InvalidArgumentError):
            FuzzConfig(max_depth=9)
        # still catchable as ValueError (1.0 compatibility)
        with pytest.raises(ValueError):
            FuzzConfig(null_rate=3.0)

    def test_tpch_query_argument_errors(self):
        from repro.tpch import query2, query3

        with pytest.raises(InvalidArgumentError):
            query2("most", 1, 30, 6000, 25)
        with pytest.raises(InvalidArgumentError):
            query3("all", "maybe", "a", 1, 30, 6000, 25)

    def test_all_public_errors_share_base(self):
        assert issubclass(InvalidArgumentError, ReproError)
        assert issubclass(PlanError, ReproError)


class TestCliErrorMapping:
    def test_analysis_error_maps_to_stderr_and_exit_2(self, capsys):
        code = main(["run", "select x from nosuchtable", "--tpch", "0.001"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "nosuchtable" in captured.err
        assert "Traceback" not in captured.err

    def test_parse_error_maps_cleanly(self, capsys):
        code = main(["run", "selec oops", "--tpch", "0.001"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")

    def test_unknown_strategy_maps_cleanly(self, capsys):
        code = main(
            ["run", "select n_name from nation", "--tpch", "0.001",
             "--strategy", "warp-drive"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "warp-drive" in captured.err

    def test_list_strategies_flag(self, capsys):
        assert main(["run", "--list-strategies"]) == 0
        out = capsys.readouterr().out
        assert "nested-relational-vectorized" in out
        assert "[vector]" in out

    def test_run_with_vector_backend(self, capsys):
        code = main(
            ["run", "select n_name from nation where n_nationkey < 3",
             "--tpch", "0.001", "--backend", "vector"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=vector" in out


class TestVerify:
    def test_verify_against_sqlite(self, micro_tpch):
        report = repro.connect(micro_tpch).prepare(SQL).verify()
        assert report.ok
        assert report.engine == "sqlite"
        assert report.strategy == "auto"

    def test_verify_specific_strategy_and_plans(self, micro_tpch):
        report = repro.connect(micro_tpch).prepare(SQL).verify(
            strategy="nested-relational-vectorized", capture_plans=True
        )
        assert report.ok
        assert report.plan_theirs  # EXPLAIN QUERY PLAN text captured

    def test_verify_internal_engine(self, micro_tpch):
        report = repro.connect(micro_tpch).prepare(SQL).verify(
            engine="internal", strategy="nested-relational"
        )
        assert report.ok and report.engine == "internal"

    def test_verify_unknown_engine_raises(self, micro_tpch):
        from repro.errors import OracleUnavailableError

        with pytest.raises(OracleUnavailableError):
            repro.connect(micro_tpch).prepare(SQL).verify(engine="warp-db")


class TestDeprecatedShims:
    def test_run_sql_warns_but_works(self, tiny_tpch):
        with pytest.warns(DeprecationWarning, match="run_sql"):
            out = repro.run_sql(
                "select n_name from nation where n_nationkey < 3", tiny_tpch
            )
        assert len(out) == 3

    def test_planner_execute_warns_but_works(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        with pytest.warns(DeprecationWarning, match="execute"):
            out = repro.execute(prepared.query, tiny_tpch)
        assert out == prepared.execute()

    def test_planner_execute_traced_warns_but_works(self, tiny_tpch):
        prepared = repro.connect(tiny_tpch).prepare(SQL)
        with pytest.warns(DeprecationWarning, match="execute_traced"):
            result, trace = repro.execute_traced(prepared.query, tiny_tpch)
        assert trace.root is not None
        assert result == prepared.execute()
