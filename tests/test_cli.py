"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


class TestStrategies:
    def test_lists_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "nested-relational" in out
        assert "system-a-native" in out
        assert "auto" in out


class TestGenerateAndRun:
    def test_generate_then_run_from_csv(self, tmp_path, capsys):
        data_dir = str(tmp_path / "data")
        assert main(["generate", "--sf", "0.001", "--out", data_dir]) == 0
        capsys.readouterr()
        code = main(
            [
                "run",
                "select o_orderkey from orders where o_totalprice > 50000",
                "--data",
                data_dir,
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "row(s)" in out
        assert "agrees" in out

    def test_run_against_generated_tpch(self, capsys):
        code = main(
            [
                "run",
                "select p_partkey, p_name from part where p_size >= 48",
                "--tpch",
                "0.001",
                "--strategy",
                "nested-relational",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "part.p_partkey" in out

    def test_run_nested_query_with_check(self, capsys):
        sql = (
            "select o_orderkey, o_orderpriority from orders "
            "where o_totalprice > all (select l_extendedprice from lineitem "
            "where l_orderkey = o_orderkey)"
        )
        code = main(["run", sql, "--tpch", "0.001", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agrees" in out

    def test_run_from_file(self, tmp_path, capsys):
        sql_file = tmp_path / "q.sql"
        sql_file.write_text("select n_name from nation where n_nationkey < 3")
        code = main(["run", "--file", str(sql_file), "--tpch", "0.001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 row(s)" in out

    def test_missing_sql_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--tpch", "0.001"])


class TestExplain:
    def test_explain_nested_relational(self, capsys):
        sql = (
            "select o_orderkey from orders where o_totalprice > all "
            "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
        )
        code = main(["explain", sql, "--tpch", "0.001",
                     "--strategy", "nested-relational"])
        out = capsys.readouterr().out
        assert code == 0
        assert "T1: orders" in out
        assert "υ" in out  # a nest operator in the plan
        assert "ALL" in out

    def test_explain_system_a(self, capsys):
        sql = (
            "select o_orderkey from orders where o_totalprice > all "
            "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
        )
        code = main(["explain", sql, "--tpch", "0.001",
                     "--strategy", "system-a-native"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nested-iteration" in out

    def test_explain_auto_names_choice(self, capsys):
        sql = "select o_orderkey from orders where exists (select * from lineitem where l_orderkey = o_orderkey)"
        code = main(["explain", sql, "--tpch", "0.001", "--strategy", "auto"])
        out = capsys.readouterr().out
        assert code == 0
        assert "auto ->" in out


class TestFuzz:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "30",
                "--seed", "3",
                "--quiet",
                "--corpus-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK: 30 case(s)" in out
        assert "linking operators seen" in out
        # nothing failed, so nothing was frozen
        assert not list(tmp_path.glob("test_fuzz_*.py"))

    def test_inject_bug_caught_and_frozen(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "500",
                "--seed", "42",
                "--quiet",
                "--inject-bug",
                "--corpus-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "mutated-link" in out
        assert "minimized failure" in out
        assert "regression written to" in out
        assert list(tmp_path.glob("test_fuzz_*.py"))

    def test_inject_trace_bug_caught(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "100",
                "--seed", "7",
                "--quiet",
                "--inject-trace-bug",
                "--corpus-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "miscounting-span" in out
        assert "trace" in out
        assert list(tmp_path.glob("test_fuzz_*.py"))

    def test_strategy_subset_flag(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--iterations", "10",
                "--seed", "1",
                "--strategies", "nested-relational,system-a-native",
                "--quiet",
                "--corpus-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK: 10 case(s)" in out


class TestBench:
    def test_single_figure(self, capsys):
        code = main(["bench", "--figure", "fig4", "--sf", "0.001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "F4" in out
        assert "system-a-native" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "--figure", "fig99", "--sf", "0.001"])

    def test_trace_dir_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.engine.trace import validate_trace_dict

        code = main(
            ["bench", "--figure", "fig4", "--sf", "0.001",
             "--trace-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        artifact = tmp_path / "BENCH_fig4.json"
        assert str(artifact) in out
        with open(artifact) as handle:
            payload = json.load(handle)
        assert payload["figure"] == "fig4"
        traces = [
            m["trace"]
            for exp in payload["experiments"]
            for point in exp["points"]
            for m in point["measurements"].values()
        ]
        assert traces and all(t is not None for t in traces)
        for trace in traces:
            assert validate_trace_dict(trace) == []


class TestRunTrace:
    SQL = (
        "select o_orderkey from orders where o_totalprice > all "
        "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
    )

    def test_trace_text(self, capsys):
        code = main(["run", self.SQL, "--tpch", "0.001", "--trace", "text"])
        out = capsys.readouterr().out
        assert code == 0
        assert "execute(strategy=" in out
        assert "rows=" in out

    def test_trace_json_to_file(self, tmp_path, capsys):
        import json

        from repro.engine.trace import validate_trace_dict

        path = tmp_path / "trace.json"
        code = main(
            ["run", self.SQL, "--tpch", "0.001", "--trace", "json",
             "--trace-out", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert str(path) in out
        with open(path) as handle:
            assert validate_trace_dict(json.load(handle)) == []


class TestExplainAnalyze:
    SQL = (
        "select o_orderkey from orders where o_totalprice > all "
        "(select l_extendedprice from lineitem where l_orderkey = o_orderkey)"
    )

    def test_analyze_annotates_plan(self, capsys):
        code = main(["explain", self.SQL, "--tpch", "0.001", "--analyze"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN ANALYZE" in out
        assert "rows=" in out
        assert "weighted cost" in out
        assert "ms" in out

    def test_no_timings_is_deterministic(self, capsys):
        argv = ["explain", self.SQL, "--tpch", "0.001",
                "--analyze", "--no-timings"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "ms" not in first.split("EXPLAIN ANALYZE")[1]
        assert first == second
