"""Command-line interface.

Subcommands::

    python -m repro generate --sf 0.005 --out data/        # TPC-H -> CSV
    python -m repro gen --sf 1 --out store/                # TPC-H -> column store
    python -m repro run "select ..." --data data/          # execute SQL
    python -m repro run "select ..." --store store/        # mmap column store
    python -m repro run --file q.sql --tpch 0.002 --strategy auto
    python -m repro run "select ..." --tpch 0.002 --backend vector
    python -m repro run --list-strategies                  # registry listing
    python -m repro explain "select ..." --tpch 0.002 --strategy system-a-native
    python -m repro bench --figure fig4 --sf 0.005         # one paper figure
    python -m repro fuzz --iterations 500 --seed 42        # differential fuzz
    python -m repro fuzz --oracle sqlite                   # + external oracle
    python -m repro diff "select ..." --tpch 0.002         # vs real engine
    python -m repro serve --tpch 0.01 --port 8080          # HTTP/JSON server
    python -m repro strategies                             # list strategies

All execution goes through the Session API (:func:`repro.connect` /
:meth:`~repro.session.Session.prepare`); library errors surface as one
``error: ...`` line on stderr with a nonzero exit code.

Databases come from a CSV directory written by ``generate`` /
:func:`repro.engine.storage.save_database` (``--data``), from a
memory-mapped column store written by ``gen`` /
:func:`repro.tpch.generate_stored` (``--store``), or from an in-memory
TPC-H instance generated on the fly (``--tpch <sf>``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import repro
from .engine.catalog import Database
from .engine.metrics import collect
from .engine.storage import load_database, save_database
from .errors import ReproError


def _load_db(args: argparse.Namespace) -> Database:
    if getattr(args, "store", None):
        from .engine.colstore import load_stored_database

        # no paper indexes: building them would pull every stored row
        # into Python heap, defeating the zero-copy mmap scan path
        return load_stored_database(args.store)
    if getattr(args, "data", None):
        return load_database(args.data)
    sf = getattr(args, "tpch", None)
    if sf is None:
        sf = 0.002
    return repro.tpch.generate(
        repro.tpch.TpchConfig(
            scale_factor=float(sf),
            seed=getattr(args, "seed", 42),
            price_not_null=getattr(args, "not_null", False),
        )
    )


def _read_sql(args: argparse.Namespace) -> str:
    if getattr(args, "file", None):
        with open(args.file) as handle:
            return handle.read()
    if args.sql:
        return args.sql
    raise SystemExit("provide SQL inline or with --file")


def cmd_generate(args: argparse.Namespace) -> int:
    db = repro.tpch.generate(
        repro.tpch.TpchConfig(
            scale_factor=args.sf,
            seed=args.seed,
            price_not_null=args.not_null,
            inject_null_fraction=args.inject_nulls,
        )
    )
    save_database(db, args.out)
    print(f"wrote TPC-H sf={args.sf} to {args.out}/")
    print(db.summary())
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    from .engine.colstore import load_stored_database, store_size_bytes

    repro.tpch.generate_stored(
        args.out,
        repro.tpch.TpchConfig(
            scale_factor=args.sf,
            seed=args.seed,
            price_not_null=args.not_null,
            inject_null_fraction=args.inject_nulls,
        ),
        chunk_rows=args.chunk_rows,
    )
    size = store_size_bytes(args.out)
    print(f"wrote TPC-H sf={args.sf} column store to {args.out}/ "
          f"({size / 1_000_000:.1f} MB)")
    print(load_stored_database(args.out).summary())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .engine.trace import render_trace

    if args.list_strategies:
        print(repro.strategies.describe())
        return 0
    session = repro.connect(
        _load_db(args),
        plan_cache=not args.no_plan_cache,
        threads=args.threads,
        timeout_ms=args.timeout_ms,
        memory_limit_mb=args.memory_limit_mb,
        spill_dir=args.spill_dir,
        degrade=args.degrade,
        logic=args.logic,
    )
    prepared = session.prepare(_read_sql(args))
    trace = None
    with collect() as metrics:
        start = time.perf_counter()
        if args.trace:
            result, trace = prepared.trace(
                strategy=args.strategy, backend=args.backend
            )
        else:
            result = prepared.execute(
                strategy=args.strategy, backend=args.backend
            )
        elapsed = time.perf_counter() - start
    if trace is not None:
        rendered = (
            trace.to_json() if args.trace == "json"
            else render_trace(trace)
        )
        if args.trace_out:
            with open(args.trace_out, "w") as handle:
                handle.write(rendered + "\n")
            print(f"trace written to {args.trace_out}")
        else:
            print(rendered)
            print()
    print(result.to_table(max_rows=args.limit))
    backend_note = f", backend={args.backend}" if args.backend else ""
    threads_note = f", threads={args.threads}" if args.threads else ""
    print(
        f"\n{len(result)} row(s) in {elapsed:.4f}s "
        f"[strategy={args.strategy}{backend_note}{threads_note}, "
        f"weighted-cost={metrics.weighted_cost()}]"
    )
    if args.check:
        oracle = prepared.execute(strategy="nested-iteration")
        status = "agrees" if result == oracle else "DISAGREES"
        print(f"oracle check: {status} with nested-iteration")
        if result != oracle:
            return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    session = repro.connect(_load_db(args))
    prepared = session.prepare(_read_sql(args))
    plan = prepared.explain(
        strategy=args.strategy,
        analyze=args.analyze,
        timings=not args.no_timings,
    )
    if args.format == "json":
        print(plan.render("json"))
        return 0
    print(prepared.describe())
    print()
    print(repro.TreeExpression(prepared.query).render())
    print()
    print(plan.render("text"))
    return 0


_FIGURES = {
    "fig4": "figure4_query1",
    "fig5": "figure5_query2a",
    "fig6": "figure6_query2b",
    "fig7": "figure7_query3a",
    "fig8": "figure8_query3b",
    "fig9": "figure9_query3c",
}


def cmd_bench(args: argparse.Namespace) -> int:
    import contextlib

    from . import bench
    from .bench.harness import capturing_traces, write_bench_artifact

    db = bench.default_db(sf=args.sf, seed=args.seed)
    if args.figure == "all":
        names = list(_FIGURES) + ["t-ir"]
    else:
        names = [args.figure]
    trace_dir = getattr(args, "trace_dir", None)
    capture = capturing_traces() if trace_dir else contextlib.nullcontext()
    with capture:
        for name in names:
            if name == "t-ir":
                from .bench.figures import format_profiles, text_intermediate_results

                print(format_profiles(text_intermediate_results(db)))
                continue
            if name not in _FIGURES:
                raise SystemExit(
                    f"unknown figure {name!r}; choose from {sorted(_FIGURES)} or 'all'"
                )
            result = getattr(bench, _FIGURES[name])(db)
            experiments = result.values() if isinstance(result, dict) else [result]
            for experiment in experiments:
                print(experiment.format_table("seconds"))
                print(experiment.format_table("cost"))
                if args.chart:
                    from .bench.plot import render_chart

                    print()
                    print(render_chart(experiment, metric="cost"))
                print()
            if trace_dir:
                path = write_bench_artifact(
                    name, list(experiments), trace_dir, args.sf
                )
                print(f"wrote {path}")
    return 0


def cmd_strategies(_args: argparse.Namespace) -> int:
    print(repro.strategies.describe())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        DifferentialRunner,
        FuzzConfig,
        MiscountingSpanStrategy,
        MutatedLinkStrategy,
        run_fuzz,
    )

    strategies = None
    if args.strategies:
        strategies = tuple(
            name.strip() for name in args.strategies.split(",") if name.strip()
        )
        # "auto" is a planner policy, not an executable strategy: fuzzing
        # it would just re-test whichever strategy it delegates to.
        known = set(repro.strategies.names())
        unknown = [name for name in strategies if name not in known]
        if unknown:
            print(
                "error: unknown strategy name(s) for fuzz: "
                + ", ".join(unknown)
                + "\navailable: "
                + ", ".join(sorted(known)),
                file=sys.stderr,
            )
            return 2
    null_rate = args.null_rate
    if null_rate is None:
        # the 2VL leg checks the NULL-free equivalence 2VL == 3VL ==
        # external engine, so its default data is NULL-free (explicit
        # --null-rate still overrides for 2VL-vs-oracle exploration)
        null_rate = 0.0 if args.logic == "2vl" else 0.25
    try:
        config = FuzzConfig(
            iterations=args.iterations,
            seed=args.seed,
            max_depth=args.depth,
            null_rate=null_rate,
            max_rows=args.max_rows,
            strategies=strategies,
            logic=args.logic,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.oracle != "internal":
        from .oracle import engine_available

        if not engine_available(args.oracle):
            print(
                f"error: oracle engine {args.oracle!r} is not available "
                "(package not installed?)",
                file=sys.stderr,
            )
            return 2
    extra = [MutatedLinkStrategy()] if args.inject_bug else []
    if args.inject_trace_bug:
        extra.append(MiscountingSpanStrategy())
    runner = DifferentialRunner(
        strategies=config.strategies,
        extra_strategies=extra,
        oracle=args.oracle,
        logic=config.logic,
        memory_limit_mb=args.memory_limit_mb,
        spill_dir=args.spill_dir,
    )

    def progress(i: int, report) -> None:
        if not args.quiet and (i + 1) % 100 == 0:
            print(
                f"... {i + 1}/{config.iterations} cases, "
                f"{report.strategy_checks} strategy checks"
            )

    outcome = run_fuzz(
        config,
        runner=runner,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        progress=progress,
    )
    print(outcome.report.summary())
    if outcome.ok:
        return 0
    failure = outcome.shrunk_failure or outcome.report.failures[0]
    print()
    print("minimized failure:" if outcome.shrunk_case else "failure:")
    print(failure.describe())
    if outcome.corpus_path:
        print(f"\nregression written to {outcome.corpus_path}")
        print("re-run it with: python -m pytest " + outcome.corpus_path)
    return 1


def cmd_diff(args: argparse.Namespace) -> int:
    from .oracle import cross_check, engine_available

    if not engine_available(args.engine):
        print(
            f"error: oracle engine {args.engine!r} is not available "
            "(package not installed?)",
            file=sys.stderr,
        )
        return 2
    strategies = tuple(
        name.strip() for name in args.strategies.split(",") if name.strip()
    ) or ("auto",)
    reports = cross_check(
        _load_db(args),
        _read_sql(args),
        engine=args.engine,
        strategies=strategies,
        backend=args.backend,
        threads=args.threads,
        capture_plans=args.explain,
    )
    diverged = False
    for report in reports:
        print(report.describe())
        if args.explain and report.plan_theirs:
            print(f"  {args.engine} plan:")
            for line in report.plan_theirs.splitlines():
                print(f"    {line}")
        if not report.acceptable:
            diverged = True
    return 1 if diverged else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from .options import ExecutionOptions
    from .serve import QueryServer, TenantConfig

    tenants = {}
    if args.tenants:
        with open(args.tenants) as handle:
            spec = json.load(handle)
        if not isinstance(spec, dict):
            raise ReproError(
                f"--tenants file must be a JSON object, got {type(spec).__name__}"
            )
        tenants = {
            name: TenantConfig.from_dict(name, entry)
            for name, entry in spec.items()
        }
    default_tenant = TenantConfig(
        "default",
        max_concurrent=args.max_concurrent,
        max_queued=args.max_queued,
        options=ExecutionOptions(
            threads=args.threads,
            timeout_ms=args.timeout_ms,
            memory_limit_mb=args.memory_limit_mb,
            spill_dir=args.spill_dir,
            logic=args.logic,
        ),
    )
    db = _load_db(args)
    server = QueryServer(
        db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        tenants=tenants,
        default_tenant=default_tenant,
    )

    async def _main() -> None:
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(workers={server.workers}, queue={server.queue_size})",
              flush=True)
        try:
            await shutdown.wait()
            print("draining: in-flight queries finishing, new requests "
                  "rejected", flush=True)
            await server.drain()
        finally:
            await server.stop()

    asyncio.run(_main())
    print("server drained and stopped", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nested relational subquery processing (SIGMOD 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate TPC-H data as CSV")
    p.add_argument("--sf", type=float, default=0.002)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", required=True)
    p.add_argument("--not-null", action="store_true", dest="not_null",
                   help="declare NOT NULL on the price columns")
    p.add_argument("--inject-nulls", type=float, default=0.0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "gen",
        help="generate TPC-H data as a memory-mapped column store",
    )
    p.add_argument("--sf", type=float, default=0.002)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", required=True)
    p.add_argument("--not-null", action="store_true", dest="not_null",
                   help="declare NOT NULL on the price columns")
    p.add_argument("--inject-nulls", type=float, default=0.0)
    p.add_argument("--chunk-rows", type=int, default=100_000,
                   dest="chunk_rows",
                   help="rows buffered per column chunk while writing "
                        "(bounds generator memory)")
    p.set_defaults(func=cmd_gen)

    for name, func, help_text in (
        ("run", cmd_run, "execute a SQL query"),
        ("explain", cmd_explain, "show query structure and plan"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("sql", nargs="?", help="SQL text (or use --file)")
        p.add_argument("--file", help="read SQL from a file")
        p.add_argument("--data", help="CSV directory from 'generate'")
        p.add_argument("--store", help="column-store directory from 'gen' "
                                       "(tables scan zero-copy off mmap)")
        p.add_argument("--tpch", type=float, help="generate TPC-H at this sf")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--not-null", action="store_true", dest="not_null")
        p.add_argument("--strategy", default="auto")
        if name == "run":
            p.add_argument("--backend", choices=("row", "vector"),
                           help="execution substrate: tuple-at-a-time "
                                "iterators or columnar batches "
                                "(default: the strategy's own)")
            p.add_argument("--threads", type=int,
                           help="worker count for morsel-driven parallel "
                                "execution; >1 makes the parallel strategy "
                                "a candidate for the cost-based 'auto' "
                                "planner")
            p.add_argument("--timeout-ms", type=float, dest="timeout_ms",
                           help="abort the query with a typed timeout "
                                "error once it runs past this deadline")
            p.add_argument("--memory-limit-mb", type=float,
                           dest="memory_limit_mb",
                           help="abort the query once its accounted "
                                "allocations exceed this budget")
            p.add_argument("--spill-dir", dest="spill_dir",
                           help="spill hash-join builds and grouping runs "
                                "to temp files under this directory instead "
                                "of failing on a memory-budget breach")
            p.add_argument("--degrade", choices=("sequential",),
                           help="retry a failed parallel execution once "
                                "on the single-threaded vectorized "
                                "backend before surfacing the error")
            p.add_argument("--no-plan-cache", action="store_true",
                           dest="no_plan_cache",
                           help="disable the session's cross-query "
                                "plan/build cache")
            p.add_argument("--logic", default="3vl",
                           choices=("3vl", "2vl"),
                           help="predicate semantics: SQL-standard "
                                "three-valued logic or Libkin two-valued "
                                "logic (NULL comparisons are plain FALSE)")
            p.add_argument("--list-strategies", action="store_true",
                           dest="list_strategies",
                           help="list registered strategies and exit")
            p.add_argument("--limit", type=int, default=20,
                           help="max rows to print")
            p.add_argument("--check", action="store_true",
                           help="verify against the tuple-iteration oracle")
            p.add_argument("--trace", choices=("json", "text"),
                           help="record an execution trace and print it "
                                "(or write it with --trace-out)")
            p.add_argument("--trace-out", dest="trace_out",
                           help="write the trace to this file instead of stdout")
        else:
            p.add_argument("--analyze", action="store_true",
                           help="execute the query and annotate the plan with "
                                "per-operator row counts and wall times")
            p.add_argument("--no-timings", action="store_true", dest="no_timings",
                           help="omit wall times from --analyze output "
                                "(deterministic)")
            p.add_argument("--format", choices=("text", "json"),
                           default="text",
                           help="plan rendering: human-readable text or the "
                                "machine-readable JSON document (candidates "
                                "with estimated costs, spans when --analyze)")
        p.set_defaults(func=func)

    p = sub.add_parser("bench", help="regenerate a paper figure")
    p.add_argument("--figure", default="all",
                   help="fig4..fig9, t-ir, or 'all'")
    p.add_argument("--sf", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--chart", action="store_true",
                   help="also draw ASCII charts")
    p.add_argument("--trace-dir", dest="trace_dir",
                   help="capture per-operator execution traces and write "
                        "BENCH_<figure>.json files into this directory")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="differentially fuzz every strategy against the oracle",
    )
    p.add_argument("--iterations", type=int, default=500,
                   help="number of random (query, database) cases")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed; (seed, iteration) reproduces a case")
    p.add_argument("--depth", type=int, default=3,
                   help="maximum subquery nesting depth (1-4)")
    p.add_argument("--null-rate", type=float, default=None, dest="null_rate",
                   help="per-cell NULL probability in generated data "
                        "(default 0.25; 0.0 under --logic=2vl, whose "
                        "default leg checks NULL-free 2VL==3VL==oracle "
                        "equivalence)")
    p.add_argument("--logic", default="3vl", choices=("3vl", "2vl"),
                   help="run every internal strategy under this logic "
                        "mode; external oracles always evaluate 3VL, so "
                        "a 2vl run grounds them against a separate 3VL "
                        "oracle execution")
    p.add_argument("--max-rows", type=int, default=8, dest="max_rows",
                   help="maximum rows per generated table")
    p.add_argument("--strategies",
                   help="comma-separated strategy names (default: all)")
    p.add_argument("--corpus-dir", default="tests/fuzz_corpus",
                   help="where minimized failures are written as pytest files")
    p.add_argument("--no-shrink", action="store_true",
                   help="report the raw failing case without minimizing")
    p.add_argument("--inject-bug", action="store_true", dest="inject_bug",
                   help="self-test: add a deliberately broken strategy and "
                        "verify the fuzzer catches it")
    p.add_argument("--inject-trace-bug", action="store_true",
                   dest="inject_trace_bug",
                   help="self-test: add a strategy whose results are right "
                        "but whose operator spans miscount rows; the trace "
                        "invariants must catch it")
    p.add_argument("--oracle", default="internal",
                   choices=("internal", "sqlite", "duckdb"),
                   help="also cross-check the tuple-iteration oracle "
                        "against a real engine on every case; external "
                        "divergences ddmin-shrink into the corpus like "
                        "internal disagreements (default: internal only)")
    p.add_argument("--memory-limit-mb", type=float, default=None,
                   dest="memory_limit_mb",
                   help="tiny-memory-budget mode: run every checked "
                        "strategy under a spilling governor with this "
                        "budget (the oracle stays ungoverned), so random "
                        "queries exercise the spill paths")
    p.add_argument("--spill-dir", dest="spill_dir",
                   help="spill directory for --memory-limit-mb "
                        "(default: a fresh temp dir)")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "diff",
        help="cross-check strategies against an external engine",
    )
    p.add_argument("sql", nargs="?", help="SQL text (or use --file)")
    p.add_argument("--file", help="read SQL from a file")
    p.add_argument("--data", help="CSV directory from 'generate'")
    p.add_argument("--tpch", type=float, help="generate TPC-H at this sf")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--not-null", action="store_true", dest="not_null")
    p.add_argument("--engine", default="sqlite",
                   choices=("sqlite", "duckdb", "internal"),
                   help="external engine to diff against")
    p.add_argument("--strategies", default="auto",
                   help="comma-separated strategy names (default: auto)")
    p.add_argument("--backend", choices=("row", "vector"))
    p.add_argument("--threads", type=int)
    p.add_argument("--explain", action="store_true",
                   help="also print the external engine's plan text")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "serve",
        help="serve queries over HTTP/JSON (multi-tenant, governed)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--data", help="CSV directory from 'generate'")
    p.add_argument("--store", help="column-store directory from 'gen'")
    p.add_argument("--tpch", type=float, help="generate TPC-H at this sf")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--not-null", action="store_true", dest="not_null")
    p.add_argument("--workers", type=int, default=4,
                   help="executor threads (bounds concurrent executions)")
    p.add_argument("--queue-size", type=int, default=128, dest="queue_size",
                   help="global admission queue bound (429 beyond it)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   dest="max_concurrent",
                   help="default per-tenant concurrent-query quota")
    p.add_argument("--max-queued", type=int, default=16, dest="max_queued",
                   help="default per-tenant waiting-query quota")
    p.add_argument("--threads", type=int,
                   help="default intra-query parallelism per tenant")
    p.add_argument("--timeout-ms", type=float, dest="timeout_ms",
                   help="default per-query timeout")
    p.add_argument("--memory-limit-mb", type=float, dest="memory_limit_mb",
                   help="default per-query memory budget")
    p.add_argument("--spill-dir", dest="spill_dir",
                   help="spill directory shared by all tenants (each "
                        "execution gets a private subdirectory)")
    p.add_argument("--logic", choices=("3vl", "2vl"),
                   help="default predicate semantics")
    p.add_argument("--tenants",
                   help="JSON file of per-tenant quotas/options "
                        '({"name": {"max_concurrent": ..., '
                        '"options": {...}}})')
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("strategies", help="list strategy names")
    p.set_defaults(func=cmd_strategies)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # every library error surfaces as one clean line, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-print
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
