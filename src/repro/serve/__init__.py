"""``repro.serve`` — the multi-tenant asyncio query server.

Start from the CLI::

    python -m repro serve --tpch 0.01 --port 8080

and query it over HTTP/JSON::

    curl -s localhost:8080/query -d '{"sql": "select ...", "tenant": "bi"}'
    curl -s localhost:8080/stats

See :mod:`repro.serve.server` for the architecture (admission control,
per-tenant quotas, round-robin dispatch, graceful drain) and
:mod:`repro.serve.tenants` for quota configuration.
"""

from .server import QueryServer, http_status_for, run_server
from .tenants import DEFAULT_TENANT, TenantConfig, TenantState

__all__ = [
    "QueryServer",
    "TenantConfig",
    "TenantState",
    "DEFAULT_TENANT",
    "http_status_for",
    "run_server",
]
