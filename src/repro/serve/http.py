"""A minimal HTTP/1.1 layer over asyncio streams.

The server speaks exactly the subset the query protocol needs — JSON
request bodies, JSON responses, keep-alive — implemented directly on
``asyncio`` streams so serving needs no dependency beyond the standard
library.  This is deliberately not a general web server: no chunked
transfer, no multipart, no TLS; a reverse proxy supplies those in any
real deployment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: request line + headers may not exceed this many bytes
MAX_HEADER_BYTES = 16 * 1024
#: JSON bodies may not exceed this many bytes (SQL text is small)
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """The peer sent something that is not acceptable HTTP/1.1."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections unless closed."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (:class:`ProtocolError` on garbage)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


async def read_request(reader) -> Optional[HttpRequest]:
    """Read one request off *reader*; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` for malformed framing or oversized
    messages — the connection handler answers with the error's status
    and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        partial = getattr(exc, "partial", b"")
        if not partial:
            return None  # clean close between requests
        raise ProtocolError(f"truncated or oversized request head: {exc}")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large", status=413)
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"body of {length} bytes exceeds limit {MAX_BODY_BYTES}",
            status=413,
        )
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def response_bytes(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    """Serialize one JSON response, framing included."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def parse_query_body(payload: Any) -> Tuple[str, str, Dict[str, Any]]:
    """Validate a ``POST /query`` body into (sql, tenant, overrides).

    Allowed override keys mirror the Session API's per-call kwargs,
    minus the filesystem-shaped ones (``spill_dir`` stays server
    policy — a remote client must not point executions at arbitrary
    paths).  Unknown keys are rejected so typos fail loudly.
    """
    from .tenants import DEFAULT_TENANT

    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    sql = payload.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError('request body needs a non-empty "sql" string')
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError('"tenant" must be a non-empty string')
    allowed = {
        "strategy", "backend", "threads", "timeout_ms",
        "memory_limit_mb", "degrade", "logic",
    }
    overrides = {
        key: value
        for key, value in payload.items()
        if key not in ("sql", "tenant") and value is not None
    }
    unknown = set(overrides) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown request field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    return sql, tenant, overrides
