"""The multi-tenant asyncio query server.

Architecture — one event loop, one worker pool, zero shared-state
locks in the scheduler:

* **Connections** are plain asyncio streams speaking the minimal
  HTTP/1.1 of :mod:`repro.serve.http`.  Handlers parse a request and
  ``await`` :meth:`QueryServer.submit`.
* **Admission** happens synchronously on the event loop.  A submission
  is rejected *before any work is queued* when the server drains
  (:class:`~repro.errors.ServerDrainingError`), when the global queue
  is full (:class:`~repro.errors.ServerOverloadedError`), or when the
  tenant's own quota is exhausted
  (:class:`~repro.errors.TenantQuotaExceededError`) — so a rejected
  client can always retry safely.
* **Dispatch** is round-robin across tenants, not FIFO across
  requests: the scheduler cycles through the tenant ring and starts
  the head of the next tenant queue whose ``running`` count is below
  its ``max_concurrent``.  A tenant flooding 1000 requests therefore
  delays another tenant's single query by at most one quantum, not by
  1000 executions.
* **Execution** runs on a bounded :class:`ThreadPoolExecutor`.  Every
  request gets a fresh :class:`~repro.engine.governor.ResourceGovernor`
  built from the tenant's :class:`~repro.options.ExecutionOptions`
  (layered with per-request overrides), so timeouts, memory budgets,
  spill isolation and degradation accounting are all per-query.
  Sessions are pooled per tenant over ONE shared
  :class:`~repro.core.plancache.SessionCache` and
  :class:`~repro.core.feedback.FeedbackStore` — both thread-safe —
  so tenants share compiled plans, reduced builds and observed
  cardinalities.
* **Drain** (SIGTERM) lets admitted queries finish while new
  submissions are rejected; :meth:`drain` resolves when the system is
  idle, after which :meth:`stop` joins the pool and closes the
  listener — clean exit, no orphan threads.

All scheduler state (tenant queues, counters, the round-robin cursor)
is confined to the event-loop thread; worker threads communicate
results back via future callbacks that the loop runs.  That confinement
is the concurrency design: the only cross-thread structures are the
already-thread-safe cache, feedback store and governors.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.feedback import FeedbackStore
from ..core.plancache import SessionCache
from ..engine.catalog import Database
from ..engine.types import is_null
from ..errors import (
    AnalysisError,
    CatalogError,
    ExpressionError,
    InvalidArgumentError,
    ParseError,
    PlanError,
    QueryTimeoutError,
    ReproError,
    ResourceGovernanceError,
    SchemaError,
    ServerDrainingError,
    ServerOverloadedError,
    TenantQuotaExceededError,
    TypeError_,
)
from ..options import ExecutionOptions
from ..session import Session
from .http import (
    HttpRequest,
    ProtocolError,
    parse_query_body,
    read_request,
    response_bytes,
)
from .tenants import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantState,
    resolve_tenant_config,
)

#: errors whose cause is the request itself -> HTTP 400
_CLIENT_ERRORS = (
    ParseError, AnalysisError, PlanError, InvalidArgumentError,
    SchemaError, TypeError_, ExpressionError, CatalogError,
)


def http_status_for(exc: BaseException) -> int:
    """Map a library error onto the HTTP status the server answers."""
    if isinstance(exc, (ServerOverloadedError, TenantQuotaExceededError)):
        return 429
    if isinstance(exc, ServerDrainingError):
        return 503
    if isinstance(exc, _CLIENT_ERRORS):
        return 400
    if isinstance(exc, QueryTimeoutError):
        return 504
    if isinstance(exc, ResourceGovernanceError):
        return 503
    return 500


def _json_value(value: Any) -> Any:
    """One SQL cell as a JSON value (NULL -> null; exotic -> str)."""
    if is_null(value):
        return None
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass
class _Request:
    """One admitted query waiting for (or holding) a worker."""

    state: TenantState
    sql: str
    overrides: Dict[str, Any]
    future: "asyncio.Future[Dict[str, Any]]"
    governor: Optional[object] = None
    enqueued_at: float = field(default_factory=time.monotonic)


class QueryServer:
    """The serving façade: admission, fair dispatch, execution, stats.

    Usable embedded (tests drive :meth:`submit` directly) or as a
    network server via :meth:`start`.  All public coroutine methods
    must be called on the server's event loop.
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_size: int = 128,
        tenants: Optional[Dict[str, TenantConfig]] = None,
        default_tenant: Optional[TenantConfig] = None,
    ):
        if not isinstance(workers, int) or workers < 1:
            raise InvalidArgumentError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if not isinstance(queue_size, int) or queue_size < 1:
            raise InvalidArgumentError(
                f"queue_size must be a positive integer, got {queue_size!r}"
            )
        self.db = db
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_size = queue_size
        self._configs = dict(tenants or {})
        self._default_config = default_tenant
        # one cache + one feedback store shared by every pooled session:
        # tenants share compiled plans and observed cardinalities
        self._cache = SessionCache(enabled=True)
        self._feedback = FeedbackStore()
        self._tenants: Dict[str, TenantState] = {}
        self._ring: List[str] = []
        self._rr = 0
        self._total_queued = 0
        self._active = 0
        self._draining = False
        self._started = time.monotonic()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._idle: Optional[asyncio.Event] = None
        # -- server-wide counters -------------------------------------- #
        self.requests_total = 0
        self.rejected_overload = 0
        self.rejected_draining = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # port 0 binds an ephemeral port; expose the real one
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Stop admitting; resolve once every admitted query finished.

        Idempotent: a second drain just awaits the same idle event.
        New submissions (including queued-up HTTP requests) are
        answered with :class:`~repro.errors.ServerDrainingError`.
        """
        self._draining = True
        assert self._idle is not None
        await self._idle.wait()

    async def stop(self) -> None:
        """Close the listener and join the worker pool (after drain)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------ #
    # admission + fair dispatch (event-loop thread only)
    # ------------------------------------------------------------------ #

    def _state(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            config = resolve_tenant_config(
                tenant, self._configs, self._default_config
            )
            session = Session(
                self.db,
                options=config.options,
                cache=self._cache,
                feedback=self._feedback,
            )
            state = TenantState(config, session)
            self._tenants[tenant] = state
            self._ring.append(tenant)
        return state

    async def submit(
        self,
        sql: str,
        tenant: str = DEFAULT_TENANT,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Admit, schedule and execute one query; return the payload.

        Raises the typed admission errors documented in the module
        docstring, or whatever :class:`~repro.errors.ReproError` the
        execution itself produced.
        """
        self.requests_total += 1
        if self._draining:
            self.rejected_draining += 1
            raise ServerDrainingError(
                "server is draining; retry against another instance"
            )
        state = self._state(tenant)
        if self._total_queued >= self.queue_size:
            self.rejected_overload += 1
            raise ServerOverloadedError(
                f"admission queue full ({self.queue_size} waiting); "
                f"retry after backoff"
            )
        if state.over_quota():
            state.rejected_quota += 1
            raise TenantQuotaExceededError(
                f"tenant {tenant!r} is at quota "
                f"({state.config.max_concurrent} running + "
                f"{state.config.max_queued} queued); retry after backoff"
            )
        loop = asyncio.get_running_loop()
        request = _Request(
            state=state,
            sql=sql,
            overrides=dict(overrides or {}),
            future=loop.create_future(),
        )
        state.queue.append(request)
        state.admitted += 1
        self._total_queued += 1
        assert self._idle is not None
        self._idle.clear()
        self._dispatch()
        return await request.future

    def _dispatch(self) -> None:
        """Start queued work while workers and quotas allow (RR)."""
        while self._active < self.workers:
            request = self._next_request()
            if request is None:
                return
            state = request.state
            state.running += 1
            self._active += 1
            self._total_queued -= 1
            loop = asyncio.get_running_loop()
            worker_future = loop.run_in_executor(
                self._pool, self._execute, request
            )
            worker_future.add_done_callback(
                lambda done, request=request: self._finish(request, done)
            )

    def _next_request(self) -> Optional[_Request]:
        """The next runnable request, scanning tenants round-robin.

        Starts at the cursor, takes the first tenant with queued work
        and spare concurrency, and leaves the cursor just past it — so
        consecutive grants rotate across tenants instead of draining
        one queue to exhaustion.
        """
        ring = self._ring
        for step in range(len(ring)):
            index = (self._rr + step) % len(ring)
            state = self._tenants[ring[index]]
            if state.queue and state.running < state.config.max_concurrent:
                self._rr = (index + 1) % len(ring)
                return state.queue.popleft()
        return None

    # ------------------------------------------------------------------ #
    # execution (worker threads)
    # ------------------------------------------------------------------ #

    def _execute(self, request: _Request) -> Dict[str, Any]:
        """Run one admitted query on a pooled session (worker thread)."""
        state = request.state
        session = state.session
        started = time.monotonic()
        # build the per-request governor from the tenant's options
        # layered with the request overrides, and keep a handle on it:
        # the server cancels it on shutdown timeouts and harvests its
        # degradation/spill counters afterwards
        overrides = dict(request.overrides)
        governor = session.governor(
            overrides.get("timeout_ms"),
            overrides.get("memory_limit_mb"),
            overrides.get("degrade"),
        )
        request.governor = governor
        # `logic` has no per-call kwarg on execute(); it travels as an
        # options bundle through the same layering
        logic = overrides.pop("logic", None)
        options = ExecutionOptions(logic=logic) if logic is not None else None
        prepared = session.prepare(request.sql)
        result = prepared.execute(
            governor=governor, options=options, **overrides
        )
        elapsed_ms = (time.monotonic() - started) * 1000.0
        return {
            "tenant": state.config.name,
            "columns": list(result.schema.names),
            "rows": [[_json_value(v) for v in row] for row in result.rows],
            "row_count": len(result),
            "elapsed_ms": round(elapsed_ms, 3),
        }

    def _finish(self, request: _Request, done: "asyncio.Future") -> None:
        """Completion callback (event-loop thread): account + respond."""
        state = request.state
        state.running -= 1
        self._active -= 1
        exc = done.exception()
        governor = request.governor
        if governor is not None:
            state.degradations += len(governor.degradations)
            state.spills += governor.spill_count
        if exc is not None:
            state.failed += 1
            if not request.future.done():
                request.future.set_exception(exc)
        else:
            payload = done.result()
            state.completed += 1
            state.rows_returned += payload["row_count"]
            state.busy_ms += payload["elapsed_ms"]
            if not request.future.done():
                request.future.set_result(payload)
        self._dispatch()
        if self._active == 0 and self._total_queued == 0:
            assert self._idle is not None
            self._idle.set()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload (event-loop thread: consistent)."""
        return {
            "server": {
                "draining": self._draining,
                "workers": self.workers,
                "queue_size": self.queue_size,
                "queued": self._total_queued,
                "active": self._active,
                "requests": self.requests_total,
                "rejected_overload": self.rejected_overload,
                "rejected_draining": self.rejected_draining,
                "uptime_ms": round(
                    (time.monotonic() - self._started) * 1000.0, 1
                ),
            },
            "cache": self._cache.stats_snapshot(),
            "feedback": {
                "observations": len(self._feedback),
                "epoch": self._feedback.epoch,
            },
            "tenants": {
                name: self._tenants[name].snapshot() for name in self._ring
            },
        }

    # ------------------------------------------------------------------ #
    # HTTP front-end
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(response_bytes(
                        exc.status,
                        {"error": {"type": "ProtocolError",
                                   "message": str(exc)}},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload = await self._route(request)
                keep = request.keep_alive and status < 500
                writer.write(response_bytes(status, payload, keep))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, request: HttpRequest):
        """Dispatch one HTTP request to (status, JSON payload)."""
        if request.path == "/health":
            if request.method != "GET":
                return 405, {"error": {"type": "ProtocolError",
                                       "message": "GET only"}}
            status = "draining" if self._draining else "ok"
            return (503 if self._draining else 200), {"status": status}
        if request.path == "/stats":
            if request.method != "GET":
                return 405, {"error": {"type": "ProtocolError",
                                       "message": "GET only"}}
            return 200, self.stats()
        if request.path == "/query":
            if request.method != "POST":
                return 405, {"error": {"type": "ProtocolError",
                                       "message": "POST only"}}
            try:
                sql, tenant, overrides = parse_query_body(request.json())
            except ProtocolError as exc:
                return exc.status, {"error": {"type": "ProtocolError",
                                              "message": str(exc)}}
            try:
                payload = await self.submit(sql, tenant, overrides)
                return 200, payload
            except ReproError as exc:
                return http_status_for(exc), {
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                }
            except Exception as exc:  # never leak a traceback as a hang
                return 500, {
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                }
        return 404, {"error": {"type": "ProtocolError",
                               "message": f"no route {request.path!r}"}}


async def run_server(
    server: QueryServer, shutdown: Optional[asyncio.Event] = None
) -> None:
    """Start *server*, serve until *shutdown* (or forever), then drain.

    The CLI wires SIGTERM/SIGINT to the *shutdown* event, giving the
    documented graceful exit: in-flight queries finish, new ones are
    rejected, the pool joins, the listener closes.
    """
    await server.start()
    try:
        if shutdown is None:
            shutdown = asyncio.Event()
        await shutdown.wait()
        await server.drain()
    finally:
        await server.stop()
