"""Tenant configuration and accounting for the query server.

A *tenant* is one logical client of the server — a dashboard, a batch
pipeline, an ad-hoc analyst — identified by the ``tenant`` field of its
requests.  Each tenant carries

* an **admission quota** — at most ``max_concurrent`` of its queries
  execute at once, at most ``max_queued`` more may wait; beyond that
  its submissions are rejected with the typed
  :class:`~repro.errors.TenantQuotaExceededError` while other tenants'
  traffic is unaffected (per-tenant queues are drained round-robin, so
  a flooding tenant can saturate only its own concurrency share);
* **execution defaults** — an :class:`~repro.options.ExecutionOptions`
  bundle the server turns into a per-request
  :class:`~repro.engine.governor.ResourceGovernor` (timeout, memory
  budget, spill directory, degradation policy) and strategy/backend/
  logic defaults, all overridable per request within the usual
  layering rules.

:class:`TenantState` is the server-side ledger for one tenant: its
waiting queue, in-flight count and monotonic counters.  All of it is
touched only from the server's event loop, so it needs no locks — the
worker threads report completions back to the loop via callbacks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from ..errors import InvalidArgumentError
from ..options import ExecutionOptions

#: tenant name used when a request carries no ``tenant`` field
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantConfig:
    """Admission quota + execution defaults for one tenant.

    ``max_concurrent`` bounds how many of this tenant's queries execute
    simultaneously; ``max_queued`` bounds how many more may wait for a
    worker.  A submission arriving with ``max_concurrent + max_queued``
    requests already in the system for this tenant is rejected.
    """

    name: str
    max_concurrent: int = 4
    max_queued: int = 16
    options: ExecutionOptions = field(default_factory=ExecutionOptions)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise InvalidArgumentError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        for attr in ("max_concurrent", "max_queued"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise InvalidArgumentError(
                    f"tenant {self.name!r}: {attr} must be an integer, "
                    f"got {value!r}"
                )
        if self.max_concurrent < 1:
            raise InvalidArgumentError(
                f"tenant {self.name!r}: max_concurrent must be >= 1"
            )
        if self.max_queued < 0:
            raise InvalidArgumentError(
                f"tenant {self.name!r}: max_queued must be >= 0"
            )
        if not isinstance(self.options, ExecutionOptions):
            raise InvalidArgumentError(
                f"tenant {self.name!r}: options must be ExecutionOptions, "
                f"got {type(self.options).__name__}"
            )

    @property
    def capacity(self) -> int:
        """Requests admitted for this tenant at once (running + queued)."""
        return self.max_concurrent + self.max_queued

    @staticmethod
    def from_dict(name: str, spec: Dict[str, Any]) -> "TenantConfig":
        """Build a config from the ``--tenants`` JSON file's entry.

        ``spec`` may carry ``max_concurrent``, ``max_queued`` and an
        ``options`` sub-object whose keys are
        :data:`~repro.options.OPTION_FIELDS` names.  Unknown keys are
        rejected so a typo'd quota file fails at startup, not silently.
        """
        if not isinstance(spec, dict):
            raise InvalidArgumentError(
                f"tenant {name!r}: expected an object, got {spec!r}"
            )
        unknown = set(spec) - {"max_concurrent", "max_queued", "options"}
        if unknown:
            raise InvalidArgumentError(
                f"tenant {name!r}: unknown key(s) {sorted(unknown)}"
            )
        opts = spec.get("options") or {}
        if not isinstance(opts, dict):
            raise InvalidArgumentError(
                f"tenant {name!r}: options must be an object"
            )
        return TenantConfig(
            name=name,
            max_concurrent=spec.get("max_concurrent", 4),
            max_queued=spec.get("max_queued", 16),
            options=ExecutionOptions().replace(**opts),
        )


class TenantState:
    """One tenant's server-side ledger (event-loop confined).

    ``queue`` holds admitted-but-waiting requests; ``running`` counts
    in-flight executions.  The counters are monotonic over the server's
    lifetime and surface verbatim in ``/stats``.
    """

    def __init__(self, config: TenantConfig, session) -> None:
        self.config = config
        #: the pooled :class:`~repro.session.Session` executing this
        #: tenant's queries (shares the server-wide plan cache)
        self.session = session
        self.queue: Deque[Any] = deque()
        self.running = 0
        # -- monotonic counters ---------------------------------------- #
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected_quota = 0
        self.rows_returned = 0
        self.degradations = 0
        self.spills = 0
        self.busy_ms = 0.0

    @property
    def in_system(self) -> int:
        """Requests currently admitted: waiting + executing."""
        return len(self.queue) + self.running

    def over_quota(self) -> bool:
        """Whether one more admission would exceed this tenant's quota."""
        return self.in_system >= self.config.capacity

    def snapshot(self) -> Dict[str, Any]:
        """The ``/stats`` view of this tenant (loop-thread consistent)."""
        return {
            "max_concurrent": self.config.max_concurrent,
            "max_queued": self.config.max_queued,
            "queued": len(self.queue),
            "running": self.running,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_quota": self.rejected_quota,
            "rows_returned": self.rows_returned,
            "degradations": self.degradations,
            "spills": self.spills,
            "busy_ms": round(self.busy_ms, 3),
        }


def resolve_tenant_config(
    name: str,
    configured: Dict[str, TenantConfig],
    default: Optional[TenantConfig],
) -> TenantConfig:
    """The config governing tenant *name*.

    Explicitly configured tenants use their own entry; anyone else gets
    the default template's quotas and options under their own name, so
    an open server still bounds every individual caller.
    """
    if name in configured:
        return configured[name]
    template = default if default is not None else TenantConfig(DEFAULT_TENANT)
    return TenantConfig(
        name=name,
        max_concurrent=template.max_concurrent,
        max_queued=template.max_queued,
        options=template.options,
    )
