"""Emulation of the commercial optimizer the paper calls "System A".

The paper benchmarks its approach against an unnamed commercial DBMS
whose plan choices Section 5.2 narrates in detail.  This module encodes
those rules as an executable plan chooser so the benchmark harness can
reproduce the *shape* of every figure:

1. A subquery is **unnested into a semijoin** when its linking operator
   is positive (EXISTS / IN / θ SOME) and into an **antijoin** when it is
   NOT EXISTS — provided its whole subtree is *self-contained*: every
   block in it correlates only with its adjacent parent block, through
   equality predicates.  ("If the linking operators are any combination
   of ANY/SOME, IN, EXISTS and NOT EXISTS, the native approach ... is the
   combination of semijoin and/or antijoin.")

2. ``θ ALL`` / ``NOT IN`` is unnested into an antijoin on the negated
   comparison **only when the linked attribute carries a NOT NULL
   constraint** (and rule 1's shape conditions hold).  "However, if the
   NOT NULL constraint is dropped, even though there are no null values
   ..., antijoin is not used."

3. Everything else falls back to **nested iteration**: for each candidate
   outer tuple the subquery is re-evaluated, accessing the inner table
   through the best available index on its equality-bound columns (the
   widest index whose key is a subset of the bound columns — the paper's
   combined ``(l_partkey, l_suppkey)`` index vs the single ``l_suppkey``
   index is exactly this choice), then filtering fetched rows by the
   block's local predicate and any remaining correlations.  EXISTS-style
   children short-circuit at the first qualifying row (nested-loop
   semi/antijoin behaviour).

The emulation runs on the same engine and data as every other strategy,
so results are comparable and differentially testable while costs follow
the plan shapes the paper observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..strategies import register
from ..errors import PlanError
from ..engine.catalog import Database, Table
from ..engine.expressions import (
    Col,
    Comparison,
    EvalContext,
    conjoin,
    truth,
)
from ..engine.index import HashIndex
from ..engine.metrics import current_metrics
from ..engine.operators import AntiJoin, Filter, SemiJoin, as_relation
from ..engine.relation import Relation, Row
from ..engine.trace import CONTRACT_FILTERING, op_span
from ..engine.schema import Column, Schema
from ..engine.types import (
    NULL,
    TriBool,
    is_null,
    negate_op,
    sql_compare,
    tri_all,
    tri_any,
)
from ..core.blocks import AGG_OP, LinkSpec, NestedQuery, QueryBlock
from ..core.linking import aggregate_value
from ..core.optimizer import cost_system_a
from ..core.reduce import ReducedBlock, reduce_all
from ..core.selection import _tri_value

#: plan actions for a child subquery
SEMIJOIN = "semijoin"
ANTIJOIN = "antijoin"
ANTIJOIN_NEGATED = "antijoin-negated-theta"
NESTED_ITERATION = "nested-iteration"


#: unique marker for "generator exhausted" checks
_SENTINEL = object()


@dataclass
class ChildPlan:
    block: QueryBlock
    action: str
    reason: str


@register(
    "system-a-native",
    description="System A emulation: per-tuple index probes (paper §5)",
    cost=cost_system_a,
)
class SystemAEmulationStrategy:
    """Plan chooser + executor mimicking the paper's System A."""

    name = "system-a-native"

    # ------------------------------------------------------------------ #
    # plan selection
    # ------------------------------------------------------------------ #

    def plan(self, query: NestedQuery, db: Database) -> Dict[int, ChildPlan]:
        """Choose an action for every non-root block."""
        plans: Dict[int, ChildPlan] = {}

        def visit(block: QueryBlock, parent_unnested: bool) -> None:
            for child in block.children:
                action, reason = self._choose(child, query, db, parent_unnested)
                plans[child.index] = ChildPlan(child, action, reason)
                visit(child, parent_unnested and action != NESTED_ITERATION)

        visit(query.root, True)
        return plans

    def _choose(
        self,
        child: QueryBlock,
        query: NestedQuery,
        db: Database,
        parent_unnested: bool,
    ) -> Tuple[str, str]:
        link = child.link
        assert link is not None
        if link.mark is not None:
            return (
                NESTED_ITERATION,
                "disjunctive linking predicate (no unnesting under OR/NOT)",
            )
        if link.operator == AGG_OP:
            return (
                NESTED_ITERATION,
                f"aggregate linking predicate {link.agg_text}",
            )
        shape_reason = self._self_contained(child, query)
        if shape_reason is not None:
            return NESTED_ITERATION, shape_reason
        if not parent_unnested:
            return (
                NESTED_ITERATION,
                "enclosing block already evaluated by nested iteration",
            )
        if link.operator in ("exists", "in", "some"):
            return SEMIJOIN, f"positive operator {link.operator.upper()}"
        if link.operator == "not_exists":
            return ANTIJOIN, "NOT EXISTS"
        # ALL / NOT IN: the antijoin on the negated comparison is only
        # sound when neither side of the theta can be NULL.  A NULL linked
        # value makes every comparison UNKNOWN, and a NULL *linking* value
        # makes ``x <> ALL {..}`` UNKNOWN over a non-empty inner set — the
        # antijoin would keep such rows, so both need NOT NULL.
        assert link.inner_ref is not None and link.outer_ref is not None
        alias, _, column = link.inner_ref.rpartition(".")
        table_name = child.tables.get(alias)
        if table_name is None:
            return NESTED_ITERATION, "linked attribute outside the block"
        if not db.table(table_name).schema.column(column).not_null:
            return (
                NESTED_ITERATION,
                f"{link.operator.upper()} with NULLable linked attribute "
                f"{link.inner_ref}",
            )
        if not self._column_not_null(link.outer_ref, query, db):
            return (
                NESTED_ITERATION,
                f"{link.operator.upper()} with NULLable linking attribute "
                f"{link.outer_ref}",
            )
        return (
            ANTIJOIN_NEGATED,
            f"{link.operator.upper()} with NOT NULL {link.inner_ref}",
        )

    @staticmethod
    def _column_not_null(ref: str, query: NestedQuery, db: Database) -> bool:
        """Whether the column behind a qualified ref carries NOT NULL."""
        alias, _, column = ref.rpartition(".")
        for block in query.root.walk():
            table_name = block.tables.get(alias)
            if table_name is not None:
                return db.table(table_name).schema.column(column).not_null
        return False

    @staticmethod
    def _self_contained(child: QueryBlock, query: NestedQuery) -> Optional[str]:
        """None if subtree(child) only has adjacent equality correlations."""
        parent = query.parent_of(child)
        assert parent is not None
        parent_of: Dict[int, QueryBlock] = {child.index: parent}
        for b in child.walk():
            for c in b.children:
                parent_of[c.index] = b
        for b in child.walk():
            expected = parent_of[b.index]
            for corr in b.correlations:
                alias = corr.outer_ref.rpartition(".")[0]
                if alias not in expected.tables:
                    return (
                        f"block {b.index} correlates with a non-adjacent "
                        f"block ({corr.describe()})"
                    )
                if not corr.is_equality:
                    return (
                        f"non-equality correlation {corr.describe()} "
                        f"prevents hash semijoin/antijoin"
                    )
        return None

    def explain(self, query: NestedQuery, db: Database) -> str:
        """Human-readable plan description (one line per subquery)."""
        plans = self.plan(query, db)
        lines = []
        for idx in sorted(plans):
            p = plans[idx]
            lines.append(
                f"block {idx} [{p.block.link.describe()}]: {p.action}"
                f"  -- {p.reason}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        plans = self.plan(query, db)
        reduced = self._reduce_needed(query, plans, db)
        root = query.root
        rel = reduced[root.index].relation
        rel = self._apply_children(root, rel, plans, reduced, query, db)
        out = rel.project(root.select_refs)
        if root.distinct:
            out = out.distinct()
        return out

    @staticmethod
    def _reduce_needed(
        query: NestedQuery, plans: Dict[int, "ChildPlan"], db: Database
    ) -> Dict[int, ReducedBlock]:
        """Reduce only the root and unnested blocks.

        Blocks evaluated by nested iteration are accessed through base
        tables and indexes per outer tuple — materializing their reduced
        relation up front would charge System A for scans its plan never
        performs.  Grouped subquery blocks are the exception even under
        nested iteration: they are uncorrelated by construction, so their
        aggregation happens exactly once here rather than per probe.
        """
        from ..core.reduce import _is_grouped_subquery, reduce_block

        reduced: Dict[int, ReducedBlock] = {
            query.root.index: reduce_block(query.root, db)
        }

        def visit(block: QueryBlock) -> None:
            for child in block.children:
                if plans[child.index].action != NESTED_ITERATION:
                    reduced[child.index] = reduce_block(child, db)
                elif _is_grouped_subquery(child):
                    reduced[child.index] = reduce_block(child, db)
                visit(child)

        visit(query.root)
        return reduced

    def _apply_children(
        self,
        block: QueryBlock,
        rel: Relation,
        plans: Dict[int, ChildPlan],
        reduced: Dict[int, ReducedBlock],
        query: NestedQuery,
        db: Database,
    ) -> Relation:
        for child in block.children:
            if child.link is not None and child.link.mark is not None:
                continue  # combined via the block residual below
            plan = plans[child.index]
            if plan.action == NESTED_ITERATION:
                rel = self._nested_iterate(rel, child, query, db, reduced)
            else:
                child_rel = self._apply_children(
                    child, reduced[child.index].relation, plans, reduced,
                    query, db,
                )
                rel = self._join_unnested(rel, child, child_rel, plan.action)
        if block.residual is not None:
            rel = self._apply_residual(block, rel, query, db, reduced)
        return rel

    def _apply_residual(
        self,
        block: QueryBlock,
        rel: Relation,
        query: NestedQuery,
        db: Database,
        reduced: Dict[int, ReducedBlock],
    ) -> Relation:
        """Filter by the block's disjunctive residual: evaluate every
        marked child's linking predicate per tuple, bind the verdicts as
        mark values and keep rows where the residual is TRUE."""
        marked = [
            c
            for c in block.children
            if c.link is not None and c.link.mark is not None
        ]
        names = sorted(c.link.mark for c in marked)
        by_name = {c.link.mark: c for c in marked}
        mark_schema = Schema([Column(name) for name in names])
        metrics = current_metrics()
        out_rows: List[Row] = []
        with op_span(
            "residual-probe",
            contract=CONTRACT_FILTERING,
            block=block.index,
        ) as span:
            for row in rel.rows:
                metrics.add("rows_scanned")
                ctx = EvalContext.single(rel.schema, row)
                mark_row = tuple(
                    _tri_value(
                        self._link_holds(by_name[name], ctx, query, db, reduced)
                    )
                    for name in names
                )
                rctx = ctx.push(mark_schema, mark_row)
                metrics.add("linking_evals")
                if truth(block.residual, rctx).is_true():
                    out_rows.append(row)
            if span is not None:
                span.add("rows_in", len(rel.rows))
                span.add("rows_out", len(out_rows))
        return Relation(rel.schema, out_rows)

    @staticmethod
    def _join_unnested(
        rel: Relation, child: QueryBlock, child_rel: Relation, action: str
    ) -> Relation:
        link = child.link
        assert link is not None
        equi = [c for c in child.correlations if c.is_equality]
        residuals = [c.as_expr() for c in child.correlations if not c.is_equality]
        left_keys = [c.outer_ref for c in equi]
        right_keys = [c.inner_ref for c in equi]
        if action == SEMIJOIN:
            if link.operator in ("in", "some"):
                residuals.append(
                    Comparison(
                        link.effective_theta,
                        Col(link.outer_ref),
                        Col(link.inner_ref),
                    )
                )
            op = SemiJoin
        elif action == ANTIJOIN:
            op = AntiJoin
        elif action == ANTIJOIN_NEGATED:
            residuals.append(
                Comparison(
                    negate_op(link.effective_theta),
                    Col(link.outer_ref),
                    Col(link.inner_ref),
                )
            )
            op = AntiJoin
        else:  # pragma: no cover - guarded by caller
            raise PlanError(f"not an unnesting action: {action}")
        return as_relation(
            op(
                rel,
                child_rel,
                left_keys,
                right_keys,
                residual=conjoin(residuals) if residuals else None,
            )
        )

    # ------------------------------------------------------------------ #
    # nested iteration with index access
    # ------------------------------------------------------------------ #

    def _nested_iterate(
        self,
        rel: Relation,
        child: QueryBlock,
        query: NestedQuery,
        db: Database,
        reduced: Dict[int, ReducedBlock],
    ) -> Relation:
        out_rows: List[Row] = []
        metrics = current_metrics()
        with op_span(
            "nested-iteration-probe",
            contract=CONTRACT_FILTERING,
            block=child.index,
        ) as span:
            for row in rel.rows:
                metrics.add("rows_scanned")
                ctx = EvalContext.single(rel.schema, row)
                if self._link_holds(child, ctx, query, db, reduced).is_true():
                    out_rows.append(row)
            if span is not None:
                span.add("rows_in", len(rel.rows))
                span.add("rows_out", len(out_rows))
        return Relation(rel.schema, out_rows)

    def _link_holds(
        self,
        child: QueryBlock,
        ctx: EvalContext,
        query: NestedQuery,
        db: Database,
        reduced: Dict[int, ReducedBlock],
    ) -> TriBool:
        link = child.link
        assert link is not None
        values = self._iterate_block(child, ctx, query, db, reduced)
        if link.operator == "exists":
            # nested-loop semijoin behaviour: stop at the first match
            return TriBool.from_bool(next(iter(values), _SENTINEL) is not _SENTINEL)
        if link.operator == "not_exists":
            return TriBool.from_bool(next(iter(values), _SENTINEL) is _SENTINEL)
        if link.operator == AGG_OP:
            all_values = list(values)
            agg = aggregate_value(
                link.agg_func,
                [v for v in all_values if not is_null(v)],
                len(all_values),
            )
            lhs = (
                link.outer_const[0]
                if link.outer_const is not None
                else ctx.lookup(link.outer_ref)
            )
            return sql_compare(link.theta, lhs, agg)
        lhs = ctx.lookup(link.outer_ref)

        comparisons = (
            sql_compare(link.effective_theta, lhs, v) for v in values
        )
        if link.quantifier == "all":
            return tri_all(comparisons)
        # tri_any short-circuits on the first TRUE comparison, so SOME/ANY
        # stops probing early just like an index nested-loop semijoin.
        return tri_any(comparisons)

    def _iterate_block(
        self,
        block: QueryBlock,
        ctx: EvalContext,
        query: NestedQuery,
        db: Database,
        reduced: Dict[int, ReducedBlock],
    ):
        """Evaluate a subquery block per-tuple, probing indexes.

        Lazily yields the linked-attribute values of qualifying tuples
        (NULL placeholders for EXISTS blocks), so existential and SOME
        consumers can stop early.  Multi-table blocks fall back to
        scanning the reduced join; the paper's workloads are all
        single-table blocks.
        """
        link = block.link
        assert link is not None
        if block.group_by or block.aggregates or block.having is not None:
            # grouped subquery blocks are uncorrelated, so their
            # aggregation was reduced exactly once up front; the probe
            # just re-reads the grouped rows
            grouped = reduced[block.index].relation
            pos = (
                grouped.schema.index_of(link.inner_ref)
                if link.inner_ref is not None
                else None
            )
            for row in grouped.rows:
                yield row[pos] if pos is not None else NULL
            return
        metrics = current_metrics()
        if len(block.tables) != 1:
            candidates = self._scan_multi(block, db)
            bound_corrs = list(block.correlations)
        else:
            alias, table_name = next(iter(block.tables.items()))
            table = db.table(table_name)
            candidates, bound_corrs = self._access_path(
                block, table, alias, ctx
            )
        value_pos = None
        schema = candidates.schema
        if link.inner_ref is not None:
            value_pos = schema.index_of(link.inner_ref)
        local = block.local_predicate
        for row in candidates.rows:
            metrics.add("rows_scanned")
            row_ctx = ctx.push(schema, row)
            if local is not None:
                metrics.add("predicate_evals")
                if not truth(local, row_ctx).is_true():
                    continue
            ok = True
            for corr in bound_corrs:
                metrics.add("predicate_evals")
                if not truth(corr.as_expr(), row_ctx).is_true():
                    ok = False
                    break
            if not ok:
                continue
            passed = True
            for grandchild in block.children:
                # marked grandchildren (links under OR/NOT) do not filter
                # individually; the block residual combines their verdicts
                if grandchild.link is not None and grandchild.link.mark is not None:
                    continue
                if not self._link_holds(
                    grandchild, row_ctx, query, db, reduced
                ).is_true():
                    passed = False
                    break
            if not passed:
                continue
            if block.residual is not None:
                marks = {
                    c.link.mark: self._link_holds(c, row_ctx, query, db, reduced)
                    for c in block.children
                    if c.link is not None and c.link.mark is not None
                }
                names = sorted(marks)
                rctx = row_ctx.push(
                    Schema([Column(name) for name in names]),
                    tuple(_tri_value(marks[name]) for name in names),
                )
                metrics.add("linking_evals")
                if not truth(block.residual, rctx).is_true():
                    continue
            yield row[value_pos] if value_pos is not None else NULL

    def _access_path(
        self,
        block: QueryBlock,
        table: Table,
        alias: str,
        ctx: EvalContext,
    ) -> Tuple[Relation, List]:
        """Pick the widest usable index for the bound equality correlations.

        Returns (candidate rows as a relation under the block's alias,
        correlations that still need row-level checking).
        """
        equality = [
            c
            for c in block.correlations
            if c.is_equality and ctx.resolvable(c.outer_ref)
        ]
        inner_columns = [c.inner_ref.rpartition(".")[2] for c in equality]
        best = table.any_hash_index_covering(inner_columns)
        if best is None:
            rel = table.relation
            if alias != table.name:
                rel = rel.rename_table(alias)
            return rel, list(block.correlations)
        index, key = best
        covered = {col: corr for col, corr in zip(inner_columns, equality)}
        probe_values = [ctx.lookup(covered[col].outer_ref) for col in key]
        rows = index.probe(probe_values)
        rel = Relation(table.relation.schema, rows)
        if alias != table.name:
            rel = rel.rename_table(alias)
        remaining = [
            c
            for c in block.correlations
            if c not in [covered[col] for col in key]
        ]
        return rel, remaining

    @staticmethod
    def _scan_multi(block: QueryBlock, db: Database) -> Relation:
        from ..core.reduce import _join_block_tables

        return _join_block_tables(block, db)
