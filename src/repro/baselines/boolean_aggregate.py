"""Boolean-aggregate evaluation of linking predicates (the [2] approach).

Badia's earlier "Computing SQL Queries with Boolean Aggregates" applies
the linking condition to each tuple of a group and aggregates the truth
values with three-valued AND (for ALL-style operators) or OR (for
SOME-style operators); tuples that fail are *marked* rather than
discarded.  This is semantically the same computation the nested
relational approach performs with nest + linking selection — the
difference is purely operational (an aggregate operator versus a nested
relation), which is exactly what the ablation benchmark measures.

Implementation: the same bottom-up pipeline as the count rewrite, but
each group's verdict comes from
:class:`~repro.engine.operators.aggregate.GroupAggregate`'s ``bool_and``
/ ``bool_or`` aggregates evaluated over the joined rows, with the
NULL-rid guard expressed inside the aggregated predicate (a padded inner
tuple contributes TRUE to AND-aggregates and FALSE to OR-aggregates —
the neutral elements — so empty groups resolve correctly).

Scope: linear, linearly correlated queries, like the other bottom-up
baselines.
"""

from __future__ import annotations

from typing import List, Optional

from ..strategies import register
from ..errors import PlanError
from ..engine.catalog import Database
from ..engine.expressions import (
    Col,
    Comparison,
    IsNull,
    Or,
    And,
    Not,
    conjoin,
)
from ..engine.operators import (
    AggSpec,
    OuterCrossJoin,
    GroupAggregate,
    LeftOuterHashJoin,
    as_relation,
)
from ..engine.relation import Relation
from ..core.blocks import NestedQuery, QueryBlock
from ..core.optimizer import cost_boolean_aggregate
from ..core.reduce import reduce_all


@register(
    "boolean-aggregate",
    description="boolean-aggregate (mark join) rewrite baseline",
    cost=cost_boolean_aggregate,
)
class BooleanAggregateStrategy:
    """Linking predicates as Boolean aggregates over marked tuples."""

    name = "boolean-aggregate"

    def applicable(self, query: NestedQuery) -> bool:
        return (
            query.is_linear
            and query.is_linearly_correlated()
            and not query.has_aggregate_link
            and not query.has_disjunction
        )

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        if not self.applicable(query):
            raise PlanError(
                "boolean-aggregate evaluation requires a linear, linearly "
                "correlated query"
            )
        chain = list(query.root.walk())
        reduced = reduce_all(query, db)
        if len(chain) == 1:
            out = reduced[query.root.index].relation.project(
                query.root.select_refs
            )
            return out.distinct() if query.root.distinct else out
        carry: Optional[Relation] = None
        for parent, child in zip(reversed(chain[:-1]), reversed(chain[1:])):
            crel = reduced[child.index]
            child_rel = carry if carry is not None else crel.relation
            parent_rel = reduced[parent.index].relation
            link = child.link
            assert link is not None

            equi = [c for c in child.correlations if c.is_equality]
            other = [c for c in child.correlations if not c.is_equality]
            if child.correlations:
                joined = as_relation(
                    LeftOuterHashJoin(
                        parent_rel,
                        child_rel,
                        [c.outer_ref for c in equi],
                        [c.inner_ref for c in equi],
                        residual=conjoin([c.as_expr() for c in other])
                        if other
                        else None,
                    )
                )
            else:
                joined = as_relation(OuterCrossJoin(parent_rel, child_rel))

            padded = IsNull(Col(crel.rid_ref))
            if link.operator == "exists":
                spec = AggSpec(
                    "bool_or",
                    predicate=And(Not(padded), _lit_true()),
                    name="verdict",
                )
            elif link.operator == "not_exists":
                spec = AggSpec(
                    "bool_and", predicate=padded, name="verdict"
                )
            elif link.quantifier == "all":
                # padded OR (A θ B): padded rows contribute TRUE (neutral)
                spec = AggSpec(
                    "bool_and",
                    predicate=Or(padded, _theta(link)),
                    name="verdict",
                )
            else:
                # (NOT padded) AND (A θ B): padded rows contribute FALSE
                spec = AggSpec(
                    "bool_or",
                    predicate=And(Not(padded), _theta(link)),
                    name="verdict",
                )

            group_refs = list(parent_rel.schema.names)
            agg = GroupAggregate(joined, group_refs, [spec]).run()
            verdict_pos = agg.schema.index_of("verdict")
            out_rows = [
                row[:-1]
                for row in agg.rows
                if row[verdict_pos] is True
            ]
            carry = Relation(parent_rel.schema, out_rows)
        assert carry is not None
        out = carry.project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out


def _theta(link) -> Comparison:
    return Comparison(link.effective_theta, Col(link.outer_ref), Col(link.inner_ref))


def _lit_true():
    from ..engine.expressions import Literal

    return Literal(True)
