"""Count-based rewriting of non-aggregate subqueries (the [1]/[6] family).

Kim-style transformations and the MD-join / APPLY approaches the paper
surveys rewrite non-aggregate subqueries as *aggregate* ones: ``A θ ALL
(SELECT B ...)`` becomes "the count of inner tuples violating A θ B is
zero".  Done naively this inherits the NULL bugs of Section 2; this
implementation is the NULL-*correct* member of the family, counting three
buckets per outer tuple under three-valued logic:

* ``cnt_true``    — inner tuples where A θ B is TRUE,
* ``cnt_false``   — inner tuples where A θ B is FALSE,
* ``cnt_unknown`` — inner tuples where A θ B is UNKNOWN,

and deciding the linking predicate from the bucket counts (e.g. θ ALL is
TRUE iff ``cnt_false = cnt_unknown = 0``).  The point of carrying this
baseline is the ablation in the benchmarks: it does the same outer joins
as the nested relational approach but replaces nest + linking selection
with a grouped aggregation — a "double computation" that the MD-join
needs care to avoid (paper Section 2).

Scope: linear, linearly correlated queries evaluated bottom-up (the same
precondition as :class:`~repro.core.optimized.BottomUpLinearStrategy`);
other shapes raise :class:`~repro.errors.PlanError`, mirroring the paper's
remark that the MD-join "only commutes with other joins and selections in
a selective manner".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..strategies import register
from ..errors import PlanError
from ..engine.catalog import Database
from ..engine.expressions import EvalContext, conjoin
from ..engine.metrics import current_metrics
from ..engine.trace import CONTRACT_FILTERING, current_tracer
from ..engine.operators import LeftOuterHashJoin, OuterCrossJoin, as_relation
from ..engine.relation import Relation, Row
from ..engine.types import NULL, TriBool, is_null, sql_compare
from ..core.blocks import LinkSpec, NestedQuery, QueryBlock
from ..core.optimizer import cost_count_rewrite
from ..core.reduce import ReducedBlock, reduce_all


@register(
    "count-rewrite",
    description="Kim-style COUNT-bug-aware rewrite baseline",
    cost=cost_count_rewrite,
)
class CountRewriteStrategy:
    """NULL-correct count-based unnesting for linear queries."""

    name = "count-rewrite"

    def applicable(self, query: NestedQuery) -> bool:
        return (
            query.is_linear
            and query.is_linearly_correlated()
            and not query.has_aggregate_link
            and not query.has_disjunction
        )

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        if not self.applicable(query):
            raise PlanError(
                "count rewrite requires a linear, linearly correlated query"
            )
        chain = list(query.root.walk())
        reduced = reduce_all(query, db)
        if len(chain) == 1:
            out = reduced[query.root.index].relation.project(
                query.root.select_refs
            )
            return out.distinct() if query.root.distinct else out
        carry: Optional[Relation] = None
        for parent, child in zip(reversed(chain[:-1]), reversed(chain[1:])):
            crel = reduced[child.index]
            child_rel = carry if carry is not None else crel.relation
            parent_rel = reduced[parent.index].relation
            carry = self._count_filter(
                parent_rel, child_rel, child, crel.rid_ref
            )
        assert carry is not None
        out = carry.project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out

    # ------------------------------------------------------------------ #

    def _count_filter(
        self,
        parent_rel: Relation,
        child_rel: Relation,
        child: QueryBlock,
        child_rid: str,
    ) -> Relation:
        """Outer-join parent with child, bucket-count the linking
        comparison per parent tuple, keep parents passing the count test."""
        link = child.link
        assert link is not None
        equi = [c for c in child.correlations if c.is_equality]
        other = [c for c in child.correlations if not c.is_equality]
        if child.correlations:
            joined = as_relation(
                LeftOuterHashJoin(
                    parent_rel,
                    child_rel,
                    [c.outer_ref for c in equi],
                    [c.inner_ref for c in equi],
                    residual=conjoin([c.as_expr() for c in other]) if other else None,
                )
            )
        else:
            joined = as_relation(OuterCrossJoin(parent_rel, child_rel))

        schema = joined.schema
        parent_width = len(parent_rel.schema)
        rid_pos = schema.index_of(child_rid)
        lhs_pos = (
            schema.index_of(link.outer_ref) if link.outer_ref is not None else None
        )
        val_pos = (
            schema.index_of(link.inner_ref) if link.inner_ref is not None else None
        )
        metrics = current_metrics()

        # Group by the parent prefix (parent rows are unique, so the full
        # prefix is a valid group key) and bucket-count.
        from ..engine.types import row_group_key

        counts: Dict[tuple, List[int]] = {}
        reps: Dict[tuple, Row] = {}
        order: List[tuple] = []
        theta = link.effective_theta
        tracer = current_tracer()
        span = (
            tracer.open("count-filter", kind="phase", contract=CONTRACT_FILTERING)
            if tracer is not None
            else None
        )
        for row in joined.rows:
            metrics.add("rows_scanned")
            key = row_group_key(row[:parent_width])
            if key not in counts:
                counts[key] = [0, 0, 0, 0]  # true, false, unknown, present
                reps[key] = row[:parent_width]
                order.append(key)
            bucket = counts[key]
            if is_null(row[rid_pos]):
                continue  # padded: no inner tuple
            bucket[3] += 1
            if theta is None:
                continue  # EXISTS/NOT EXISTS need only presence counts
            lhs = row[lhs_pos] if lhs_pos is not None else NULL
            outcome = sql_compare(theta, lhs, row[val_pos])
            if outcome is TriBool.TRUE:
                bucket[0] += 1
            elif outcome is TriBool.FALSE:
                bucket[1] += 1
            else:
                bucket[2] += 1

        out_rows: List[Row] = []
        for key in order:
            cnt_true, cnt_false, cnt_unknown, present = counts[key]
            metrics.add("linking_evals")
            if _passes(link, cnt_true, cnt_false, cnt_unknown, present):
                out_rows.append(reps[key])
        if span is not None:
            span.add("rows_in", len(joined.rows))
            span.add("rows_out", len(out_rows))
            tracer.close(span)
        return Relation(parent_rel.schema, out_rows)


def _passes(
    link: LinkSpec, cnt_true: int, cnt_false: int, cnt_unknown: int, present: int
) -> bool:
    """Decide the linking predicate from the bucket counts (3VL)."""
    if link.operator == "exists":
        return present > 0
    if link.operator == "not_exists":
        return present == 0
    if link.quantifier == "all":
        return cnt_false == 0 and cnt_unknown == 0
    return cnt_true > 0
