"""Kim-style type-JA aggregate rewriting of quantified subqueries.

Kim's classic transformation turns an inequality-quantified subquery into
a scalar aggregate comparison:

* ``A >  ALL S``  →  ``A >  MAX(S)``     * ``A >  SOME S``  →  ``A >  MIN(S)``
* ``A >= ALL S``  →  ``A >= MAX(S)``     * ``A >= SOME S``  →  ``A >= MIN(S)``
* ``A <  ALL S``  →  ``A <  MIN(S)``     * ``A <  SOME S``  →  ``A <  MAX(S)``
* ``A <= ALL S``  →  ``A <= MIN(S)``     * ``A <= SOME S``  →  ``A <= MAX(S)``

with the empty set handled by a COUNT guard (ALL over ∅ is TRUE, SOME is
FALSE).  The paper's Section 2 singles this rewrite out as **unsound with
NULLs**: ``R.A > ALL (SELECT S.B ...)`` "is not equal to
``R.A > (SELECT MAX(S.B) ...)``" because MAX *ignores* NULL members while
3VL does not — with ``R.A = 5`` and ``S.B = {2,3,4,NULL}``, MAX gives
``5 > 4`` = TRUE where SQL gives UNKNOWN.

Like :class:`~repro.baselines.unnesting.ClassicalUnnestingStrategy`, this
strategy therefore guards on NOT NULL constraints (both sides of the
linking predicate) and raises
:class:`~repro.errors.UnsoundRewriteError` otherwise; pass
``respect_null_soundness=False`` to reproduce the wrong answers in
demonstrations and ablations.

Scope: one-level queries whose linking operator is an inequality
quantifier and whose correlations are equalities — exactly where the
transformation was proposed.  (= SOME and <> ALL have no MIN/MAX analogue
and are rejected.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..strategies import register
from ..errors import PlanError, UnsoundRewriteError
from ..engine.catalog import Database
from ..engine.metrics import current_metrics
from ..engine.trace import CONTRACT_FILTERING, current_tracer
from ..engine.relation import Relation, Row
from ..engine.types import NULL, is_null, row_group_key, sql_compare
from ..core.blocks import LinkSpec, NestedQuery, QueryBlock
from ..core.optimizer import cost_agg_rewrite
from ..core.reduce import reduce_all

#: theta, quantifier -> which aggregate decides the comparison
_AGG_FOR = {
    (">", "all"): "max",
    (">=", "all"): "max",
    ("<", "all"): "min",
    ("<=", "all"): "min",
    (">", "some"): "min",
    (">=", "some"): "min",
    ("<", "some"): "max",
    ("<=", "some"): "max",
}


@register(
    "aggregate-rewrite",
    description="aggregate-based (min/max/count) rewrite baseline",
    cost=cost_agg_rewrite,
)
class AggregateRewriteStrategy:
    """Kim's MAX/MIN rewrite, with NULL-soundness guards."""

    name = "aggregate-rewrite"

    def __init__(self, respect_null_soundness: bool = True):
        self.respect_null_soundness = respect_null_soundness

    # ------------------------------------------------------------------ #

    def applicable(self, query: NestedQuery, db: Database) -> Optional[str]:
        """None when the rewrite applies; otherwise the blocking reason."""
        if query.nesting_depth != 1:
            return "aggregate rewrite handles one-level queries only"
        if query.has_disjunction:
            return (
                "marked (disjunctive) linking predicates keep their "
                "residual semantics only in the nested pipeline"
            )
        for child in query.root.children:
            link = child.link
            assert link is not None
            if (link.effective_theta, link.quantifier) not in _AGG_FOR:
                return (
                    f"operator {link.describe()} has no MIN/MAX analogue "
                    "(only inequality quantifiers rewrite)"
                )
            for corr in child.correlations:
                if not corr.is_equality:
                    return f"non-equality correlation {corr.describe()}"
            if self.respect_null_soundness:
                reason = self._null_reason(link, child, query, db)
                if reason is not None:
                    return reason
        return None

    @staticmethod
    def _null_reason(
        link: LinkSpec, child: QueryBlock, query: NestedQuery, db: Database
    ) -> Optional[str]:
        for ref, where in ((link.inner_ref, child), (link.outer_ref, None)):
            assert ref is not None
            alias, _, column = ref.rpartition(".")
            blocks = [where] if where is not None else list(query.root.walk())
            for block in blocks:
                if alias in block.tables:
                    table = db.table(block.tables[alias])
                    if not table.schema.column(column).not_null:
                        return (
                            f"attribute {ref} is NULLable; MAX/MIN ignore "
                            "NULLs so the rewrite is unsound"
                        )
                    break
        return None

    # ------------------------------------------------------------------ #

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        reason = self.applicable(query, db)
        if reason is not None:
            if "unsound" in reason and self.respect_null_soundness:
                raise UnsoundRewriteError(reason)
            if "unsound" not in reason:
                raise PlanError(reason)
        reduced = reduce_all(query, db)
        rel = reduced[query.root.index].relation
        for child in query.root.children:
            rel = self._apply(rel, child, reduced[child.index].relation)
        out = rel.project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out

    def _apply(
        self, rel: Relation, child: QueryBlock, child_rel: Relation
    ) -> Relation:
        link = child.link
        assert link is not None
        theta = link.effective_theta
        agg = _AGG_FOR[(theta, link.quantifier)]
        inner_pos = child_rel.schema.index_of(link.inner_ref)
        corr_inner = child_rel.schema.indices_of(
            [c.inner_ref for c in child.correlations]
        )
        metrics = current_metrics()

        # group the child: correlation key -> (count, max, min) over non-NULLs
        tracer = current_tracer()
        span = (
            tracer.open("agg-filter", kind="phase", contract=CONTRACT_FILTERING)
            if tracer is not None
            else None
        )
        groups: Dict[tuple, List] = {}
        for row in child_rel.rows:
            metrics.add("rows_scanned")
            key = row_group_key(tuple(row[i] for i in corr_inner))
            state = groups.setdefault(key, [0, None, None])
            state[0] += 1
            value = row[inner_pos]
            if is_null(value):
                continue  # MAX/MIN ignore NULLs — the unsoundness source
            if state[1] is None or value > state[1]:
                state[1] = value
            if state[2] is None or value < state[2]:
                state[2] = value

        corr_outer = rel.schema.indices_of(
            [c.outer_ref for c in child.correlations]
        )
        lhs_pos = rel.schema.index_of(link.outer_ref)
        out_rows: List[Row] = []
        for row in rel.rows:
            metrics.add("linking_evals")
            key_vals = tuple(row[i] for i in corr_outer)
            state = (
                groups.get(row_group_key(key_vals))
                if not any(is_null(v) for v in key_vals)
                else None
            )
            if state is None or state[0] == 0:
                # empty subquery result: ALL passes, SOME fails
                if link.quantifier == "all":
                    out_rows.append(row)
                continue
            bound = state[1] if agg == "max" else state[2]
            if bound is None:
                # all members NULL: MAX/MIN are NULL -> comparison UNKNOWN.
                # (Even Kim's rewrite agrees with SQL here: row excluded.)
                continue
            if sql_compare(theta, row[lhs_pos], bound).is_true():
                out_rows.append(row)
        if span is not None:
            span.add("rows_in", len(rel.rows))
            span.add("rows_out", len(out_rows))
            tracer.close(span)
        return Relation(rel.schema, out_rows)
