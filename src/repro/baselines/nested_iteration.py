"""Tuple-iteration (nested iteration) evaluation — the correctness oracle.

This strategy executes a nested query exactly the way SQL semantics
define it (and the way Kim [10] observed to be "very inefficient"): for
every candidate tuple of a block, each subquery in its WHERE clause is
re-evaluated from scratch under the current correlation bindings, and the
linking predicate is applied to the resulting value set under
three-valued logic.

Because it is a direct transcription of the semantics, every other
strategy in this repository is differential-tested against it.  It is
intentionally unoptimized — no indexes, no memoization — except that each
block's *local* reduction T_i = σ_Δi(R_i) is computed once up front
(evaluating Δ_i per iteration would only slow the oracle down without
changing any result).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..strategies import register
from ..engine.catalog import Database
from ..engine.expressions import EvalContext, truth
from ..engine.metrics import current_metrics
from ..engine.relation import Relation, Row
from ..engine.schema import Column, Schema
from ..engine.trace import CONTRACT_FILTERING, op_span
from ..engine.types import NULL, TriBool, is_null, sql_compare, tri_all, tri_any
from ..core.blocks import AGG_OP, LinkSpec, NestedQuery, QueryBlock
from ..core.linking import aggregate_value
from ..core.optimizer import cost_nested_iteration
from ..core.reduce import ReducedBlock, reduce_all
from ..core.selection import _tri_value


@register(
    "nested-iteration",
    description="tuple-at-a-time nested iteration (the differential oracle)",
    cost=cost_nested_iteration,
)
class NestedIterationStrategy:
    """Direct tuple-iteration evaluation of a nested query."""

    name = "nested-iteration"

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        reduced = reduce_all(query, db)
        root = query.root
        root_rel = reduced[root.index].relation
        ctx = EvalContext()
        out_rows: List[Row] = []
        select_idx = root_rel.schema.indices_of(root.select_refs)
        with op_span("tuple-iteration", contract=CONTRACT_FILTERING) as span:
            for row in root_rel.rows:
                current_metrics().add("rows_scanned")
                row_ctx = ctx.push(root_rel.schema, row)
                if self._passes_links(root, row_ctx, reduced):
                    out_rows.append(tuple(row[i] for i in select_idx))
            if span is not None:
                span.add("rows_in", len(root_rel.rows))
                span.add("rows_out", len(out_rows))
        out = Relation(root_rel.schema.project(root.select_refs), out_rows)
        if root.distinct:
            out = out.distinct()
        return out

    # ------------------------------------------------------------------ #

    def _passes_links(
        self,
        block: QueryBlock,
        ctx: EvalContext,
        reduced: Dict[int, ReducedBlock],
    ) -> bool:
        """All child linking predicates TRUE for the bound tuple?

        Marked children (linking predicates under OR/NOT) do not filter
        individually; their three-valued verdicts are bound as mark
        values and combined by the block's residual expression.
        """
        for child in block.children:
            if child.link is not None and child.link.mark is not None:
                continue
            if not self._link_result(child, ctx, reduced).is_true():
                return False
        if block.residual is not None:
            marks = {
                child.link.mark: self._link_result(child, ctx, reduced)
                for child in block.children
                if child.link is not None and child.link.mark is not None
            }
            names = sorted(marks)
            rctx = ctx.push(
                Schema([Column(name) for name in names]),
                tuple(_tri_value(marks[name]) for name in names),
            )
            if not truth(block.residual, rctx).is_true():
                return False
        return True

    def _link_result(
        self,
        child: QueryBlock,
        ctx: EvalContext,
        reduced: Dict[int, ReducedBlock],
    ) -> TriBool:
        """Evaluate the linking predicate of *child* under *ctx* (3VL)."""
        link = child.link
        assert link is not None
        values = self._subquery_values(child, ctx, reduced, link)
        if link.operator == "exists":
            return TriBool.from_bool(len(values) > 0)
        if link.operator == "not_exists":
            return TriBool.from_bool(len(values) == 0)
        if link.operator == AGG_OP:
            agg = aggregate_value(
                link.agg_func,
                [v for v in values if not is_null(v)],
                len(values),
            )
            lhs = (
                link.outer_const[0]
                if link.outer_const is not None
                else ctx.lookup(link.outer_ref)
            )
            return sql_compare(link.theta, lhs, agg)
        lhs = ctx.lookup(link.outer_ref)
        theta = link.effective_theta

        comparisons = (sql_compare(theta, lhs, v) for v in values)
        if link.quantifier == "all":
            return tri_all(comparisons)
        return tri_any(comparisons)

    def _subquery_values(
        self,
        child: QueryBlock,
        ctx: EvalContext,
        reduced: Dict[int, ReducedBlock],
        link: LinkSpec,
    ) -> List:
        """Run the subquery for the current bindings; return the result
        column (linked attribute) values, one per qualifying tuple."""
        crel = reduced[child.index].relation
        value_pos = (
            crel.schema.index_of(link.inner_ref)
            if link.inner_ref is not None
            else None
        )
        out = []
        for row in crel.rows:
            current_metrics().add("rows_scanned")
            row_ctx = ctx.push(crel.schema, row)
            if not self._correlations_hold(child, row_ctx):
                continue
            if not self._passes_links(child, row_ctx, reduced):
                continue
            out.append(row[value_pos] if value_pos is not None else NULL)
        return out

    @staticmethod
    def _correlations_hold(child: QueryBlock, ctx: EvalContext) -> bool:
        from ..engine.expressions import truth

        for corr in child.correlations:
            current_metrics().add("predicate_evals")
            if not truth(corr.as_expr(), ctx).is_true():
                return False
        return True
