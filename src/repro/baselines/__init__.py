"""Baseline evaluation strategies the paper compares against.

* :class:`NestedIterationStrategy` — tuple-iteration SQL semantics,
  the correctness oracle (Kim's starting point);
* :class:`ClassicalUnnestingStrategy` — semijoin/antijoin rewrites with
  NULL-soundness guards (Kim/Dayal-style);
* :class:`SystemAEmulationStrategy` — the commercial optimizer
  behaviour narrated in the paper's Section 5.2;
* :class:`CountRewriteStrategy` — non-aggregate subqueries rewritten as
  COUNT comparisons (the [1]/[6] family);
* :class:`BooleanAggregateStrategy` — linking predicates as Boolean
  aggregates over marked tuples (the [2] approach);
* :class:`AggregateRewriteStrategy` — Kim's MAX/MIN rewrite of
  inequality-quantified subqueries, with NULL-soundness guards.
"""

from .nested_iteration import NestedIterationStrategy
from .unnesting import ClassicalUnnestingStrategy
from .native import SystemAEmulationStrategy
from .count_rewrite import CountRewriteStrategy
from .boolean_aggregate import BooleanAggregateStrategy
from .agg_rewrite import AggregateRewriteStrategy

__all__ = [
    "NestedIterationStrategy",
    "ClassicalUnnestingStrategy",
    "SystemAEmulationStrategy",
    "CountRewriteStrategy",
    "BooleanAggregateStrategy",
    "AggregateRewriteStrategy",
]
