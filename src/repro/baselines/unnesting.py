"""Classical algebraic unnesting (Kim/Dayal-style rewrites).

The textbook rewrites of non-aggregate subqueries:

* ``EXISTS`` / ``IN`` / ``θ SOME``  → semijoin,
* ``NOT EXISTS``                    → antijoin,
* ``θ ALL`` / ``NOT IN``            → antijoin on the *negated* comparison.

The last rewrite is the one the paper attacks: it is **unsound when the
linked attribute can be NULL** (``R.A > ALL (SELECT S.B ...)`` is *not*
an antijoin of R and S on ``R.A <= S.B`` when S.B may be NULL — with
``R.A = 5`` and ``S.B ∈ {2,3,4,NULL}`` the antijoin keeps the R tuple,
SQL does not).  This strategy therefore checks NOT NULL constraints and
raises :class:`~repro.errors.UnsoundRewriteError` instead of producing a
wrong answer; the benchmark harness reports those cases as "rewrite not
applicable", mirroring System A's refusal to use antijoin once the
constraint is dropped.

A second classical limitation is also enforced: a subquery can only be
folded into a (semi/anti)join against the block it correlates with.  When
an inner block correlates with *several* enclosing blocks (the paper's
Query 3), the simple rewrite no longer composes — each operator keeps
only one side's attributes, losing the information deeper levels need
(paper Section 5.2).  Such shapes raise :class:`PlanError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..strategies import register
from ..errors import PlanError, UnsoundRewriteError
from ..engine.catalog import Database
from ..engine.expressions import Col, Comparison, conjoin
from ..engine.operators import AntiJoin, SemiJoin, as_relation
from ..engine.relation import Relation
from ..engine.types import negate_op
from ..core.blocks import LinkSpec, NestedQuery, QueryBlock
from ..core.optimizer import cost_unnesting
from ..core.reduce import ReducedBlock, reduce_all


@register(
    "classical-unnesting",
    description="classical semi/antijoin unnesting (unsound cases rejected)",
    cost=cost_unnesting,
)
class ClassicalUnnestingStrategy:
    """Semijoin/antijoin unnesting with soundness guards."""

    name = "classical-unnesting"

    def __init__(self, respect_null_soundness: bool = True):
        #: when False, the strategy applies the antijoin rewrite even for
        #: NULLable linked attributes — *knowingly unsound*; used by tests
        #: and the A-NULL ablation to demonstrate the wrong answers.
        self.respect_null_soundness = respect_null_soundness

    # ------------------------------------------------------------------ #

    def applicable(self, query: NestedQuery, db: Database) -> Optional[str]:
        """None if the query can be rewritten; otherwise the reason why not."""
        if query.has_aggregate_link:
            return (
                "aggregate linking predicates do not fold into "
                "semijoins/antijoins"
            )
        if query.has_disjunction:
            return (
                "disjunctive linking predicates (marks) cannot be "
                "unnested independently"
            )
        for block in query.root.walk():
            if block.link is None:
                continue
            parent = query.parent_of(block)
            assert parent is not None
            for corr in block.correlations:
                table = corr.outer_ref.rpartition(".")[0]
                if table not in parent.tables:
                    return (
                        f"block {block.index} correlates with a non-adjacent "
                        f"block through {corr.describe()}; semijoin/antijoin "
                        "folding loses the attributes deeper levels need"
                    )
            if block.link.is_negative and block.link.operator != "not_exists":
                reason = self._all_rewrite_unsound(block, db) or (
                    self._outer_attr_unsound(block, query, db)
                )
                if self.respect_null_soundness and reason is not None:
                    return reason
        return None

    @staticmethod
    def _outer_attr_unsound(
        block: QueryBlock, query: NestedQuery, db: Database
    ) -> Optional[str]:
        """A NULLable *linking* (outer) attribute also breaks the antijoin
        rewrite: ``NULL θ ALL {nonempty}`` is UNKNOWN (row excluded) but the
        antijoin finds no match for a NULL key and keeps the row.  The paper
        focuses on the inner side; we guard both."""
        link = block.link
        assert link is not None and link.outer_ref is not None
        alias = link.outer_ref.rpartition(".")[0]
        column = link.outer_ref.rpartition(".")[2]
        for b in query.root.walk():
            if alias in b.tables:
                table = db.table(b.tables[alias])
                if not table.schema.column(column).not_null:
                    return (
                        f"linking attribute {link.outer_ref} is NULLable; "
                        f"the {link.operator.upper()} -> antijoin rewrite is unsound"
                    )
                return None
        return f"linking attribute {link.outer_ref} not found in any block"

    def _all_rewrite_unsound(
        self, block: QueryBlock, db: Database
    ) -> Optional[str]:
        """NULL-soundness check for the ALL/NOT IN antijoin rewrite."""
        link = block.link
        assert link is not None and link.inner_ref is not None
        alias = link.inner_ref.rpartition(".")[0]
        column = link.inner_ref.rpartition(".")[2]
        table_name = block.tables.get(alias)
        if table_name is None:
            return f"linked attribute {link.inner_ref} not in block tables"
        table = db.table(table_name)
        if not table.schema.column(column).not_null:
            return (
                f"linked attribute {link.inner_ref} is NULLable; the "
                f"{link.operator.upper()} -> antijoin rewrite is unsound"
            )
        return None

    # ------------------------------------------------------------------ #

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        reason = self.applicable(query, db)
        if reason is not None:
            if "unsound" in reason and self.respect_null_soundness:
                raise UnsoundRewriteError(reason)
            if "unsound" not in reason:
                raise PlanError(reason)
        reduced = reduce_all(query, db)
        rel = self._rewrite_block(query.root, reduced)
        out = rel.project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out

    def _rewrite_block(
        self, block: QueryBlock, reduced: Dict[int, ReducedBlock]
    ) -> Relation:
        """Bottom-up: filter each block by (semi/anti)joins with children."""
        rel = reduced[block.index].relation
        for child in block.children:
            child_rel = self._rewrite_block(child, reduced)
            rel = self._apply_link(rel, child, child_rel)
        return rel

    def _apply_link(
        self, rel: Relation, child: QueryBlock, child_rel: Relation
    ) -> Relation:
        link = child.link
        assert link is not None
        equi = [c for c in child.correlations if c.is_equality]
        other = [c for c in child.correlations if not c.is_equality]
        residuals = [c.as_expr() for c in other]
        left_keys = [c.outer_ref for c in equi]
        right_keys = [c.inner_ref for c in equi]

        if link.operator in ("exists", "not_exists"):
            op = SemiJoin if link.operator == "exists" else AntiJoin
            return as_relation(
                op(rel, child_rel, left_keys, right_keys,
                   residual=conjoin(residuals) if residuals else None)
            )
        theta = link.effective_theta
        assert theta is not None and link.outer_ref and link.inner_ref
        if link.is_positive:
            # θ SOME / IN -> semijoin on C ∧ A θ B
            residuals.append(
                Comparison(theta, Col(link.outer_ref), Col(link.inner_ref))
            )
            return as_relation(
                SemiJoin(rel, child_rel, left_keys, right_keys,
                         residual=conjoin(residuals))
            )
        # θ ALL / NOT IN -> antijoin on C ∧ A ¬θ B (unsound with NULLs —
        # guarded in execute()/applicable()).
        residuals.append(
            Comparison(negate_op(theta), Col(link.outer_ref), Col(link.inner_ref))
        )
        return as_relation(
            AntiJoin(rel, child_rel, left_keys, right_keys,
                     residual=conjoin(residuals))
        )
