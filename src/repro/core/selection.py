"""Linking selection and pseudo-selection (paper Definition 5).

Given a one-level nested relation (the output of ``nest``), a *linking
selection* applies a :class:`~repro.core.linking.SetPredicate` to every
nested tuple:

* **strict selection** σ_C keeps exactly the tuples where the predicate
  is TRUE (rows evaluating FALSE or UNKNOWN are discarded) — used for the
  outermost / last unfinished linking predicate, where failing simply
  means the outer tuple is not an answer;

* **pseudo-selection** σ*_{C,A} keeps *every* tuple, but pads the
  attributes in A with NULL on tuples that fail — used for linking
  predicates of *inner* blocks when negative/mixed linking predicates
  remain unfinished above.  Padding A (the failing block's attributes,
  crucially including its primary key) marks that inner tuple as "not in
  the subquery result" without deleting the enclosing outer tuple, which
  a later negative linking predicate may still need to qualify.  This is
  the mechanism that fixes the problem the paper describes for Query Q:
  tuples of S that fail the ALL test against T must *help* (not hurt)
  the R tuple pass its NOT IN test.

Both return a **flat** relation over the atomic attributes of the input
(the set-valued attribute is consumed), matching the paper's figures
where each linking selection is followed by a projection that drops the
nested attribute.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..engine.metrics import current_metrics
from ..engine.trace import (
    CONTRACT_FILTERING,
    CONTRACT_PRESERVING,
    op_span,
)
from ..engine.relation import Relation, Row
from ..engine.schema import Column, Schema
from ..engine.types import NULL, SqlValue, is_null
from .linking import SetPredicate
from .nested import NestedRelation, SubSchema


def _resolve(
    nested: NestedRelation,
    set_name: str,
    linking_ref: Optional[str],
    linked_ref: Optional[str],
    pk_ref: str,
) -> Tuple[int, Optional[int], Optional[int], int, Schema, List[int]]:
    """Resolve all component positions used by a linking selection."""
    set_pos = nested.schema.index_of(set_name)
    sub = nested.schema.components[set_pos]
    if not isinstance(sub, SubSchema):
        raise SchemaError(f"{set_name!r} is not a set-valued attribute")
    sub_flat = sub.schema.to_flat()
    linked_pos = sub_flat.index_of(linked_ref) if linked_ref is not None else None
    pk_pos = sub_flat.index_of(pk_ref)
    atomic_positions = [
        i for i, c in enumerate(nested.schema.components) if i != set_pos
    ]
    for i in atomic_positions:
        if isinstance(nested.schema.components[i], SubSchema):
            raise SchemaError(
                "linking selection expects exactly one set-valued attribute "
                "at the top level"
            )
    out_schema = Schema(
        [nested.schema.components[i] for i in atomic_positions]  # type: ignore[misc]
    )
    linking_pos = (
        out_schema.index_of(linking_ref) if linking_ref is not None else None
    )
    return set_pos, linking_pos, linked_pos, pk_pos, out_schema, atomic_positions


def linking_selection(
    nested: NestedRelation,
    predicate: SetPredicate,
    linking_ref: Optional[str],
    linked_ref: Optional[str],
    pk_ref: str,
    set_name: str = "_nested",
) -> Relation:
    """Strict σ_C: keep tuples whose linking predicate is TRUE.

    *linking_ref* is the linking attribute (an atomic attribute of the
    nested relation; None for EXISTS/NOT EXISTS).  *linked_ref* is the
    linked attribute inside the set; *pk_ref* the inner block's primary
    key inside the set (NULL pk = empty marker).
    """
    set_pos, linking_pos, linked_pos, pk_pos, out_schema, atomic = _resolve(
        nested, set_name, linking_ref, linked_ref, pk_ref
    )
    metrics = current_metrics()
    out_rows: List[Row] = []
    with op_span(
        "linking-selection",
        contract=CONTRACT_FILTERING,
        pred=predicate.describe(),
    ) as span:
        for row in nested.rows:
            metrics.add("linking_evals")
            flat = tuple(row[i] for i in atomic)
            members = _members(row[set_pos], linked_pos, pk_pos)
            lhs = flat[linking_pos] if linking_pos is not None else NULL
            if predicate.evaluate(lhs, members).is_true():
                out_rows.append(flat)
        if span is not None:
            span.add("rows_in", len(nested.rows))
            span.add("rows_out", len(out_rows))
    return Relation(out_schema, out_rows)


def pseudo_selection(
    nested: NestedRelation,
    predicate: SetPredicate,
    linking_ref: Optional[str],
    linked_ref: Optional[str],
    pk_ref: str,
    pad_refs: Sequence[str],
    set_name: str = "_nested",
) -> Relation:
    """σ*_{C,A}: keep all tuples; pad attributes in *pad_refs* on failure.

    Failing tuples keep their other attributes intact — in particular the
    enclosing blocks' attributes — so outer tuples survive for later
    (negative) linking predicates; the padded primary key inside
    *pad_refs* marks this inner tuple as absent.
    """
    set_pos, linking_pos, linked_pos, pk_pos, out_schema, atomic = _resolve(
        nested, set_name, linking_ref, linked_ref, pk_ref
    )
    pad_positions = set(out_schema.indices_of(pad_refs))
    metrics = current_metrics()
    out_rows: List[Row] = []
    with op_span(
        "pseudo-selection",
        contract=CONTRACT_PRESERVING,
        pred=predicate.describe(),
        pads=",".join(pad_refs),
    ) as span:
        for row in nested.rows:
            metrics.add("linking_evals")
            flat = tuple(row[i] for i in atomic)
            members = _members(row[set_pos], linked_pos, pk_pos)
            lhs = flat[linking_pos] if linking_pos is not None else NULL
            if predicate.evaluate(lhs, members).is_true():
                out_rows.append(flat)
            else:
                metrics.add("null_padded_rows")
                out_rows.append(
                    tuple(
                        NULL if i in pad_positions else v for i, v in enumerate(flat)
                    )
                )
        if span is not None:
            span.add("rows_in", len(nested.rows))
            span.add("rows_out", len(out_rows))
    return Relation(out_schema, out_rows)


def mark_selection(
    nested: NestedRelation,
    predicate: SetPredicate,
    linking_ref: Optional[str],
    linked_ref: Optional[str],
    pk_ref: str,
    mark_ref: str,
    set_name: str = "_nested",
) -> Relation:
    """Mark evaluation: keep every tuple, append the predicate verdict.

    Used for linking predicates under OR/NOT: instead of filtering or
    padding, the three-valued outcome is materialized as a column named
    *mark_ref* (TRUE/FALSE/NULL) for the parent block's residual to
    combine.
    """
    set_pos, linking_pos, linked_pos, pk_pos, out_schema, atomic = _resolve(
        nested, set_name, linking_ref, linked_ref, pk_ref
    )
    out_schema = Schema(tuple(out_schema.columns) + (Column(mark_ref),))
    metrics = current_metrics()
    out_rows: List[Row] = []
    with op_span(
        "mark-selection",
        contract=CONTRACT_PRESERVING,
        pred=predicate.describe(),
        mark=mark_ref,
    ) as span:
        for row in nested.rows:
            metrics.add("linking_evals")
            flat = tuple(row[i] for i in atomic)
            members = _members(row[set_pos], linked_pos, pk_pos)
            lhs = flat[linking_pos] if linking_pos is not None else NULL
            verdict = predicate.evaluate(lhs, members)
            out_rows.append(flat + (_tri_value(verdict),))
        if span is not None:
            span.add("rows_in", len(nested.rows))
            span.add("rows_out", len(out_rows))
    return Relation(out_schema, out_rows)


def _tri_value(verdict) -> SqlValue:
    """TriBool -> SQL value (TRUE/FALSE/NULL) for a mark column."""
    if verdict.is_true():
        return True
    if (~verdict).is_true():
        return False
    return NULL


def _members(
    group: Sequence[tuple], linked_pos: Optional[int], pk_pos: int
) -> List[Tuple[SqlValue, SqlValue]]:
    """Extract (linked value, pk value) pairs from a nested group."""
    if linked_pos is None:
        return [(NULL, member[pk_pos]) for member in group]
    return [(member[linked_pos], member[pk_pos]) for member in group]
