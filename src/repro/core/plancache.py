"""Cross-query caching for sessions.

A :class:`~repro.session.Session` answers many queries against one
database, and three pieces of work repeat across them:

* **parse → analyze** — :func:`repro.sql.compile_sql` of the identical
  SQL text yields the identical :class:`~repro.core.blocks.NestedQuery`
  (analysis only reads the catalog);
* **strategy resolution** — mapping a ``(strategy, backend, threads)``
  request onto an executable instance inspects the query shape (the
  ``auto`` policy) but is otherwise pure;
* **block reduction builds** — the reduced relations
  ``T_i = σ_Δi(R_i ⋈ …)`` of Algorithm 1's step one depend only on the
  block's syntactic :class:`~repro.core.reduce.BlockJoinPlan` and the
  base tables, not on which query asked.  Two queries sharing a block
  shape (the common case for dashboards re-issuing parameter-free
  subqueries) can share the build.

:class:`SessionCache` memoizes all three.  The compile memo is **always
on** — re-preparing identical SQL never re-runs the analyzer, even with
``connect(db, plan_cache=False)`` — while strategy and reduce caching
follow the ``plan_cache`` flag.  Everything is invalidated wholesale
when the catalog's version counter moves (CREATE/DROP TABLE, index
creation): cached batches reference table images that may no longer
exist.

The reduce cache is consulted by ``VectorBackend._reduce_block`` through
an ambient scope (:func:`reduce_scope` / :func:`current_reduce_cache`),
installed by the session around each execution — the backend protocol
itself stays cache-oblivious.

**Thread safety.**  One cache may be shared by every worker of a
multi-tenant server (:mod:`repro.serve` pools sessions over a single
cache so tenants share compiled plans and reduced builds).  All memo
lookups/stores, the version check and the hit/miss/eviction counters
are therefore serialized under one lock (mirroring ``_pools_lock`` in
:mod:`repro.engine.parallel`): without it, concurrent ``prepare()``
calls lose counter increments (``+=`` is a read-modify-write), two
threads can FIFO-evict the same oldest key (``KeyError``), and a store
racing ``validate()`` can resurrect an entry keyed against a dropped
catalog version.  The lock is never held while compiling or executing —
only around dict/counter touches — so it serializes bookkeeping, not
work.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

#: entries kept per memo table; insertion beyond this evicts the oldest
#: entries of *that table only* (FIFO) — sessions are not long-lived
#: enough to justify an LRU, but a full plan memo must not nuke the
#: reduce memo (and vice versa) the way wholesale clearing used to
_MAX_ENTRIES = 256


@dataclass
class CacheStats:
    """Hit/miss counters for one session's caches."""

    plan_hits: int = 0
    plan_misses: int = 0
    strategy_hits: int = 0
    strategy_misses: int = 0
    reduce_hits: int = 0
    reduce_misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def describe(self) -> str:
        return (
            f"plan hits={self.plan_hits} misses={self.plan_misses}, "
            f"strategy hits={self.strategy_hits} "
            f"misses={self.strategy_misses}, "
            f"reduce hits={self.reduce_hits} misses={self.reduce_misses}, "
            f"invalidations={self.invalidations}, "
            f"evictions={self.evictions}"
        )

    def snapshot(self) -> Dict[str, int]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "strategy_hits": self.strategy_hits,
            "strategy_misses": self.strategy_misses,
            "reduce_hits": self.reduce_hits,
            "reduce_misses": self.reduce_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }


class SessionCache:
    """Compile/strategy/reduce memo tables keyed against one catalog
    version; see the module docstring for what is cached when."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stats = CacheStats()
        # serializes every memo/counter touch; shared-session servers
        # hit this cache from many threads at once (see module docstring)
        self._lock = threading.Lock()
        self._version: Optional[int] = None
        self._plans: Dict[str, Any] = {}
        self._strategies: Dict[Tuple, Any] = {}
        # keyed (plan repr, backend kind, base-table fingerprints): an
        # in-place row mutation changes the fingerprint component, so a
        # stale build misses instead of being served
        self._reduced: Dict[Tuple, Any] = {}

    # ------------------------------------------------------------------ #

    def validate(self, version: int) -> None:
        """Drop everything if the catalog changed since the last use."""
        with self._lock:
            if self._version is None:
                self._version = version
                return
            if version != self._version:
                self._version = version
                if self._plans or self._strategies or self._reduced:
                    self.stats.invalidations += 1
                self._plans.clear()
                self._strategies.clear()
                self._reduced.clear()

    def stats_snapshot(self) -> Dict[str, int]:
        """A consistent copy of the counters (taken under the lock)."""
        with self._lock:
            return self.stats.snapshot()

    def _bound(self, table: Dict) -> None:
        """Make room for one insertion: FIFO-evict the oldest entries of
        *this* memo table only (dicts preserve insertion order; caller
        holds the lock).

        Counters stay monotonic: each evicted entry increments
        ``stats.evictions`` and nothing is ever reset — so a long
        session's hit/miss/eviction totals always add up across
        evictions.
        """
        while len(table) >= _MAX_ENTRIES:
            oldest = next(iter(table))
            del table[oldest]
            self.stats.evictions += 1

    # -- parse → analyze (always on) ----------------------------------- #

    def plan(self, sql: str) -> Optional[Any]:
        with self._lock:
            query = self._plans.get(sql)
            if query is None:
                self.stats.plan_misses += 1
            else:
                self.stats.plan_hits += 1
            return query

    def store_plan(self, sql: str, query: Any) -> None:
        with self._lock:
            self._bound(self._plans)
            self._plans[sql] = query

    # -- strategy resolution (plan_cache only) -------------------------- #

    def strategy(self, key: Tuple) -> Optional[Any]:
        if not self.enabled:
            return None
        with self._lock:
            impl = self._strategies.get(key)
            if impl is None:
                self.stats.strategy_misses += 1
            else:
                self.stats.strategy_hits += 1
            return impl

    def store_strategy(self, key: Tuple, impl: Any) -> None:
        if self.enabled:
            with self._lock:
                self._bound(self._strategies)
                self._strategies[key] = impl

    # -- reduced-relation builds (plan_cache only) ---------------------- #

    def reduced(self, key: Tuple) -> Optional[Any]:
        with self._lock:
            batch = self._reduced.get(key)
            if batch is None:
                self.stats.reduce_misses += 1
            else:
                self.stats.reduce_hits += 1
            return batch

    def store_reduced(self, key: Tuple, batch: Any) -> None:
        with self._lock:
            self._bound(self._reduced)
            self._reduced[key] = batch


# --------------------------------------------------------------------- #
# Ambient reduce-cache scope
# --------------------------------------------------------------------- #

_ambient = threading.local()


def current_reduce_cache() -> Optional[SessionCache]:
    """The reduce cache the executing backend may consult, if any."""
    return getattr(_ambient, "cache", None)


@contextmanager
def reduce_scope(cache: Optional[SessionCache]) -> Iterator[None]:
    """Expose *cache* to backends for the duration of one execution.

    Passing ``None`` (cache disabled) is allowed and installs nothing,
    so call sites need no conditional.
    """
    if cache is None:
        yield
        return
    previous = getattr(_ambient, "cache", None)
    _ambient.cache = cache
    try:
        yield
    finally:
        _ambient.cache = previous
