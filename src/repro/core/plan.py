"""The typed EXPLAIN result: a :class:`Plan` you can render or inspect.

:meth:`repro.session.PreparedQuery.explain` returns a :class:`Plan`
instead of bare text: the requested strategy, the strategy that would
actually run, the cost-based planner's full candidate table (when the
request was ``"auto"``), the operator-tree text, and — with
``analyze=True`` — the annotated span tree of a real execution.

``str(plan)`` and ``plan.render()`` give the human-readable text the
CLI and the golden files use; ``plan.render(format="json")`` gives a
stable machine-readable document (candidates with estimated costs and
cardinalities, plus the serialized trace when analyzed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import InvalidArgumentError
from .optimizer import CandidatePlan

#: formats accepted by :meth:`Plan.render`
PLAN_FORMATS = ("text", "json")


@dataclass(frozen=True)
class Plan:
    """One EXPLAIN outcome, ready to render in either format.

    ``strategy`` is what the caller asked for (``"auto"`` or a fixed
    name); ``chosen`` is the registry name that would execute.  For an
    ``"auto"`` request ``candidates`` holds every enumerated
    :class:`~repro.core.optimizer.CandidatePlan` cheapest-first and
    ``fingerprint`` / ``feedback_epoch`` / ``est_rows`` echo the
    planner's decision; for a fixed strategy they are empty/``None``.
    ``analysis`` is the EXPLAIN ANALYZE text and ``spans`` the
    serialized trace document, both present only under
    ``analyze=True``.
    """

    sql: str
    strategy: str
    chosen: str
    operators: str
    candidates: Tuple[CandidatePlan, ...] = ()
    fingerprint: Optional[str] = None
    feedback_epoch: Optional[int] = None
    est_rows: Optional[float] = None
    analysis: Optional[str] = None
    spans: Optional[Dict[str, Any]] = None

    @property
    def cost_based(self) -> bool:
        """Whether this plan records a cost-based ``auto`` decision."""
        return bool(self.candidates)

    def candidate(self, name: str) -> Optional[CandidatePlan]:
        """The enumerated candidate registered under *name*, if any."""
        for cand in self.candidates:
            if cand.name == name:
                return cand
        return None

    @property
    def est_cost(self) -> Optional[float]:
        """The chosen candidate's estimated cost (``None`` for a fixed
        strategy, which the planner never priced)."""
        chosen = self.candidate(self.chosen)
        return chosen.est_cost if chosen is not None else None

    def render(self, format: str = "text") -> str:
        """The plan as ``"text"`` (human-readable, golden-file stable
        modulo timings) or ``"json"`` (machine-readable, sorted keys)."""
        if format == "text":
            return self._render_text()
        if format == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True)
        raise InvalidArgumentError(
            f"unknown plan format {format!r}; expected one of {PLAN_FORMATS}"
        )

    def _render_text(self) -> str:
        sections = []
        if self.cost_based:
            lines = [f"auto -> {self.chosen}  (cost-based)"]
            for cand in self.candidates:
                lines.append("  " + cand.describe())
            sections.append("\n".join(lines))
        sections.append(self.operators)
        if self.analysis is not None:
            sections.append(self.analysis)
        return "\n\n".join(sections)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-document form of :meth:`render`\\ ``("json")``."""
        doc: Dict[str, Any] = {
            "sql": self.sql,
            "strategy": self.strategy,
            "chosen": self.chosen,
            "operators": self.operators.splitlines(),
            "candidates": [
                {
                    "name": cand.name,
                    "backend": cand.backend,
                    "est_cost": round(cand.est_cost, 1),
                    "est_rows": round(cand.est_rows, 1),
                    "costed": cand.costed,
                    "chosen": cand.chosen,
                }
                for cand in self.candidates
            ],
        }
        if self.fingerprint is not None:
            doc["fingerprint"] = self.fingerprint
            doc["feedback_epoch"] = self.feedback_epoch
        if self.est_rows is not None:
            doc["est_rows"] = round(self.est_rows, 1)
        if self.analysis is not None:
            doc["analysis"] = self.analysis.splitlines()
        if self.spans is not None:
            doc["spans"] = self.spans
        return doc

    def __str__(self) -> str:
        return self.render("text")

    def __contains__(self, needle: object) -> bool:
        # substring checks against the text render keep working for
        # callers that treated explain() output as a string
        return isinstance(needle, str) and needle in self.render("text")


def build_plan(
    query,
    db,
    sql: str,
    strategy: str = "auto",
    analyze: bool = False,
    timings: bool = True,
    feedback=None,
    backend: Optional[str] = None,
    threads: Optional[int] = None,
) -> Plan:
    """Assemble the :class:`Plan` for one EXPLAIN request.

    ``strategy="auto"`` runs the cost-based planner
    (:func:`repro.core.optimizer.choose`, fed the session's *feedback*
    observations) and reports its full candidate table; a fixed name
    just renders that strategy's operator tree.  ``analyze=True``
    additionally executes the query under tracing and attaches the
    annotated span tree (text and serialized forms).
    """
    from .explain import explain, explain_analyze
    from .optimizer import choose

    candidates: Tuple[CandidatePlan, ...] = ()
    fingerprint = None
    feedback_epoch = None
    est_rows = None
    if strategy == "auto":
        decision = choose(
            query, db, backend=backend, threads=threads, feedback=feedback
        )
        chosen = decision.chosen
        candidates = decision.candidates
        fingerprint = decision.fingerprint
        feedback_epoch = decision.feedback_epoch
        est_rows = decision.est_rows
    else:
        chosen = strategy
    operators = explain(query, db, strategy=chosen)
    analysis = None
    spans = None
    if analyze:
        analysis, trace = explain_analyze(
            query, db, strategy=strategy, timings=timings, return_trace=True
        )
        spans = trace.to_dict()
    return Plan(
        sql=sql,
        strategy=strategy if isinstance(strategy, str) else str(strategy),
        chosen=chosen,
        operators=operators,
        candidates=candidates,
        fingerprint=fingerprint,
        feedback_epoch=feedback_epoch,
        est_rows=est_rows,
        analysis=analysis,
        spans=spans,
    )
