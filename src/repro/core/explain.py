"""Plan explanation: render the nested relational evaluation as the
operator tree of the paper's Figure 3(b).

:func:`explain_nested_relational` symbolically replays Algorithm 1 over a
:class:`~repro.core.blocks.NestedQuery` — no data touched — and prints
the operator pipeline bottom-to-top the way the paper draws query trees:
base relations with their pushed-down selections, the (outer) joins
introduced for correlations, each ``nest`` with its nesting/nested
attribute lists, each linking/pseudo selection with its predicate, and
the final projection.

:func:`explain` dispatches by strategy name and also covers the
strategies with their own explainers (System A) or simple textual plans
(bottom-up, positive rewrite), so examples and the CLI can show a plan
for anything the planner can run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import PlanError
from ..engine.catalog import Database
from .blocks import LinkSpec, NestedQuery, QueryBlock
from .compute import set_predicate_for


def _selection_text(block: QueryBlock) -> str:
    if block.local_predicate is None:
        return ""
    return f" sel[{block.local_predicate!r}]"


def _link_predicate_text(link: LinkSpec, pk: str) -> str:
    pred = set_predicate_for(link)
    if link.operator in ("exists", "not_exists"):
        target = "≠ ∅" if link.operator == "exists" else "= ∅"
        return f"{{{pk}}} {target}"
    return f"{link.outer_ref} {link.effective_theta} {pred.quantifier.upper()} {{{link.inner_ref}}}"


def explain_nested_relational(query: NestedQuery) -> str:
    """The Figure 3(b)-style operator tree for Algorithm 1."""
    lines: List[str] = []
    lines.append(f"π {', '.join(query.root.select_refs)}"
                 + ("  (DISTINCT)" if query.root.distinct else ""))

    def emit(text: str, depth: int) -> None:
        lines.append("  " * depth + text)

    def visit(node: QueryBlock, path: List[QueryBlock], depth: int) -> None:
        for child in reversed(node.children):
            link = child.link
            assert link is not None
            pk = f"_rid{child.index}"
            strict = all(
                b.link.is_positive for b in path if b.link is not None
            ) if any(b.link is not None for b in path) else True
            sigma = "σ" if strict else "σ*"
            pads = (
                ""
                if sigma == "σ"
                else f" pad[{', '.join(sorted(child_pad(node)))}]"
            )
            emit(f"{sigma} {_link_predicate_text(link, pk)}{pads}", depth)
            by = ", ".join(f"attrs(T{b.index})" for b in path)
            emit(
                f"υ by[{by}] keep[{_keep_text(link, pk)}]",
                depth,
            )
            if child.correlations:
                conds = " ∧ ".join(c.describe() for c in child.correlations)
                emit(f"⟕ {conds}", depth)
            else:
                emit("× (virtual Cartesian product — executed once)", depth)
            emit(
                f"T{child.index}: {_tables_text(child)}{_selection_text(child)}",
                depth + 1,
            )
            visit(child, path + [child], depth + 1)

    def child_pad(node: QueryBlock) -> List[str]:
        return [f"attrs(T{node.index})"]

    def _keep_text(link: LinkSpec, pk: str) -> str:
        if link.inner_ref is not None:
            return f"{link.inner_ref}, {pk}"
        return pk

    def _tables_text(block: QueryBlock) -> str:
        return ", ".join(
            name if alias == name else f"{name} {alias}"
            for alias, name in block.tables.items()
        )

    emit(
        f"T1: {_tables_text(query.root)}{_selection_text(query.root)}",
        1,
    )
    visit(query.root, [query.root], 1)
    return "\n".join(lines)


def explain(
    query: NestedQuery, db: Database, strategy: str = "nested-relational"
) -> str:
    """Plan text for the given strategy name.

    ``"auto"`` runs the cost-based planner and prefixes the chosen
    strategy's plan with the full candidate table (every applicable
    strategy, cheapest first, with estimated costs and cardinalities).
    Strategies without a bespoke operator-tree renderer fall back to
    their registry description, so anything the planner can run has a
    plan text.
    """
    from ..baselines.native import SystemAEmulationStrategy

    if strategy == "auto":
        from .optimizer import choose

        decision = choose(query, db)
        return (
            decision.describe()
            + "\n"
            + explain(query, db, decision.chosen)
        )
    if strategy == "system-a-native":
        return SystemAEmulationStrategy().explain(query, db)
    if strategy in (
        "nested-relational",
        "nested-relational-sorted",
        "nested-relational-optimized",
        "nested-relational-vectorized",
    ):
        header = ""
        if strategy.endswith("optimized"):
            header = (
                "single-pass pipeline: all nests fused into one sort by the "
                "rid chain; linking selections evaluated in one scan\n"
            )
        elif strategy.endswith("vectorized"):
            header = (
                "columnar batch engine: same Algorithm 1 tree, executed "
                "with vectorized kernels over column arrays + NULL bitmaps\n"
            )
        return header + explain_nested_relational(query)
    if strategy == "nested-relational-bottomup":
        chain = list(query.root.walk())
        steps = []
        for parent, child in zip(reversed(chain[:-1]), reversed(chain[1:])):
            assert child.link is not None
            equi = [c for c in child.correlations if c.is_equality]
            push = "υ-pushdown" if equi and len(equi) == len(child.correlations) else "⟕ + υ"
            steps.append(
                f"T{parent.index} {push} T{child.index}, "
                f"σ {child.link.describe()}"
            )
        return "bottom-up (linear correlation):\n  " + "\n  ".join(steps)
    if strategy == "nested-relational-positive-rewrite":
        steps = [
            f"T{b.index} ⋉ T{c.index} on "
            + " ∧ ".join(x.describe() for x in c.correlations)
            + (
                f" ∧ {c.link.outer_ref} {c.link.effective_theta} {c.link.inner_ref}"
                if c.link is not None and c.link.inner_ref is not None
                else ""
            )
            for b in query.root.walk()
            for c in b.children
        ]
        return "positive rewrite (semijoin chain):\n  " + "\n  ".join(steps)
    if strategy == "nested-iteration":
        return (
            "tuple iteration: for each candidate tuple of each block, "
            "re-evaluate every subquery under the current bindings"
        )
    from .. import strategies as registry

    if registry.is_registered(strategy):
        # registered but without a bespoke operator-tree renderer: the
        # registry description is still an honest one-line plan
        return f"{strategy}: {registry.info(strategy).description}"
    raise PlanError(f"no explainer for strategy {strategy!r}")


def explain_analyze(
    query: NestedQuery,
    db: Database,
    strategy: str = "auto",
    timings: bool = True,
    return_trace: bool = False,
):
    """EXPLAIN ANALYZE: run the query and render the annotated span tree.

    Executes *query* under a tracing scope and returns the plan as it
    actually ran — one line per operator span with input/output row
    counts, operator-specific counters (hash-table sizes, peak group
    cardinality, null-padded rows, ...) and, unless *timings* is False
    (useful for deterministic golden files), inclusive wall-clock times.
    With *return_trace* the raw :class:`~repro.engine.trace.Trace` is
    returned alongside the text as ``(text, trace)``.
    """
    from ..engine.metrics import collect
    from ..engine.trace import render_trace
    from .planner import run_traced

    with collect() as metrics:
        result, trace = run_traced(query, db, strategy=strategy)
    lines = [f"EXPLAIN ANALYZE (strategy={strategy})"]
    lines.append(render_trace(trace, timings=timings))
    lines.append(
        f"{len(result)} row(s); weighted cost {metrics.weighted_cost()}"
    )
    text = "\n".join(lines)
    return (text, trace) if return_trace else text
