"""Logical model of a nested SQL query: blocks, links, correlations.

Every strategy in this repository (nested relational, nested iteration,
classical unnesting, System-A emulation) consumes the same normalized
representation, a tree of :class:`QueryBlock` objects:

* each block has FROM tables (with aliases), a *local* predicate
  (the paper's Δ_i — everything in the WHERE clause except linking and
  correlated predicates),
* a block other than the root carries a :class:`LinkSpec` describing the
  linking predicate that connects it to its parent (the paper's L_i),
* a block carries :class:`Correlation` records for predicates that
  reference attributes of *enclosing* blocks (the paper's C_ij).

Blocks are numbered in depth-first, left-to-right order starting at 1 —
the same order the paper uses when it writes T_1 .. T_n.

The model is deliberately restricted to the paper's scope: non-aggregate
subqueries linked by EXISTS / NOT EXISTS / IN / NOT IN / θ SOME|ANY /
θ ALL, with conjunctive WHERE clauses whose correlated predicates are
simple comparisons between an inner and an outer column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..engine.expressions import Comparison, Col, Expr, conjoin
from ..engine.types import flip_op

#: Linking operators, paper terminology.  "Positive" operators pass when a
#: matching inner tuple exists; "negative" ones pass on the empty set.
POSITIVE_OPS = ("exists", "in", "some")
NEGATIVE_OPS = ("not_exists", "not_in", "all")
#: Aggregate linking: ``outer θ (SELECT agg(...) ...)``.  Neither positive
#: nor negative — ``COUNT(*) = 0`` passes exactly on the empty set, so the
#: way-up selection above an aggregate link must never be strict.
AGG_OP = "agg"
LINK_OPS = POSITIVE_OPS + NEGATIVE_OPS + (AGG_OP,)

#: Aggregate functions an aggregate link can carry.  ``count_star`` is
#: ``COUNT(*)`` (counts tuples); ``count`` counts non-NULL argument values.
AGG_FUNCS = ("count_star", "count", "sum", "avg", "min", "max")

#: Comparison thetas allowed in quantified linking predicates.
THETAS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class LinkSpec:
    """The linking predicate between a block and its parent.

    ``operator`` is one of :data:`LINK_OPS`.  For quantified operators
    (``in``/``not_in``/``some``/``all``) *outer_ref* is the linking
    attribute (an outer-block column), *theta* the comparison, and
    *inner_ref* the linked attribute (a column of this block).  For
    ``exists``/``not_exists`` all three are None.

    ``IN`` is normalized as ``= SOME`` and ``NOT IN`` as ``<> ALL``
    (paper Section 4.1, Example 2) but the original spelling is retained
    in ``operator`` so baselines can reproduce operator-specific plans.

    Aggregate links (``operator == "agg"``) carry the scalar-subquery
    form ``lhs θ agg(inner)``: *agg_func* names the aggregate,
    *inner_ref* its argument column (None for ``COUNT(*)``), and the
    left-hand side is either *outer_ref* (an outer-block column) or
    *outer_const* — a 1-tuple wrapping a literal, so a NULL constant is
    distinguishable from "no constant".

    ``mark`` is set when the link appears under OR / NOT rather than as
    a top-level conjunct: instead of filtering, the way-up selection
    emits a three-valued mark column of that name, and the parent
    block's ``residual`` combines the marks (Section 4.1's tree
    expressions extended with disjunctive linking predicates).
    """

    operator: str
    outer_ref: Optional[str] = None
    theta: Optional[str] = None
    inner_ref: Optional[str] = None
    agg_func: Optional[str] = None
    outer_const: Optional[Tuple[object]] = None
    mark: Optional[str] = None

    def __post_init__(self) -> None:
        if self.operator not in LINK_OPS:
            raise AnalysisError(f"unknown linking operator {self.operator!r}")
        if self.operator == AGG_OP:
            if self.agg_func not in AGG_FUNCS:
                raise AnalysisError(
                    f"unknown aggregate function {self.agg_func!r}"
                )
            if not self.theta:
                raise AnalysisError("aggregate link needs a comparison theta")
            if self.agg_func != "count_star" and not self.inner_ref:
                raise AnalysisError(
                    f"aggregate {self.agg_func!r} needs an argument column"
                )
            if (self.outer_ref is None) == (self.outer_const is None):
                raise AnalysisError(
                    "aggregate link needs exactly one of outer_ref/outer_const"
                )
        else:
            if self.agg_func is not None or self.outer_const is not None:
                raise AnalysisError(
                    f"agg_func/outer_const only apply to {AGG_OP!r} links"
                )
            quantified = self.operator not in ("exists", "not_exists")
            if quantified and not (
                self.outer_ref and self.theta and self.inner_ref
            ):
                raise AnalysisError(
                    f"linking operator {self.operator!r} needs outer_ref/theta/inner_ref"
                )
        if self.theta is not None and self.theta not in THETAS:
            raise AnalysisError(f"unknown linking theta {self.theta!r}")

    @property
    def is_positive(self) -> bool:
        """Whether a strict way-up selection above this link is sound.

        Aggregate links are never positive (``COUNT(*) = 0`` passes on
        the empty set), and a *marked* link must not license strictness
        either: deleting a row below a mark would wrongly erase outer
        rows whose mark should merely be FALSE inside the residual.
        """
        return self.operator in POSITIVE_OPS and self.mark is None

    @property
    def is_negative(self) -> bool:
        return self.operator in NEGATIVE_OPS

    @property
    def quantifier(self) -> str:
        """The SOME/ALL quantifier after IN / NOT IN normalization."""
        if self.operator in ("exists", "not_exists", AGG_OP):
            return self.operator
        if self.operator in ("in", "some"):
            return "some"
        return "all"

    @property
    def effective_theta(self) -> Optional[str]:
        """Theta after IN -> ``= SOME`` / NOT IN -> ``<> ALL`` normalization."""
        if self.operator == "in":
            return "="
        if self.operator == "not_in":
            return "<>"
        return self.theta

    @property
    def agg_text(self) -> str:
        """``count(*)`` / ``max(s.b)`` — the aggregate call as SQL text."""
        assert self.operator == AGG_OP
        if self.agg_func == "count_star":
            return "count(*)"
        return f"{self.agg_func}({self.inner_ref})"

    def describe(self) -> str:
        if self.operator in ("exists", "not_exists"):
            base = self.operator.upper().replace("_", " ")
        elif self.operator == AGG_OP:
            lhs = (
                self.outer_ref
                if self.outer_ref is not None
                else repr(self.outer_const[0])
            )
            base = f"{lhs} {self.theta} {self.agg_text}"
        else:
            base = f"{self.outer_ref} {self.effective_theta} {self.quantifier.upper()} {{{self.inner_ref}}}"
        if self.mark is not None:
            return f"{base} -> {self.mark}"
        return base


@dataclass(frozen=True)
class Correlation:
    """A correlated predicate ``outer_ref op inner_ref``.

    *outer_ref* belongs to an enclosing block, *inner_ref* to the block
    holding the record.  ``op`` is a plain comparison theta, oriented so
    the outer attribute is on the left (the paper writes ``R.D = S.G``).
    """

    outer_ref: str
    op: str
    inner_ref: str

    def __post_init__(self) -> None:
        if self.op not in THETAS:
            raise AnalysisError(f"unknown correlation operator {self.op!r}")

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    def as_expr(self) -> Expr:
        return Comparison(self.op, Col(self.outer_ref), Col(self.inner_ref))

    def describe(self) -> str:
        return f"{self.outer_ref} {self.op} {self.inner_ref}"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computed by a ``GROUP BY`` block.

    *arg* is the qualified argument column (None for ``COUNT(*)``) and
    *name* the synthetic output column the aggregate value is exposed
    under (e.g. ``"count(*)"`` — referenced by HAVING and SELECT).
    """

    func: str  # one of AGG_FUNCS
    arg: Optional[str]
    name: str

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise AnalysisError(f"unknown aggregate function {self.func!r}")
        if self.func != "count_star" and self.arg is None:
            raise AnalysisError(f"aggregate {self.func!r} needs an argument")

    def describe(self) -> str:
        return self.name


@dataclass
class QueryBlock:
    """One SQL query block.

    ``tables`` maps alias -> base table name (insertion ordered; SQL FROM
    list).  ``local_predicate`` is Δ_i: every WHERE conjunct that only
    references this block's tables (including join predicates among them).
    ``correlations`` are the C_ij records; ``link`` is L_{i-1} — how this
    block is linked *to its parent* (None for the root).  ``select_refs``
    is only meaningful for the root block (the subquery SELECT list is
    captured in its link's ``inner_ref``).
    """

    tables: Dict[str, str]
    local_predicate: Optional[Expr] = None
    correlations: List[Correlation] = field(default_factory=list)
    link: Optional[LinkSpec] = None
    children: List["QueryBlock"] = field(default_factory=list)
    select_refs: List[str] = field(default_factory=list)
    distinct: bool = False
    #: root only: ``(qualified ref, descending)`` pairs, applied to the
    #: final result by the planner (strategies produce unordered bags)
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    #: root only: maximum number of result rows (after ordering)
    limit: Optional[int] = None
    #: GROUP BY keys (qualified refs).  On the root the grouping runs as
    #: a post-pass over the strategy result; on a (necessarily
    #: uncorrelated, childless) subquery block it runs at reduce time.
    group_by: List[str] = field(default_factory=list)
    #: aggregates this block computes (root SELECT/HAVING, or a grouped
    #: subquery's HAVING)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    #: HAVING predicate over group keys and aggregate output names
    having: Optional[Expr] = None
    #: root only, with grouping: final output columns in SELECT order
    #: (group keys and aggregate output names)
    output_refs: List[str] = field(default_factory=list)
    #: disjunctive linking residual: an expression over the mark columns
    #: of marked child links plus plain predicates, applied after all
    #: children are nested in (None when every link is conjunctive)
    residual: Optional[Expr] = None
    #: assigned by :func:`number_blocks`; 1-based DFS-L2R position.
    index: int = 0

    def walk(self) -> Iterator["QueryBlock"]:
        """This block and all descendants in DFS-L2R (paper) order."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def alias_list(self) -> List[str]:
        return list(self.tables.keys())

    def owns_ref(self, ref: str) -> bool:
        """Whether a qualified column reference belongs to this block."""
        table, _, _name = ref.rpartition(".")
        return table in self.tables

    def describe(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [f"{pad}block {self.index}: {', '.join(f'{t} {a}' if t != a else t for a, t in self.tables.items())}"]
        if self.link is not None:
            lines[0] += f"  [link: {self.link.describe()}]"
        for c in self.correlations:
            lines.append(f"{pad}  corr: {c.describe()}")
        if self.group_by or self.aggregates:
            parts = []
            if self.group_by:
                parts.append("by " + ", ".join(self.group_by))
            if self.aggregates:
                parts.append(", ".join(a.describe() for a in self.aggregates))
            lines.append(f"{pad}  group: {'; '.join(parts)}")
        if self.having is not None:
            lines.append(f"{pad}  having: {self.having!r}")
        if self.residual is not None:
            lines.append(f"{pad}  residual: {self.residual!r}")
        for child in self.children:
            lines.append(child.describe(depth + 1))
        return "\n".join(lines)


@dataclass
class NestedQuery:
    """A whole nested query: the root block plus derived metadata."""

    root: QueryBlock

    def __post_init__(self) -> None:
        number_blocks(self.root)
        _validate(self.root)

    @property
    def blocks(self) -> List[QueryBlock]:
        return list(self.root.walk())

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def nesting_depth(self) -> int:
        """0 for a flat query, 1 for one-level nesting, and so on."""

        def depth(block: QueryBlock) -> int:
            if not block.children:
                return 0
            return 1 + max(depth(c) for c in block.children)

        return depth(self.root)

    @property
    def is_linear(self) -> bool:
        """At most one subquery nested within any block (paper footnote 2)."""
        return all(len(b.children) <= 1 for b in self.root.walk())

    @property
    def is_tree(self) -> bool:
        """Some block has two or more subqueries at the same level."""
        return not self.is_linear

    @property
    def has_negative_link(self) -> bool:
        return any(
            b.link is not None and b.link.is_negative for b in self.root.walk()
        )

    @property
    def has_positive_link(self) -> bool:
        return any(
            b.link is not None and b.link.is_positive for b in self.root.walk()
        )

    @property
    def has_mixed_links(self) -> bool:
        return self.has_negative_link and self.has_positive_link

    @property
    def has_aggregate_link(self) -> bool:
        """Some block is linked by ``lhs θ agg(...)`` (scalar subquery)."""
        return any(
            b.link is not None and b.link.operator == AGG_OP
            for b in self.root.walk()
        )

    @property
    def has_disjunction(self) -> bool:
        """Some block combines subqueries under OR/NOT via mark columns."""
        return any(b.residual is not None for b in self.root.walk())

    @property
    def has_grouping(self) -> bool:
        """Some block carries GROUP BY / aggregates / HAVING."""
        return any(
            b.group_by or b.aggregates or b.having is not None
            for b in self.root.walk()
        )

    def is_linearly_correlated(self) -> bool:
        """Each inner block only correlated to its *adjacent* outer block.

        This is the precondition for the bottom-up evaluation strategy of
        paper Section 4.2.3.
        """
        ancestors: Dict[int, List[QueryBlock]] = {}

        def visit(block: QueryBlock, path: List[QueryBlock]) -> bool:
            for corr in block.correlations:
                owner = _owner_of(corr.outer_ref, path)
                if owner is None:
                    return False
                if path and owner is not path[-1]:
                    return False
            return all(visit(c, path + [block]) for c in block.children)

        return visit(self.root, [])

    def parent_of(self, block: QueryBlock) -> Optional[QueryBlock]:
        for b in self.root.walk():
            if block in b.children:
                return b
        return None

    def ancestors_of(self, block: QueryBlock) -> List[QueryBlock]:
        """Path from the root down to (excluding) *block*."""
        path: List[QueryBlock] = []

        def visit(b: QueryBlock, acc: List[QueryBlock]) -> bool:
            if b is block:
                path.extend(acc)
                return True
            return any(visit(c, acc + [b]) for c in b.children)

        visit(self.root, [])
        return path

    def describe(self) -> str:
        flags = []
        flags.append("linear" if self.is_linear else "tree")
        if self.has_mixed_links:
            flags.append("mixed links")
        elif self.has_negative_link:
            flags.append("negative links")
        elif self.has_positive_link:
            flags.append("positive links")
        if self.is_linearly_correlated():
            flags.append("linearly correlated")
        return f"NestedQuery[{', '.join(flags)}]\n{self.root.describe()}"


def number_blocks(root: QueryBlock) -> None:
    """Assign 1-based DFS-L2R indexes (the paper's block numbering)."""
    for i, block in enumerate(root.walk(), start=1):
        block.index = i


def _owner_of(ref: str, path: Sequence[QueryBlock]) -> Optional[QueryBlock]:
    for block in reversed(list(path)):
        if block.owns_ref(ref):
            return block
    return None


def _validate(root: QueryBlock) -> None:
    seen_aliases: Dict[str, int] = {}
    for block in root.walk():
        if not block.tables:
            raise AnalysisError(f"block {block.index} has an empty FROM list")
        for alias in block.tables:
            if alias in seen_aliases:
                raise AnalysisError(
                    f"alias {alias!r} used by blocks {seen_aliases[alias]} and "
                    f"{block.index}; aliases must be unique across the query"
                )
            seen_aliases[alias] = block.index
        if block.link is None and block is not root:
            raise AnalysisError(f"non-root block {block.index} lacks a link")
        if block is root and block.link is not None:
            raise AnalysisError("root block must not carry a link")
        if block is root and not block.select_refs:
            raise AnalysisError("root block needs a SELECT list")
        if block is not root and (block.group_by or block.having is not None):
            # grouped subquery blocks are reduced to their aggregated
            # relation up front, which is only sound without per-outer
            # bindings or nested subqueries of their own
            if block.correlations or block.children:
                raise AnalysisError(
                    f"grouped subquery block {block.index} must be "
                    "uncorrelated and must not nest further subqueries"
                )

    # Every correlation must reference an ancestor block.
    def visit(block: QueryBlock, path: List[QueryBlock]) -> None:
        for corr in block.correlations:
            if not block.owns_ref(corr.inner_ref):
                raise AnalysisError(
                    f"correlation {corr.describe()} inner side does not belong "
                    f"to block {block.index}"
                )
            if _owner_of(corr.outer_ref, path) is None:
                raise AnalysisError(
                    f"correlation {corr.describe()} outer side does not "
                    f"resolve in any enclosing block of block {block.index}"
                )
        for child in block.children:
            visit(child, path + [block])

    visit(root, [])
