"""The cost-based planner behind ``strategy="auto"``.

The paper's central experimental claim (Section 5, Figures 4–9) is that
no single subquery strategy wins everywhere — nested iteration, the
rewrite baselines and the nested relational algorithms cross over with
cardinality and selectivity.  This module turns that observation into
the routing policy: :func:`choose` enumerates **every applicable
registered strategy**, prices each with the per-strategy cost hooks
over one :class:`~repro.core.stats.PlanStats`, and picks the cheapest.

Costs are abstract *row-ops* scaled by per-backend constants calibrated
from the committed BENCH baselines (``benchmarks/baselines/``): the
columnar engine runs the same row-op roughly 40× faster than the tuple
iterator (:data:`VECTOR_FACTOR`) but pays a per-query batch-build setup
(:data:`VECTOR_SETUP`), so tiny inputs favor the row strategies and
paper-scale inputs the vector ones — reproducing the crossovers of
Figure 4.  The morsel-parallel strategy divides vector work across
workers and is enumerated only when the caller explicitly asks for
``threads > 1``.

Strategies without a registered ``cost`` hook still participate: they
are priced at the generic pipeline work times
:data:`DEFAULT_COST_FACTOR` — deliberately pessimistic, so an uncosted
third-party strategy is only chosen when every built-in is worse.

The outcome is a :class:`PlannerDecision`, a durable artifact: the
session memoizes it (keyed by the feedback epoch), the planner records
it as a ``kind='planner'`` trace span, and ``repro explain`` renders
it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import PlanError
from ..engine.catalog import Database
from .blocks import NestedQuery
from .feedback import FeedbackStore
from .stats import DbStats, PlanStats, collect_stats

# --------------------------------------------------------------------- #
# calibrated cost constants (see benchmarks/baselines/BENCH_*.json)
# --------------------------------------------------------------------- #

#: vector row-op cost relative to a row-engine row-op: the committed
#: BENCH_vector baseline shows the columnar kernels ~40× faster on the
#: paper queries at SF 0.01
VECTOR_FACTOR = 0.025
#: per-query cost of building/loading the columnar batches, in row-ops;
#: below ~10k row-ops of work the row engine wins
VECTOR_SETUP = 512.0
#: morsel-parallel scheduling overhead per worker, in row-ops
PARALLEL_OVERHEAD = 256.0
#: index-probe cost relative to a scanned row (System A emulation)
PROBE_FACTOR = 4.0
#: pessimistic multiplier for strategies without a ``cost`` hook
DEFAULT_COST_FACTOR = 1.5
#: cost of one spilled row-op relative to an in-memory vector row-op:
#: a Grace spill pass writes every partitioned row to disk and reads it
#: back, so spilling plans are priced above any plan that fits in the
#: budget (sequential temp-file I/O, not a catastrophe — the row engine
#: can still lose to a spilling vector plan on big inputs)
SPILL_IO_FACTOR = 2.5


# --------------------------------------------------------------------- #
# built-in cost hooks (registered by the strategy modules)
# --------------------------------------------------------------------- #


def cost_nested_relational(ps: PlanStats) -> float:
    """Algorithm 1: reduce, outer-join down, hash-nest + link up."""
    return ps.pipeline_work


def cost_nested_relational_sorted(ps: PlanStats) -> float:
    """Algorithm 1 with the sort-based nest: same joins, dearer nests."""
    return ps.scan_work + ps.join_work + 1.3 * ps.nest_work


def cost_optimized(ps: PlanStats) -> float:
    """Single-pass pipeline: one fused sort replaces per-level nests."""
    return ps.scan_work + 0.75 * (ps.join_work + ps.nest_work)


def cost_bottomup(ps: PlanStats) -> float:
    """Bottom-up with nest push-down: intermediates stay reduced-size."""
    return ps.scan_work + ps.bottomup_work


def cost_positive_rewrite(ps: PlanStats) -> float:
    """Semijoin chain: no padding, no nesting — cheapest row plan."""
    return ps.scan_work + ps.semijoin_work


def cost_nested_iteration(ps: PlanStats) -> float:
    """Per-outer-tuple re-evaluation of every subquery (the oracle)."""
    return ps.scan_work + ps.iteration_work


def cost_system_a(ps: PlanStats) -> float:
    """Per-tuple index probes: linear in outer rows, not in inner size."""
    return ps.scan_work + PROBE_FACTOR * ps.probe_work


def cost_unnesting(ps: PlanStats) -> float:
    """Classical semi/antijoin unnesting: join work without the nests."""
    return ps.scan_work + ps.join_work + 0.25 * ps.nest_work


def cost_agg_rewrite(ps: PlanStats) -> float:
    """Magic-style aggregate rewrite: joins plus a grouping pass."""
    return ps.scan_work + ps.join_work + 0.9 * ps.nest_work


def cost_count_rewrite(ps: PlanStats) -> float:
    """Kim-style COUNT rewrite: an extra outer-join leg for the counts."""
    return ps.scan_work + 1.2 * ps.join_work + 0.9 * ps.nest_work


def cost_boolean_aggregate(ps: PlanStats) -> float:
    """Mark-join rewrite: joins plus boolean-aggregation per outer row."""
    return ps.scan_work + 1.1 * ps.join_work + 0.8 * ps.nest_work


def cost_vectorized(ps: PlanStats) -> float:
    """Algorithm 1 on the columnar engine: cheap row-ops, fixed setup.

    Under a memory budget the hash builds may not fit; the estimated
    spill passes are charged at :data:`SPILL_IO_FACTOR`, so the planner
    prefers a non-spilling plan whenever one exists.
    """
    return VECTOR_SETUP + VECTOR_FACTOR * (
        ps.pipeline_work + SPILL_IO_FACTOR * ps.spill_io_work()
    )


def cost_parallel(ps: PlanStats) -> float:
    """Morsel-parallel vector engine: work divides, scheduling doesn't.

    Spill I/O does not divide either — partition files are written
    sequentially by whichever worker hits the budget — so the spill term
    is charged undivided.
    """
    threads = max(2, ps.threads)
    return (
        VECTOR_SETUP
        + PARALLEL_OVERHEAD * threads
        + VECTOR_FACTOR * ps.pipeline_work / threads
        + VECTOR_FACTOR * SPILL_IO_FACTOR * ps.spill_io_work()
    )


def default_cost(ps: PlanStats) -> float:
    """Fallback for strategies registered without a ``cost`` hook."""
    return DEFAULT_COST_FACTOR * ps.pipeline_work


# --------------------------------------------------------------------- #
# applicability and fingerprints
# --------------------------------------------------------------------- #


def strategy_applicable(impl: object, query: NestedQuery, db: Database) -> bool:
    """Normalize the two ``applicable`` protocols in the codebase:
    ``applicable(query) -> bool`` and
    ``applicable(query, db) -> Optional[str]`` (None = applicable).
    Strategies without a guard accept everything."""
    guard = getattr(impl, "applicable", None)
    if guard is None:
        return True
    try:
        verdict = guard(query, db)
    except TypeError:
        verdict = guard(query)
    if verdict is None or verdict is True:
        return True
    if verdict is False or isinstance(verdict, str):
        return False
    return bool(verdict)


def plan_fingerprint(query: NestedQuery) -> str:
    """A stable digest of the plan's logical shape.

    Keys the :class:`~repro.core.feedback.FeedbackStore`: two prepared
    queries with the same block structure *and* the same predicates
    share observations.  ``QueryBlock.describe()`` omits local
    predicates, so they are folded in explicitly — a changed constant
    changes the fingerprint (its cardinalities are different facts).
    """
    parts: List[str] = []
    for block in query.root.walk():
        parts.append(
            "|".join(
                (
                    str(block.index),
                    ";".join(f"{a}={t}" for a, t in sorted(block.tables.items())),
                    block.link.describe() if block.link is not None else "",
                    ";".join(c.describe() for c in block.correlations),
                    repr(block.local_predicate),
                    ";".join(block.group_by),
                    ";".join(a.describe() for a in block.aggregates),
                    repr(block.having),
                    repr(block.residual),
                )
            )
        )
    digest = hashlib.sha1("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


# --------------------------------------------------------------------- #
# the decision
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CandidatePlan:
    """One enumerated strategy with its estimated price."""

    name: str
    backend: str
    est_cost: float
    est_rows: float
    costed: bool
    chosen: bool

    def describe(self) -> str:
        marker = "*" if self.chosen else " "
        pricing = "" if self.costed else "  (default cost)"
        return (
            f"{marker} {self.name}  [{self.backend}]  "
            f"cost={self.est_cost:.1f}  rows~{self.est_rows:.0f}{pricing}"
        )


@dataclass(frozen=True)
class PlannerDecision:
    """The durable outcome of one cost-based ``auto`` resolution.

    ``impl`` is the instantiated winning strategy (threads applied);
    ``candidates`` is every enumerated candidate sorted cheapest-first.
    The session memoizes whole decisions; the planner replays them and
    records them as ``kind='planner'`` spans.
    """

    chosen: str
    impl: object
    candidates: Tuple[CandidatePlan, ...]
    fingerprint: str
    feedback_epoch: int
    est_rows: float
    threads: Optional[int] = None

    @property
    def est_cost(self) -> float:
        for cand in self.candidates:
            if cand.chosen:
                return cand.est_cost
        return float("nan")

    def describe(self) -> str:
        lines = [f"auto -> {self.chosen}  (cost-based)"]
        for cand in self.candidates:
            lines.append("  " + cand.describe())
        return "\n".join(lines)


def choose(
    query: NestedQuery,
    db: Database,
    backend: Optional[str] = None,
    threads: Optional[int] = None,
    feedback: Optional[FeedbackStore] = None,
    stats: Optional[DbStats] = None,
    memory_limit_mb: Optional[float] = None,
) -> PlannerDecision:
    """Enumerate, cost and rank every applicable strategy.

    *backend* filters candidates to one substrate (``None`` considers
    both).  The morsel-parallel strategy is enumerated only when
    *threads* > 1 was explicitly requested.  *feedback* supplies
    observed cardinalities that override the estimates (and its epoch
    stamps the decision, so memoized decisions age out when new
    observations land).  *memory_limit_mb* is the execution memory
    budget: builds estimated not to fit are charged their extra spill
    I/O passes (:data:`SPILL_IO_FACTOR`).
    """
    from .. import strategies as registry

    registry.ensure_loaded()
    if stats is None:
        stats = collect_stats(db)
    fingerprint = plan_fingerprint(query)
    overrides: Dict[int, int] = {}
    epoch = 0
    if feedback is not None:
        overrides = feedback.block_overrides(fingerprint)
        epoch = feedback.epoch
    eff_threads = threads if threads is not None and threads > 1 else 1
    ps = PlanStats(
        query, stats, threads=eff_threads, overrides=overrides,
        memory_limit_mb=memory_limit_mb,
    )

    scored: List[Tuple[float, str, object, str, bool]] = []
    for entry in registry.entries():
        if backend is not None and entry.backend != backend:
            continue
        if entry.name == "nested-relational-parallel" and eff_threads <= 1:
            continue
        impl = entry.make()
        if not strategy_applicable(impl, query, db):
            continue
        costed = entry.cost is not None
        cost = entry.cost(ps) if costed else default_cost(ps)
        scored.append((cost, entry.name, impl, entry.backend, costed))
    if not scored:
        raise PlanError(
            f"no applicable strategy for backend={backend!r}; "
            f"registered: {registry.names()}"
        )
    scored.sort(key=lambda item: (item[0], item[1]))

    chosen_cost, chosen_name, impl, _b, _c = scored[0]
    if threads is not None and hasattr(impl, "set_threads"):
        impl.set_threads(threads)
    candidates = tuple(
        CandidatePlan(
            name=name,
            backend=cand_backend,
            est_cost=cost,
            est_rows=ps.out_rows,
            costed=costed,
            chosen=name == chosen_name,
        )
        for cost, name, _impl, cand_backend, costed in scored
    )
    return PlannerDecision(
        chosen=chosen_name,
        impl=impl,
        candidates=candidates,
        fingerprint=fingerprint,
        feedback_epoch=epoch,
        est_rows=ps.out_rows,
        threads=threads,
    )
