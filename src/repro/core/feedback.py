"""The planner's feedback loop: observed cardinalities per plan.

Every traced execution produces a span tree whose ``reduce[T{i}]``
phase spans carry the *actual* reduced-block cardinalities and whose
root ``execute`` span carries the actual result size.  A per-session
:class:`FeedbackStore` records those observations keyed by
``(plan fingerprint, span name)``; on the next ``strategy="auto"``
resolution of the same plan the optimizer replaces its estimated block
cardinalities with the observed ones
(:class:`~repro.core.stats.PlanStats` ``overrides``), so repeated
Session traffic converges on costs grounded in reality rather than
sampling heuristics.

``epoch`` increments whenever an observation is added or changed; the
session's plan cache keys its memoized
:class:`~repro.core.optimizer.PlannerDecision` on the epoch, so a new
observation transparently invalidates stale choices.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Optional, Tuple

#: span name of the root execution span (carries the result cardinality)
ROOT_SPAN = "execute"
_REDUCE_RE = re.compile(r"^reduce\[T(\d+)\]$")


class FeedbackStore:
    """Observed (plan fingerprint, operator) -> row-count map.

    One per :class:`~repro.session.Session` — or shared by every pooled
    session of a :mod:`repro.serve` server, in which case many traced
    executions harvest concurrently.  Observation is additive and
    idempotent: re-observing identical cardinalities leaves the
    :attr:`epoch` unchanged, so cached planner decisions stay valid
    until the workload actually teaches the store something new.

    Thread-safe: the check-then-set in :meth:`record` (and the epoch
    bump it guards) runs under a lock, so concurrent traced runs never
    lose observations or epoch increments; lookups copy under the same
    lock so the optimizer prices against a consistent snapshot.
    """

    def __init__(self) -> None:
        self._observations: Dict[Tuple[str, str], int] = {}
        self._epoch = 0
        self._lock = threading.Lock()

    @property
    def epoch(self) -> int:
        """Bumped whenever an observation is added or changes."""
        return self._epoch

    def __len__(self) -> int:
        return len(self._observations)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(self, fingerprint: str, span_name: str, rows: int) -> None:
        """Record one observed cardinality (``observe`` is the bulk API)."""
        key = (fingerprint, span_name)
        with self._lock:
            if self._observations.get(key) != rows:
                self._observations[key] = rows
                self._epoch += 1

    def observe(self, fingerprint: str, trace) -> int:
        """Harvest a :class:`~repro.engine.trace.Trace` span tree.

        Records the root span's ``rows_out`` (result cardinality) and
        every ``reduce[T{i}]`` phase span's ``rows_out`` (reduced block
        cardinalities — the quantities the estimator guesses at).
        Aborted spans are skipped: their counters describe partial
        work.  Returns the number of observations recorded.
        """
        seen = 0
        for root in trace.roots:
            for span in root.walk():
                if span.aborted or "rows_out" not in span.counters:
                    continue
                if span.kind == "root" and span.name == ROOT_SPAN:
                    self.record(fingerprint, ROOT_SPAN, span.counters["rows_out"])
                    seen += 1
                elif _REDUCE_RE.match(span.name):
                    self.record(fingerprint, span.name, span.counters["rows_out"])
                    seen += 1
        return seen

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def block_overrides(self, fingerprint: str) -> Dict[int, int]:
        """Observed reduced-block cardinalities: block index -> rows."""
        out: Dict[int, int] = {}
        with self._lock:
            items = list(self._observations.items())
        for (fp, name), rows in items:
            if fp != fingerprint:
                continue
            match = _REDUCE_RE.match(name)
            if match:
                out[int(match.group(1))] = rows
        return out

    def out_rows(self, fingerprint: str) -> Optional[int]:
        """The observed result cardinality of this plan, if any."""
        with self._lock:
            return self._observations.get((fingerprint, ROOT_SPAN))

    def observations(self, fingerprint: str) -> Dict[str, int]:
        """Every observation recorded for this plan (span name -> rows)."""
        with self._lock:
            items = list(self._observations.items())
        return {name: rows for (fp, name), rows in items if fp == fingerprint}

    def clear(self) -> None:
        """Forget everything (bumps the epoch if anything was stored)."""
        with self._lock:
            if self._observations:
                self._observations.clear()
                self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeedbackStore(epoch={self._epoch}, "
            f"observations={len(self._observations)})"
        )
