"""The nested relational model (paper Definitions 1 and 2).

A nested schema is a tree: atomic attributes plus named subschemas; its
*depth* is 0 for flat schemas and ``1 + max(depth(sub))`` otherwise.  A
nested relation holds rows whose atomic positions carry SQL values and
whose subschema positions carry *sets of nested tuples* over the
subschema (represented as Python tuples of row tuples, in insertion
order; set semantics are enforced at construction by the nest operator).

The approach of the paper needs only shallow nesting produced by
:func:`repro.core.nest.nest`, but the model here is fully recursive so
the algebra can express the multi-level relations of Section 4.2.1
(consecutive nests) and so property-based tests can exercise depth > 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..engine.schema import Column, Schema
from ..engine.types import SqlValue, is_null

#: A nested tuple: atomic values and/or tuples-of-nested-tuples.
NestedRow = Tuple[object, ...]


@dataclass(frozen=True)
class SubSchema:
    """A named subschema inside a nested schema (paper Definition 1.2)."""

    name: str
    schema: "NestedSchema"

    def __repr__(self) -> str:
        return f"SubSchema({self.name}: {self.schema!r})"


class NestedSchema:
    """An ordered mix of atomic :class:`Column` and :class:`SubSchema`.

    Atomic attributes come first in iteration order they were given;
    components may interleave, matching Definition 1's
    ``R = (A_1, ..., A_n, R_1, ..., R_m)`` without forcing a layout.
    """

    __slots__ = ("components",)

    def __init__(self, components: Iterable[Union[Column, SubSchema]]):
        self.components: Tuple[Union[Column, SubSchema], ...] = tuple(components)
        names = [self._name(c) for c in self.components]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate component names in nested schema: {names}")

    @staticmethod
    def _name(component: Union[Column, SubSchema]) -> str:
        return component.qualified if isinstance(component, Column) else component.name

    @staticmethod
    def flat(schema: Schema) -> "NestedSchema":
        """Lift a flat schema (depth 0)."""
        return NestedSchema(schema.columns)

    # ------------------------------------------------------------------ #

    @property
    def atomic_columns(self) -> List[Column]:
        return [c for c in self.components if isinstance(c, Column)]

    @property
    def subschemas(self) -> List[SubSchema]:
        return [c for c in self.components if isinstance(c, SubSchema)]

    @property
    def depth(self) -> int:
        """Paper Definition 1: 0 if flat, else 1 + max subschema depth."""
        subs = self.subschemas
        if not subs:
            return 0
        return 1 + max(s.schema.depth for s in subs)

    def __len__(self) -> int:
        return len(self.components)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NestedSchema) and self.components == other.components

    def __repr__(self) -> str:
        parts = []
        for c in self.components:
            if isinstance(c, Column):
                parts.append(c.qualified)
            else:
                parts.append(f"{c.name}<{c.schema!r}>")
        return f"NestedSchema({', '.join(parts)})"

    def index_of(self, name: str) -> int:
        """Position of a component by (qualified) name."""
        for i, c in enumerate(self.components):
            if self._name(c) == name:
                return i
        # fall back to bare-name resolution among atomic columns
        hits = [
            i
            for i, c in enumerate(self.components)
            if isinstance(c, Column) and c.name == name
        ]
        if len(hits) == 1:
            return hits[0]
        raise SchemaError(f"unknown or ambiguous component {name!r} in {self!r}")

    def component(self, name: str) -> Union[Column, SubSchema]:
        return self.components[self.index_of(name)]

    def subschema(self, name: str) -> SubSchema:
        comp = self.component(name)
        if not isinstance(comp, SubSchema):
            raise SchemaError(f"component {name!r} is atomic, not a subschema")
        return comp

    def atomic_schema(self) -> Schema:
        """Flat schema over the atomic components only."""
        return Schema(self.atomic_columns)

    def to_flat(self) -> Schema:
        """Interpret a depth-0 nested schema as a flat schema."""
        if self.depth != 0:
            raise SchemaError(f"{self!r} has depth {self.depth}, not flat")
        return Schema(self.atomic_columns)


class NestedRelation:
    """A finite set of nested tuples over a :class:`NestedSchema`."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: NestedSchema, rows: Iterable[NestedRow] = ()):
        self.schema = schema
        self.rows: List[NestedRow] = [tuple(r) for r in rows]
        width = len(schema)
        for r in self.rows:
            if len(r) != width:
                raise SchemaError(
                    f"nested row arity {len(r)} != schema width {width}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[NestedRow]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"NestedRelation({self.schema!r}, {len(self.rows)} rows)"

    @property
    def depth(self) -> int:
        return self.schema.depth

    def group(self, row: NestedRow, sub_name: str) -> Tuple[tuple, ...]:
        """The set of sub-tuples stored in *row* under subschema *sub_name*."""
        return row[self.schema.index_of(sub_name)]

    def project_atomic(self) -> "NestedRelation":
        """Drop all subschema components (the implicit projection after a
        linking selection consumes its set attribute)."""
        keep = [
            i
            for i, c in enumerate(self.schema.components)
            if isinstance(c, Column)
        ]
        schema = NestedSchema([self.schema.components[i] for i in keep])
        return NestedRelation(schema, (tuple(r[i] for i in keep) for r in self.rows))

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Aligned text rendering; set attributes display as {…}."""
        headers = [NestedSchema._name(c) for c in self.schema.components]
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = []
        for row in shown:
            rendered = []
            for value, comp in zip(row, self.schema.components):
                if isinstance(comp, SubSchema):
                    inner = ", ".join(
                        "(" + ", ".join(_fmt(v) for v in sub) + ")" for sub in value
                    )
                    rendered.append("{" + inner + "}")
                else:
                    rendered.append(_fmt(value))
            cells.append(rendered)
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if is_null(value):
        return "null"
    return str(value)
