"""Strategy registry and automatic strategy selection.

``execute(query, db, strategy="auto")`` is the library's front door: it
routes a :class:`~repro.core.blocks.NestedQuery` to one of the registered
evaluation strategies.  ``"auto"`` applies the paper's guidance:

* all-positive linking operators → the algebraic positive rewrite
  (Section 4.2.5: the nested relational expression simplifies to plain
  (semi)joins, so do that);
* linear, linearly correlated queries → bottom-up evaluation with nest
  push-down (Sections 4.2.3/4.2.4: small intermediate results);
* linear queries otherwise → the single-pass pipelined variant
  (Sections 4.2.1/4.2.2);
* anything else → the original Algorithm 1, which handles any query
  shape uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import PlanError
from ..engine.catalog import Database
from ..engine.metrics import current_metrics
from ..engine.relation import Relation
from ..engine.trace import current_tracer
from .blocks import NestedQuery
from .compute import NestedRelationalStrategy
from .optimized import (
    BottomUpLinearStrategy,
    OptimizedNestedRelationalStrategy,
    PositiveRewriteStrategy,
)


def _strategies() -> Dict[str, Callable[[], object]]:
    from ..baselines.nested_iteration import NestedIterationStrategy
    from ..baselines.unnesting import ClassicalUnnestingStrategy
    from ..baselines.native import SystemAEmulationStrategy
    from ..baselines.count_rewrite import CountRewriteStrategy
    from ..baselines.boolean_aggregate import BooleanAggregateStrategy
    from ..baselines.agg_rewrite import AggregateRewriteStrategy

    return {
        "count-rewrite": CountRewriteStrategy,
        "boolean-aggregate": BooleanAggregateStrategy,
        "aggregate-rewrite": AggregateRewriteStrategy,
        "nested-relational": NestedRelationalStrategy,
        "nested-relational-sorted": lambda: NestedRelationalStrategy(
            nest_impl="sorted"
        ),
        "nested-relational-optimized": OptimizedNestedRelationalStrategy,
        "nested-relational-bottomup": BottomUpLinearStrategy,
        "nested-relational-positive-rewrite": PositiveRewriteStrategy,
        "nested-iteration": NestedIterationStrategy,
        "classical-unnesting": ClassicalUnnestingStrategy,
        "system-a-native": SystemAEmulationStrategy,
    }


def available_strategies() -> list:
    """Names accepted by :func:`execute`'s *strategy* argument."""
    return sorted(_strategies()) + ["auto"]


def make_strategy(name: str):
    """Instantiate a strategy by registry name."""
    registry = _strategies()
    if name not in registry:
        raise PlanError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        )
    return registry[name]()


def choose_strategy(query: NestedQuery):
    """The paper's 'auto' policy, as an inspectable function."""
    if query.nesting_depth == 0:
        return NestedRelationalStrategy()
    positive = PositiveRewriteStrategy()
    if positive.applicable(query):
        return positive
    bottom_up = BottomUpLinearStrategy()
    if bottom_up.applicable(query):
        return bottom_up
    if query.is_linear:
        return OptimizedNestedRelationalStrategy()
    return NestedRelationalStrategy()


def execute(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
) -> Relation:
    """Evaluate *query* against *db* with the given strategy.

    *strategy* may be a registry name, ``"auto"``, or any object with an
    ``execute(query, db)`` method.
    """
    if isinstance(strategy, str):
        impl = choose_strategy(query) if strategy == "auto" else make_strategy(strategy)
    else:
        impl = strategy
    tracer = current_tracer()
    if tracer is None:
        result = _finalize(impl.execute(query, db), query)
        current_metrics().add("rows_produced", len(result))
        return result
    name = getattr(impl, "name", type(impl).__name__)
    with tracer.span("execute", {"strategy": name}, kind="root") as span:
        result = _finalize(impl.execute(query, db), query)
        current_metrics().add("rows_produced", len(result))
        span.add("rows_out", len(result))
    return result


def execute_traced(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
):
    """Like :func:`execute`, but also return the execution trace.

    Runs under a fresh :func:`~repro.engine.trace.tracing` scope and
    returns ``(result, trace)``.
    """
    from ..engine.trace import tracing

    with tracing() as trace:
        result = execute(query, db, strategy=strategy)
    return result, trace


def _finalize(result: Relation, query: NestedQuery) -> Relation:
    """Apply root-level ORDER BY / LIMIT to a strategy's bag result.

    Strategies are order-agnostic (the paper's algebra is set-based); the
    presentation clauses are applied once here so every strategy gets
    them for free and stays comparable.
    """
    root = query.root
    if root.order_by:
        from ..engine.types import row_sort_key

        positions = result.schema.indices_of([ref for ref, _d in root.order_by])
        rows = list(result.rows)
        # stable sort: apply keys right-to-left so leftmost wins
        for pos, (_ref, descending) in reversed(
            list(zip(positions, root.order_by))
        ):
            rows.sort(key=lambda r: row_sort_key((r[pos],)), reverse=descending)
        result = Relation(result.schema, rows)
    if root.limit is not None:
        result = Relation(result.schema, result.rows[: root.limit])
    return result
