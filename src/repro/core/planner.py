"""Strategy resolution and automatic strategy selection.

Strategy names live in the :mod:`repro.strategies` registry; this module
resolves them (honouring an execution-backend request) and dispatches
``"auto"`` onto the **cost-based planner**
(:func:`repro.core.optimizer.choose`): every applicable registered
strategy is enumerated, priced against sampled table statistics (plus
any per-session feedback observations), and the cheapest wins.  The
decision is recorded as a ``kind="planner"`` span under the root
``execute`` span whenever tracing is active.

:func:`choose_strategy` — the paper's original shape-based routing rule
(Sections 4.2.1–4.2.5) — survives as the statistics-free fallback used
by :func:`resolve_strategy` when no database is supplied, and as an
inspectable description of the per-shape refinements.

:func:`run` / :func:`run_traced` are the internal execution entry points
used by :class:`repro.session.Session`; the historical module-level
:func:`execute` / :func:`execute_traced` remain as deprecated shims.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from ..errors import PlanError, ResourceGovernanceError
from ..engine.catalog import Database
from ..engine.governor import ResourceGovernor, checkpoint, governed
from ..engine.metrics import current_metrics
from ..engine.relation import Relation
from ..engine.trace import (
    KIND_GOVERNOR,
    KIND_PLANNER,
    Tracer,
    current_tracer,
    op_span,
)
from .blocks import NestedQuery
from .compute import NestedRelationalStrategy
from .feedback import FeedbackStore
from .optimized import (
    BottomUpLinearStrategy,
    OptimizedNestedRelationalStrategy,
    PositiveRewriteStrategy,
)
from .optimizer import PlannerDecision, choose


def available_strategies() -> list:
    """Names accepted by the *strategy* argument of the execution APIs."""
    from .. import strategies as registry

    return registry.names() + [registry.AUTO]


def make_strategy(name: str):
    """Instantiate a strategy by registry name."""
    from .. import strategies as registry

    return registry.make(name)


def choose_strategy(query: NestedQuery):
    """The paper's 'auto' policy, as an inspectable function."""
    if query.nesting_depth == 0:
        return NestedRelationalStrategy()
    positive = PositiveRewriteStrategy()
    if positive.applicable(query):
        return positive
    bottom_up = BottomUpLinearStrategy()
    if bottom_up.applicable(query):
        return bottom_up
    if query.is_linear:
        return OptimizedNestedRelationalStrategy()
    return NestedRelationalStrategy()


def resolve_strategy(
    strategy: Union[str, object],
    query: NestedQuery,
    backend: Optional[str] = None,
    threads: Optional[int] = None,
):
    """Turn a (strategy, backend, threads) request into an executable
    instance.

    *strategy* may be a registry name, ``"auto"``, or an object with an
    ``execute(query, db)`` method (in which case *backend* must be left
    unset: an instance already fixes its own substrate).

    *threads* > 1 routes ``"auto"`` onto the morsel-driven
    ``nested-relational-parallel`` strategy (unless a row backend was
    explicitly requested — the row engine is single-threaded) and is
    forwarded to any resolved strategy exposing ``set_threads``.
    """
    from .. import strategies as registry

    if not isinstance(strategy, str):
        if backend is not None:
            raise PlanError(
                "backend cannot be overridden for a strategy instance; "
                "pass a registry name instead"
            )
        impl = strategy
    elif (
        strategy == registry.AUTO
        and threads is not None
        and threads > 1
        and backend != registry.ROW_BACKEND
    ):
        impl = registry.resolve(
            "nested-relational-parallel", registry.VECTOR_BACKEND
        )
    elif strategy == registry.AUTO and backend in (None, registry.ROW_BACKEND):
        impl = choose_strategy(query)
    else:
        impl = registry.resolve(strategy, backend)
    if threads is not None and hasattr(impl, "set_threads"):
        impl.set_threads(threads)
    return impl


def _degrade_target(
    governor: Optional[ResourceGovernor], impl: object, exc: Exception
) -> Optional[str]:
    """The registry name to retry on, or None when the error is final.

    The degradation ladder has exactly one rung: a strategy that
    declares a ``degrade_target`` (the morsel-parallel strategy names
    the single-threaded vectorized one) is retried once when the
    governor's policy is ``'sequential'`` and the failure is *not* a
    governance verdict — a breached deadline or budget has also been
    breached for any retry, so those always surface.
    """
    if governor is None or governor.degrade != "sequential":
        return None
    if isinstance(exc, ResourceGovernanceError):
        return None
    return getattr(impl, "degrade_target", None)


def _run_strategy(
    impl: object,
    query: NestedQuery,
    db: Database,
    governor: Optional[ResourceGovernor],
) -> Relation:
    """Execute *impl*, applying the governor's degradation ladder."""
    from .. import strategies as registry
    from ..errors import ReproError

    try:
        return impl.execute(query, db)
    except ReproError as exc:
        target = _degrade_target(governor, impl, exc)
        if target is None:
            raise
        source = getattr(impl, "name", type(impl).__name__)
        governor.record_degradation(source, target, type(exc).__name__)
        governor.check("degrade")  # a passed deadline beats the retry
        retry = registry.make(target)
        with op_span(
            "degrade",
            kind=KIND_GOVERNOR,
            source=source,
            target=target,
            reason=type(exc).__name__,
        ):
            return retry.execute(query, db)


def _emit_planner_span(tracer: Tracer, decision: PlannerDecision):
    """Record a :class:`~repro.core.optimizer.PlannerDecision` as a
    ``kind='planner'`` span with one ``candidate[...]`` child per
    enumerated strategy.  Returns the parent span so the caller can set
    ``actual_rows`` once the result cardinality is known (counters are
    read at serialization time, so setting one after the span closed is
    well-defined)."""
    with tracer.span(
        "planner",
        {
            "chosen": decision.chosen,
            "fingerprint": decision.fingerprint,
            "feedback_epoch": decision.feedback_epoch,
        },
        kind=KIND_PLANNER,
    ) as span:
        span.set("est_rows", int(decision.est_rows))
        for cand in decision.candidates:
            with tracer.span(
                f"candidate[{cand.name}]",
                {
                    "backend": cand.backend,
                    "est_cost": f"{cand.est_cost:.1f}",
                    "costed": cand.costed,
                    "chosen": cand.chosen,
                },
                kind=KIND_PLANNER,
            ) as cand_span:
                cand_span.set("est_rows", int(cand.est_rows))
    return span


def run(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
    backend: Optional[str] = None,
    threads: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
    feedback: Optional[FeedbackStore] = None,
) -> Relation:
    """Evaluate *query* against *db* (internal, non-deprecated entry).

    This is the single execution path behind
    :meth:`repro.session.PreparedQuery.execute`.  ``strategy="auto"``
    dispatches onto the cost-based planner
    (:func:`repro.core.optimizer.choose`, fed any *feedback*
    observations); a memoized :class:`~repro.core.optimizer.PlannerDecision`
    may be passed directly as *strategy* to replay a prior choice
    without re-costing.  The resolved strategy runs under the root trace
    span when tracing is active (with the decision recorded as a
    ``kind='planner'`` span) and under the ambient *governor* scope when
    one is supplied; root-level ORDER BY/LIMIT apply last and the
    ``rows_produced`` metric is charged.
    """
    from .. import strategies as registry

    decision: Optional[PlannerDecision] = None
    if isinstance(strategy, PlannerDecision):
        decision = strategy
        impl = decision.impl
    elif isinstance(strategy, str) and strategy == registry.AUTO:
        limit_mb = None
        if governor is not None and governor.memory_limit_bytes is not None:
            limit_mb = governor.memory_limit_bytes / (1024 * 1024)
        decision = choose(
            query, db, backend=backend, threads=threads, feedback=feedback,
            memory_limit_mb=limit_mb,
        )
        impl = decision.impl
    else:
        impl = resolve_strategy(strategy, query, backend, threads=threads)
    try:
        with governed(governor):
            if governor is not None:
                governor.start()
            checkpoint("plan")
            tracer = current_tracer()
            if tracer is None:
                result = _finalize(
                    _run_strategy(impl, query, db, governor), query
                )
                current_metrics().add("rows_produced", len(result))
                return result
            name = getattr(impl, "name", type(impl).__name__)
            with tracer.span("execute", {"strategy": name}, kind="root") as span:
                planner_span = (
                    _emit_planner_span(tracer, decision)
                    if decision is not None
                    else None
                )
                if governor is not None:
                    with tracer.span(
                        "governor", governor.describe_attrs(), kind=KIND_GOVERNOR
                    ):
                        result = _run_strategy(impl, query, db, governor)
                else:
                    result = _run_strategy(impl, query, db, governor)
                result = _finalize(result, query)
                current_metrics().add("rows_produced", len(result))
                span.add("rows_out", len(result))
                if planner_span is not None:
                    planner_span.set("actual_rows", len(result))
        return result
    finally:
        # sweep this execution's private spill workspace (if any pass
        # created one) so a shared spill_dir ends every execution —
        # including aborted ones — as empty as it started
        if governor is not None:
            governor.cleanup_spill_workspace()


def run_traced(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
    backend: Optional[str] = None,
    threads: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
    feedback: Optional[FeedbackStore] = None,
):
    """Like :func:`run`, under a fresh tracing scope; returns
    ``(result, trace)``."""
    from ..engine.trace import tracing

    with tracing() as trace:
        result = run(
            query, db, strategy=strategy, backend=backend, threads=threads,
            governor=governor, feedback=feedback,
        )
    return result, trace


# --------------------------------------------------------------------- #
# Deprecated module-level entry points (kept as thin shims).
# --------------------------------------------------------------------- #

_EXECUTE_DEPRECATION = (
    "repro.core.planner.{name}() is deprecated; use "
    "repro.connect(db).prepare(sql).{method}() instead"
)


def execute(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
    backend: Optional[str] = None,
) -> Relation:
    """Deprecated: use ``repro.connect(db).prepare(sql).execute()``."""
    warnings.warn(
        _EXECUTE_DEPRECATION.format(name="execute", method="execute"),
        DeprecationWarning,
        stacklevel=2,
    )
    return run(query, db, strategy=strategy, backend=backend)


def execute_traced(
    query: NestedQuery,
    db: Database,
    strategy: Union[str, object] = "auto",
    backend: Optional[str] = None,
):
    """Deprecated: use ``repro.connect(db).prepare(sql).trace()``."""
    warnings.warn(
        _EXECUTE_DEPRECATION.format(name="execute_traced", method="trace"),
        DeprecationWarning,
        stacklevel=2,
    )
    return run_traced(query, db, strategy=strategy, backend=backend)


def _finalize(result: Relation, query: NestedQuery) -> Relation:
    """Apply root-level ORDER BY / LIMIT to a strategy's bag result.

    Strategies are order-agnostic (the paper's algebra is set-based); the
    presentation clauses are applied once here so every strategy gets
    them for free and stays comparable.
    """
    root = query.root
    if root.group_by or root.aggregates or root.having is not None:
        result = _group_root_output(result, root)
    if root.order_by:
        from ..engine.types import row_sort_key

        positions = result.schema.indices_of([ref for ref, _d in root.order_by])
        rows = list(result.rows)
        # stable sort: apply keys right-to-left so leftmost wins
        for pos, (_ref, descending) in reversed(
            list(zip(positions, root.order_by))
        ):
            rows.sort(key=lambda r: row_sort_key((r[pos],)), reverse=descending)
        result = Relation(result.schema, rows)
    if root.limit is not None:
        result = Relation(result.schema, result.rows[: root.limit])
    return result


def _group_root_output(result: Relation, root) -> Relation:
    """Root-level GROUP BY / aggregates / HAVING over the strategy's bag.

    Strategies return the root block's ``select_refs`` with multiplicity
    preserved, so aggregation composes here exactly as in SQL: group,
    aggregate, filter by HAVING under 3VL truth, project the SELECT list.
    A global aggregate over zero input rows still yields one row (COUNT
    becomes 0, every other aggregate NULL).
    """
    from ..engine.expressions import EvalContext, truth
    from ..engine.operators.aggregate import AggSpec, GroupAggregate
    from ..engine.types import NULL

    aggs = [AggSpec(a.func, a.arg, name=a.name) for a in root.aggregates]
    grouped = GroupAggregate(result, list(root.group_by), aggs).run()
    if not root.group_by and not grouped.rows:
        grouped = Relation(
            grouped.schema,
            [
                tuple(
                    0 if a.func in ("count", "count_star") else NULL
                    for a in aggs
                )
            ],
        )
    if root.having is not None:
        kept = [
            row
            for row in grouped.rows
            if truth(
                root.having, EvalContext.single(grouped.schema, row)
            ).is_true()
        ]
        grouped = Relation(grouped.schema, kept)
    return grouped.project(root.output_refs)
