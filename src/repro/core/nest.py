"""The nest and unnest operators (paper Definition 3).

``nest(r, by=N1, keep=N2)`` — written υ_{N1,N2}(r) in the paper — groups
the rows of a flat relation by the *nesting attributes* N1 and collects,
for each group, the set of N2-projections as a set-valued attribute.  The
definition differs from the traditional one in two ways the paper calls
out explicitly:

* both N1 and N2 are given (traditionally N1 is implied as the
  complement), and the result carries an **implicit projection** onto
  N1 ∪ N2 — attributes outside both lists are dropped;
* this highlights the connection between nesting and grouping, which is
  what makes the single-pass implementations possible.

Two physical implementations are provided, mirroring the paper's
"the two obvious options to implement nest are sorting and hashing":

* :func:`nest` (hash-based) — one pass, hash table on the N1 key;
* :func:`nest_sorted` — sorts by N1 first, then emits groups in one
  scan (this is what the stored-procedure implementation in Section 5.1
  does, and what the pipelined optimized variant builds on).

``unnest`` is the inverse on relations produced by nest with a key among
N1 (paper: "The unnest operator can be defined as usual to be the inverse
of nest").  Unnesting a row whose set is empty produces nothing, so
nest/unnest round-trips only for rows with non-empty groups — tests pin
exactly this contract.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..engine.governor import charge_rows, checkpoint
from ..engine.metrics import current_metrics
from ..engine.trace import CONTRACT_FILTERING, op_span
from ..engine.relation import Relation, Row
from ..engine.schema import Column, Schema
from ..engine.types import row_group_key, row_sort_key
from .nested import NestedRelation, NestedSchema, SubSchema

DEFAULT_SET_NAME = "_nested"


def _plan(
    relation: Relation, by: Sequence[str], keep: Sequence[str], set_name: str
) -> Tuple[Tuple[int, ...], Tuple[int, ...], NestedSchema, Schema]:
    """Resolve positions and build the output schemas for a nest."""
    schema = relation.schema
    by_idx = schema.indices_of(by)
    keep_idx = schema.indices_of(keep)
    if set(by_idx) & set(keep_idx):
        raise SchemaError("nest: nesting and nested attribute sets must be disjoint")
    sub_schema = Schema([schema.columns[i] for i in keep_idx])
    out_schema = NestedSchema(
        [schema.columns[i] for i in by_idx]
        + [SubSchema(set_name, NestedSchema.flat(sub_schema))]
    )
    return by_idx, keep_idx, out_schema, sub_schema


def nest(
    relation: Relation,
    by: Sequence[str],
    keep: Sequence[str],
    set_name: str = DEFAULT_SET_NAME,
) -> NestedRelation:
    """Hash-based υ_{by,keep}: group rows by *by*, collect *keep* tuples.

    Group members are deduplicated (the nested value is a *set* of
    tuples, Definition 3); groups preserve first-seen order so results
    are deterministic.
    """
    with op_span(
        "nest", contract=CONTRACT_FILTERING, impl="hash", by=",".join(by)
    ) as span:
        checkpoint("nest")
        charge_rows(
            len(relation.rows), len(by) + len(keep), "nest grouping"
        )
        result = _nest_hash(relation, by, keep, set_name)
        _note_nest(span, relation, result)
    return result


def _note_nest(span, relation: Relation, result: NestedRelation) -> None:
    """Record row counts and the peak group cardinality on a nest span."""
    if span is None:
        return
    span.add("rows_in", len(relation.rows))
    span.add("rows_out", len(result.rows))
    if result.rows:
        span.set_max("peak_group", max(len(r[-1]) for r in result.rows))


def _nest_hash(
    relation: Relation,
    by: Sequence[str],
    keep: Sequence[str],
    set_name: str,
) -> NestedRelation:
    by_idx, keep_idx, out_schema, _sub = _plan(relation, by, keep, set_name)
    metrics = current_metrics()
    groups: Dict[tuple, List[Row]] = {}
    member_seen: Dict[tuple, set] = {}
    reps: Dict[tuple, Row] = {}
    order: List[tuple] = []
    for n, row in enumerate(relation.rows, 1):
        if not n % 2048:
            checkpoint("nest")
        metrics.add("rows_nested")
        key = row_group_key(tuple(row[i] for i in by_idx))
        member = tuple(row[i] for i in keep_idx)
        if key not in groups:
            groups[key] = []
            member_seen[key] = set()
            reps[key] = row
            order.append(key)
        mkey = row_group_key(member)
        if mkey not in member_seen[key]:
            member_seen[key].add(mkey)
            groups[key].append(member)
    rows = []
    for key in order:
        rep = reps[key]
        prefix = tuple(rep[i] for i in by_idx)
        rows.append(prefix + (tuple(groups[key]),))
    return NestedRelation(out_schema, rows)


def nest_sorted(
    relation: Relation,
    by: Sequence[str],
    keep: Sequence[str],
    set_name: str = DEFAULT_SET_NAME,
) -> NestedRelation:
    """Sort-based υ_{by,keep}: sort on *by*, then emit groups in one scan.

    Equivalent to :func:`nest` up to group order (groups appear in sorted
    key order).  This is the implementation the paper's experiments used
    inside stored procedures.
    """
    with op_span(
        "nest", contract=CONTRACT_FILTERING, impl="sorted", by=",".join(by)
    ) as span:
        checkpoint("nest")
        charge_rows(
            len(relation.rows), len(by) + len(keep), "nest grouping"
        )
        result = _nest_sorted(relation, by, keep, set_name)
        _note_nest(span, relation, result)
    return result


def _nest_sorted(
    relation: Relation,
    by: Sequence[str],
    keep: Sequence[str],
    set_name: str,
) -> NestedRelation:
    by_idx, keep_idx, out_schema, _sub = _plan(relation, by, keep, set_name)
    metrics = current_metrics()
    rows = sorted(
        relation.rows, key=lambda r: row_sort_key(tuple(r[i] for i in by_idx))
    )
    metrics.add("rows_sorted", len(rows))
    out: List[tuple] = []
    current_key: Optional[tuple] = None
    members: List[Row] = []
    seen: set = set()
    prefix: Row = ()
    for n, row in enumerate(rows, 1):
        if not n % 2048:
            checkpoint("nest")
        metrics.add("rows_nested")
        key = row_group_key(tuple(row[i] for i in by_idx))
        if key != current_key:
            if current_key is not None:
                out.append(prefix + (tuple(members),))
            current_key = key
            prefix = tuple(row[i] for i in by_idx)
            members = []
            seen = set()
        member = tuple(row[i] for i in keep_idx)
        mkey = row_group_key(member)
        if mkey not in seen:
            seen.add(mkey)
            members.append(member)
    if current_key is not None:
        out.append(prefix + (tuple(members),))
    return NestedRelation(out_schema, out)


def unnest(nested: NestedRelation, set_name: str = DEFAULT_SET_NAME) -> Relation:
    """μ: flatten one set-valued attribute back into rows.

    Rows whose set is empty vanish (classical unnest semantics — this is
    precisely the information loss that outer joins + PK-null padding
    exist to prevent in the paper's pipeline).
    """
    sub_pos = nested.schema.index_of(set_name)
    sub = nested.schema.components[sub_pos]
    if not isinstance(sub, SubSchema):
        raise SchemaError(f"{set_name!r} is not a set-valued attribute")
    if sub.schema.depth != 0:
        raise SchemaError("unnest of non-flat subschema is not supported")
    atomic = [
        (i, c)
        for i, c in enumerate(nested.schema.components)
        if i != sub_pos
    ]
    for _i, c in atomic:
        if isinstance(c, SubSchema):
            raise SchemaError("unnest with multiple set attributes is ambiguous; "
                              "unnest them one at a time")
    out_schema = Schema(
        [c for _i, c in atomic] + list(sub.schema.atomic_columns)
    )
    metrics = current_metrics()
    rows: List[Row] = []
    with op_span("unnest", set=set_name) as span:
        for row in nested.rows:
            prefix = tuple(row[i] for i, _c in atomic)
            for member in row[sub_pos]:
                metrics.add("rows_unnested")
                rows.append(prefix + tuple(member))
        if span is not None:
            span.add("rows_in", len(nested.rows))
            span.add("rows_out", len(rows))
    return Relation(out_schema, rows)
