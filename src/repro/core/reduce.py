"""Block reduction: T_i = σ_Δi(R_i) (Algorithm 1, step one).

Each query block is reduced to a single relation by applying every
predicate in its WHERE clause *except* linking and correlated predicates
— selections are pushed onto base tables and the block's own tables are
joined (the paper assumes all relations in a block are connected, i.e. no
Cartesian product; we fall back to a cross join if they are not).

Every reduced block gets a synthetic **row id** column ``_rid<i>``: a
unique, non-null integer per tuple of T_i.  The paper instead assumes
"each relation has a unique non-null attribute served as a primary key";
a synthetic rid satisfies that assumption uniformly (also for blocks
joining several tables, where no single base key is unique) and serves
as the emptiness marker after outer joins and the grouping anchor for
``nest``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanError
from ..engine.catalog import Database
from ..engine.expressions import (
    Col,
    Comparison,
    EvalContext,
    Expr,
    conjoin,
    split_conjuncts,
)
from ..engine.governor import checkpoint
from ..engine.operators import Filter, HashJoin, NestedLoopJoin, as_relation
from ..engine.trace import op_span
from ..engine.relation import Relation
from ..engine.schema import Column, Schema
from .blocks import NestedQuery, QueryBlock


@dataclass
class ReducedBlock:
    """A block's reduced relation T_i plus bookkeeping for the pipeline."""

    block: QueryBlock
    relation: Relation
    #: synthetic unique non-null key of T_i (qualified name)
    rid_ref: str
    #: qualified names of every column of T_i (including the rid)
    attr_refs: Tuple[str, ...]

    @property
    def index(self) -> int:
        return self.block.index


def rid_name(block: QueryBlock) -> str:
    return f"_rid{block.index}"


def reduce_block(block: QueryBlock, db: Database) -> ReducedBlock:
    """Compute T_i = σ_Δi(R_i) and attach the synthetic rid column.

    A grouped subquery block (``GROUP BY`` / ``HAVING``; necessarily
    uncorrelated and childless, see block validation) is aggregated here
    as well: T_i becomes one row per qualifying group over the group-by
    columns, so every downstream strategy sees the grouped relation
    uniformly.
    """
    with op_span(
        f"reduce[T{block.index}]",
        kind="phase",
        tables=",".join(block.alias_list),
    ) as span:
        checkpoint("reduce")
        joined = _join_block_tables(block, db)
        if _is_grouped_subquery(block):
            joined = grouped_subquery_relation(block, joined)
        if span is not None:
            span.add("rows_out", len(joined.rows))
    rid = rid_name(block)
    schema = Schema(tuple(joined.schema.columns) + (Column(rid, not_null=True),))
    rows = [row + (i,) for i, row in enumerate(joined.rows)]
    relation = Relation(schema, rows)
    return ReducedBlock(
        block=block,
        relation=relation,
        rid_ref=rid,
        attr_refs=schema.names,
    )


def reduce_all(query: NestedQuery, db: Database) -> Dict[int, ReducedBlock]:
    """Reduce every block of the query, keyed by block index."""
    return {b.index: reduce_block(b, db) for b in query.root.walk()}


def _is_grouped_subquery(block: QueryBlock) -> bool:
    """Whether *block* is a subquery carrying GROUP BY / HAVING.

    Root-level grouping is *not* reduced here — it runs as a planner
    post-pass over the strategy result, after linking predicates.
    """
    return block.link is not None and bool(
        block.group_by or block.aggregates or block.having is not None
    )


def grouped_subquery_relation(block: QueryBlock, joined: Relation) -> Relation:
    """Aggregate a grouped subquery block's joined relation.

    Applies GROUP BY + HAVING, then projects down to the group-by
    columns (the linked attribute is required to be one of them; the
    aggregate columns only feed HAVING).
    """
    from ..engine.expressions import truth
    from ..engine.operators.aggregate import AggSpec, GroupAggregate

    aggs = [AggSpec(a.func, a.arg, name=a.name) for a in block.aggregates]
    grouped = GroupAggregate(joined, list(block.group_by), aggs).run()
    if block.having is not None:
        ctx = EvalContext.single(grouped.schema, ())
        rows = [
            row
            for row in grouped.rows
            if truth(block.having, ctx.with_row(grouped.schema, row)).is_true()
        ]
        grouped = Relation(grouped.schema, rows)
    return grouped.project(list(block.group_by))


@dataclass(frozen=True)
class JoinStep:
    """One step of a block's join plan: bring *alias* into the result.

    ``left_keys``/``right_keys`` are the hash-join equality keys (empty
    means no connecting equality was found: cross/nested-loop join);
    ``residual`` is the conjunction of predicates that become fully
    resolvable with this step, applied on the join output.
    """

    alias: str
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    residual: Optional[Expr]


@dataclass(frozen=True)
class BlockJoinPlan:
    """The purely syntactic plan for T_i = σ_Δi(R_i).

    Both execution backends (row iterators and columnar batches) execute
    this same plan, so predicate placement and join order — and therefore
    semantics — cannot drift between them.
    """

    #: scan order (the block's FROM order); ``aliases[0]`` seeds the join
    aliases: Tuple[str, ...]
    #: alias -> base table name
    table_names: Tuple[Tuple[str, str], ...]
    #: alias -> pushed-down single-table predicate (or None)
    scan_filters: Tuple[Tuple[str, Optional[Expr]], ...]
    #: greedy equality-first join order over ``aliases[1:]``
    steps: Tuple[JoinStep, ...]
    #: predicates never fully resolvable until the end (safety net)
    final_residual: Optional[Expr]

    def scan_filter(self, alias: str) -> Optional[Expr]:
        return dict(self.scan_filters)[alias]


def plan_block_join(block: QueryBlock) -> BlockJoinPlan:
    """Plan the joins for the local predicate Δ_i of *block*.

    Single-table conjuncts are pushed below the joins; equality conjuncts
    across two tables become hash-join keys; everything else is applied
    as a residual filter once all referenced tables are in.
    """
    conjuncts = (
        split_conjuncts(block.local_predicate)
        if block.local_predicate is not None
        else []
    )
    aliases = block.alias_list

    def owner_tables(expr: Expr) -> Set[str]:
        owners = set()
        for ref in expr.columns():
            table, _, _name = ref.rpartition(".")
            owners.add(table)
        return owners

    # Classify conjuncts by the set of aliases they touch.
    per_table: Dict[str, List[Expr]] = {a: [] for a in aliases}
    multi: List[Expr] = []
    for conj in conjuncts:
        owners = owner_tables(conj)
        unknown = owners - set(aliases) - {""}
        if unknown:
            raise PlanError(
                f"local predicate {conj!r} of block {block.index} references "
                f"tables outside the block: {sorted(unknown)}"
            )
        real_owners = owners & set(aliases)
        if len(real_owners) <= 1:
            target = next(iter(real_owners), aliases[0])
            per_table[target].append(conj)
        else:
            multi.append(conj)

    joined_aliases = {aliases[0]}
    remaining = list(aliases[1:])
    pending = list(multi)
    steps: List[JoinStep] = []
    while remaining:
        # Prefer a table connected to the current result by an equality.
        pick: Optional[str] = None
        for alias in remaining:
            if _equi_keys(pending, joined_aliases, alias):
                pick = alias
                break
        if pick is None:
            pick = remaining[0]
        remaining.remove(pick)
        equi = _equi_keys(pending, joined_aliases, pick)
        newly_resolvable = [
            p
            for p in pending
            if owner_tables(p) <= (joined_aliases | {pick})
            and p not in [e[2] for e in equi]
        ]
        residual = conjoin(newly_resolvable) if newly_resolvable else None
        steps.append(
            JoinStep(
                alias=pick,
                left_keys=tuple(e[0] for e in equi),
                right_keys=tuple(e[1] for e in equi),
                residual=residual,
            )
        )
        joined_aliases.add(pick)
        pending = [p for p in pending if p not in newly_resolvable and p not in [e[2] for e in equi]]
    return BlockJoinPlan(
        aliases=tuple(aliases),
        table_names=tuple((a, block.tables[a]) for a in aliases),
        scan_filters=tuple(
            (a, conjoin(per_table[a]) if per_table[a] else None)
            for a in aliases
        ),
        steps=tuple(steps),
        final_residual=conjoin(pending) if pending else None,
    )


def _join_block_tables(block: QueryBlock, db: Database) -> Relation:
    """Execute :func:`plan_block_join` with the row-iterator operators."""
    plan = plan_block_join(block)

    # Scan + filter each table under its alias.
    parts: Dict[str, Relation] = {}
    for alias, table_name in plan.table_names:
        rel = db.relation(table_name)
        if alias != table_name:
            rel = rel.rename_table(alias)
        pred = plan.scan_filter(alias)
        if pred is not None:
            rel = as_relation(Filter(rel, pred))
        parts[alias] = rel

    current = parts[plan.aliases[0]]
    for step in plan.steps:
        if step.left_keys:
            current = as_relation(
                HashJoin(
                    current,
                    parts[step.alias],
                    list(step.left_keys),
                    list(step.right_keys),
                    step.residual,
                )
            )
        else:
            current = as_relation(
                NestedLoopJoin(current, parts[step.alias], predicate=step.residual)
            )
    if plan.final_residual is not None:
        current = as_relation(Filter(current, plan.final_residual))
    return current


def _equi_keys(
    pending: Sequence[Expr], joined: Set[str], new_alias: str
) -> List[Tuple[str, str, Expr]]:
    """Equality conjuncts usable as hash keys between *joined* and *new_alias*.

    Returns (left_ref_in_joined, right_ref_in_new, original_expr) triples.
    """
    out: List[Tuple[str, str, Expr]] = []
    for p in pending:
        if not isinstance(p, Comparison) or p.op != "=":
            continue
        if not isinstance(p.left, Col) or not isinstance(p.right, Col):
            continue
        lt = p.left.ref.rpartition(".")[0]
        rt = p.right.ref.rpartition(".")[0]
        if lt in joined and rt == new_alias:
            out.append((p.left.ref, p.right.ref, p))
        elif rt in joined and lt == new_alias:
            out.append((p.right.ref, p.left.ref, p))
    return out
