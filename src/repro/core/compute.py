"""Algorithm 1 — the original nested relational approach (paper §4.1).

Processing a nested query with non-aggregate subqueries:

1. **Reduce** every block to a single relation T_i = σ_Δi(R_i)
   (:mod:`repro.core.reduce`).
2. **Tree expression**: one node per block, edges labelled with the
   linking predicate L_i and the correlated predicates C_ij.  Because SQL
   correlation always references *enclosing* blocks, attaching every C_ij
   of block i to the edge entering block i is a maximal spanning query
   tree in the paper's sense: by the time block i is joined, the
   attributes of every enclosing block are already present in the
   accumulated relation.
3. **compute(root, T_1)**: walk the tree depth-first.  Going *down*, join
   (or left-outer-join, when correlated) the accumulated relation with
   each child's T_i.  Coming back *up*, ``nest`` the relation by the
   attributes of the blocks on the path and apply the child's linking
   predicate as a linking selection — strict σ where discarding failing
   tuples is safe (at the root, or when every unfinished linking
   predicate above is positive), pseudo σ* (padding the current node's
   attributes with NULLs) otherwise.

Non-correlated subqueries are executed once and their result set shared
by every outer tuple — the paper's "virtual Cartesian product".  Set
``virtual_cartesian=False`` to run the textbook algorithm with a real
Cartesian product instead (useful for differential testing).

The approach needs no indexes: only hash (outer) joins, nest and linking
selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanError
from ..engine.catalog import Database
from ..engine.expressions import conjoin
from ..engine.metrics import current_metrics
from ..engine.operators import LeftOuterHashJoin, OuterCrossJoin, as_relation
from ..engine.trace import CONTRACT_FILTERING, CONTRACT_PRESERVING, op_span
from ..engine.relation import Relation
from ..engine.types import NULL, is_null
from .blocks import LinkSpec, NestedQuery, QueryBlock
from .linking import SetPredicate
from .nest import nest, nest_sorted
from .reduce import ReducedBlock, reduce_all
from .selection import linking_selection, pseudo_selection


def set_predicate_for(link: LinkSpec) -> SetPredicate:
    """Translate a linking operator into its set predicate.

    EXISTS -> {B} ≠ ∅, NOT EXISTS -> {B} = ∅, IN -> = SOME,
    NOT IN -> <> ALL, θ SOME/ALL -> themselves.
    """
    if link.operator in ("exists", "not_exists"):
        return SetPredicate(link.operator)
    return SetPredicate(link.quantifier, link.effective_theta)


class NestedRelationalStrategy:
    """The original nested relational approach (Algorithm 1).

    Parameters
    ----------
    virtual_cartesian:
        execute non-correlated subqueries once and share the result
        (paper: "non-correlated subqueries are executed once, and the
        result is used by every tuple").  When False, a real Cartesian
        product is used, as in the bare algorithm statement.
    nest_impl:
        ``"hash"`` or ``"sorted"`` — the two physical nest
        implementations (paper Section 5.1 used sorting).
    strict_when_positive:
        apply the paper's refinement that strict σ may replace pseudo σ*
        when every unfinished linking predicate above is positive.
    """

    name = "nested-relational"

    def __init__(
        self,
        virtual_cartesian: bool = True,
        nest_impl: str = "hash",
        strict_when_positive: bool = True,
    ):
        if nest_impl not in ("hash", "sorted"):
            raise PlanError(f"unknown nest implementation {nest_impl!r}")
        self.virtual_cartesian = virtual_cartesian
        self.nest_impl = nest_impl
        self.strict_when_positive = strict_when_positive

    # ------------------------------------------------------------------ #

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        """Evaluate *query* against *db*, returning the result relation."""
        reduced = reduce_all(query, db)
        owner = _attr_owner_map(reduced)
        root = query.root
        rel = reduced[root.index].relation
        rel = self._compute(root, rel, [root], reduced, owner)
        out = rel.project(root.select_refs)
        if root.distinct:
            out = out.distinct()
        return out

    # ------------------------------------------------------------------ #

    def _nest(self, rel: Relation, by: Sequence[str], keep: Sequence[str]):
        if self.nest_impl == "sorted":
            return nest_sorted(rel, by, keep)
        return nest(rel, by, keep)

    def _compute(
        self,
        node: QueryBlock,
        rel: Relation,
        path: List[QueryBlock],
        reduced: Dict[int, ReducedBlock],
        owner: Dict[str, int],
    ) -> Relation:
        """The recursive body of Algorithm 1 (compute(node, rel))."""
        for child in node.children:
            link = child.link
            assert link is not None
            crel = reduced[child.index]
            if self.virtual_cartesian and _subtree_uncorrelated(child):
                rel = self._apply_uncorrelated(
                    node, child, rel, path, reduced, owner
                )
                continue

            # -- way down: connect the child block ---------------------- #
            if child.correlations:
                equi = [c for c in child.correlations if c.is_equality]
                other = [c for c in child.correlations if not c.is_equality]
                residual = conjoin([c.as_expr() for c in other]) if other else None
                rel = as_relation(
                    LeftOuterHashJoin(
                        rel,
                        crel.relation,
                        [c.outer_ref for c in equi],
                        [c.inner_ref for c in equi],
                        residual=residual,
                    )
                )
            else:
                rel = as_relation(OuterCrossJoin(rel, crel.relation))

            # -- recurse into the child's own subqueries ---------------- #
            rel = self._compute(child, rel, path + [child], reduced, owner)

            # -- way up: nest and apply the linking selection ------------ #
            path_indices = {b.index for b in path}
            by = [
                ref
                for ref in rel.schema.names
                if owner.get(ref) in path_indices
            ]
            keep = _dedupe(
                ([link.inner_ref] if link.inner_ref is not None else [])
                + [crel.rid_ref]
            )
            nested = self._nest(rel, by, keep)
            predicate = set_predicate_for(link)
            if self._use_strict(path):
                rel = linking_selection(
                    nested,
                    predicate,
                    link.outer_ref,
                    link.inner_ref,
                    pk_ref=crel.rid_ref,
                )
            else:
                pad = [r for r in by if owner.get(r) == node.index]
                rel = pseudo_selection(
                    nested,
                    predicate,
                    link.outer_ref,
                    link.inner_ref,
                    pk_ref=crel.rid_ref,
                    pad_refs=pad,
                )
        return rel

    def _use_strict(self, path: List[QueryBlock]) -> bool:
        """Strict σ is sound at the root, and (optionally) when every
        unfinished linking predicate above the current node is positive."""
        links_above = [b.link for b in path if b.link is not None]
        if not links_above:
            return True
        if self.strict_when_positive:
            return all(l.is_positive for l in links_above)
        return False

    # ------------------------------------------------------------------ #
    # Non-correlated subqueries: execute once, share the result.
    # ------------------------------------------------------------------ #

    def _apply_uncorrelated(
        self,
        node: QueryBlock,
        child: QueryBlock,
        rel: Relation,
        path: List[QueryBlock],
        reduced: Dict[int, ReducedBlock],
        owner: Dict[str, int],
    ) -> Relation:
        link = child.link
        assert link is not None
        crel = reduced[child.index]
        sub = self._compute(
            child, crel.relation, path + [child], reduced, owner
        )
        rid_pos = sub.schema.index_of(crel.rid_ref)
        if link.inner_ref is not None:
            val_pos = sub.schema.index_of(link.inner_ref)
            members = [(row[val_pos], row[rid_pos]) for row in sub.rows]
        else:
            members = [(NULL, row[rid_pos]) for row in sub.rows]
        predicate = set_predicate_for(link)
        metrics = current_metrics()

        lhs_pos = (
            rel.schema.index_of(link.outer_ref)
            if link.outer_ref is not None
            else None
        )
        strict = self._use_strict(path)
        node_attr_positions = [
            i
            for i, ref in enumerate(rel.schema.names)
            if owner.get(ref) == node.index
        ]
        out_rows = []
        with op_span(
            "uncorrelated-link",
            contract=CONTRACT_FILTERING if strict else CONTRACT_PRESERVING,
            pred=predicate.describe(),
        ) as span:
            for row in rel.rows:
                metrics.add("linking_evals")
                lhs = row[lhs_pos] if lhs_pos is not None else NULL
                if predicate.evaluate(lhs, members).is_true():
                    out_rows.append(row)
                elif not strict:
                    metrics.add("null_padded_rows")
                    padded = list(row)
                    for i in node_attr_positions:
                        padded[i] = NULL
                    out_rows.append(tuple(padded))
            if span is not None:
                span.add("rows_in", len(rel.rows))
                span.add("rows_out", len(out_rows))
        return Relation(rel.schema, out_rows)


def _subtree_uncorrelated(block: QueryBlock) -> bool:
    """True when no block in *block*'s subtree correlates outside of it."""
    subtree_aliases: Set[str] = set()
    for b in block.walk():
        subtree_aliases.update(b.tables.keys())
    for b in block.walk():
        for corr in b.correlations:
            outer_table = corr.outer_ref.rpartition(".")[0]
            if outer_table not in subtree_aliases:
                return False
    return True


def _attr_owner_map(reduced: Dict[int, ReducedBlock]) -> Dict[str, int]:
    """Map every qualified attribute name to the index of its block."""
    owner: Dict[str, int] = {}
    for idx, rb in reduced.items():
        for ref in rb.attr_refs:
            if ref in owner:
                raise PlanError(
                    f"attribute {ref!r} appears in blocks {owner[ref]} and {idx}"
                )
            owner[ref] = idx
    return owner


def _dedupe(refs: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for r in refs:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out
