"""Algorithm 1 — the original nested relational approach (paper §4.1).

Processing a nested query with non-aggregate subqueries:

1. **Reduce** every block to a single relation T_i = σ_Δi(R_i)
   (:mod:`repro.core.reduce`).
2. **Tree expression**: one node per block, edges labelled with the
   linking predicate L_i and the correlated predicates C_ij.  Because SQL
   correlation always references *enclosing* blocks, attaching every C_ij
   of block i to the edge entering block i is a maximal spanning query
   tree in the paper's sense: by the time block i is joined, the
   attributes of every enclosing block are already present in the
   accumulated relation.
3. **compute(root, T_1)**: walk the tree depth-first.  Going *down*, join
   (or left-outer-join, when correlated) the accumulated relation with
   each child's T_i.  Coming back *up*, ``nest`` the relation by the
   attributes of the blocks on the path and apply the child's linking
   predicate as a linking selection — strict σ where discarding failing
   tuples is safe (at the root, or when every unfinished linking
   predicate above is positive), pseudo σ* (padding the current node's
   attributes with NULLs) otherwise.

Non-correlated subqueries are executed once and their result set shared
by every outer tuple — the paper's "virtual Cartesian product".  Set
``virtual_cartesian=False`` to run the textbook algorithm with a real
Cartesian product instead (useful for differential testing).

The approach needs no indexes: only hash (outer) joins, nest and linking
selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanError
from ..strategies import register
from ..engine.catalog import Database
from ..engine.expressions import conjoin
from ..engine.governor import checkpoint
from ..engine.relation import Relation
from .backend import RowBackend
from .optimizer import cost_nested_relational, cost_nested_relational_sorted
from .blocks import AGG_OP, LinkSpec, NestedQuery, QueryBlock
from .linking import SetPredicate
from .reduce import ReducedBlock


def set_predicate_for(link: LinkSpec) -> SetPredicate:
    """Translate a linking operator into its set predicate.

    EXISTS -> {B} ≠ ∅, NOT EXISTS -> {B} = ∅, IN -> = SOME,
    NOT IN -> <> ALL, θ SOME/ALL -> themselves, and aggregate links to
    ``lhs θ agg({B})`` over the nested group.
    """
    if link.operator in ("exists", "not_exists"):
        return SetPredicate(link.operator)
    if link.operator == AGG_OP:
        return SetPredicate(
            "agg",
            link.theta,
            agg_func=link.agg_func,
            const=link.outer_const,
        )
    return SetPredicate(link.quantifier, link.effective_theta)


@register(
    "nested-relational",
    description="Algorithm 1: reduce, outer-join down, nest + link up (§4.1)",
    cost=cost_nested_relational,
)
class NestedRelationalStrategy:
    """The original nested relational approach (Algorithm 1).

    Parameters
    ----------
    virtual_cartesian:
        execute non-correlated subqueries once and share the result
        (paper: "non-correlated subqueries are executed once, and the
        result is used by every tuple").  When False, a real Cartesian
        product is used, as in the bare algorithm statement.
    nest_impl:
        ``"hash"`` or ``"sorted"`` — the two physical nest
        implementations (paper Section 5.1 used sorting).
    strict_when_positive:
        apply the paper's refinement that strict σ may replace pseudo σ*
        when every unfinished linking predicate above is positive.
    backend:
        the operator factory executing the plan — defaults to the
        row-iterator engine (:class:`repro.core.backend.RowBackend`);
        the columnar engine plugs in here
        (:class:`repro.engine.vector.backend.VectorBackend`).
    """

    name = "nested-relational"

    def __init__(
        self,
        virtual_cartesian: bool = True,
        nest_impl: str = "hash",
        strict_when_positive: bool = True,
        backend=None,
    ):
        if nest_impl not in ("hash", "sorted"):
            raise PlanError(f"unknown nest implementation {nest_impl!r}")
        self.virtual_cartesian = virtual_cartesian
        self.nest_impl = nest_impl
        self.strict_when_positive = strict_when_positive
        self.backend = backend if backend is not None else RowBackend()

    # ------------------------------------------------------------------ #

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        """Evaluate *query* against *db*, returning the result relation."""
        backend = self.backend
        checkpoint("reduce")
        reduced = backend.reduce_all(query, db)
        owner = _attr_owner_map(reduced)
        root = query.root
        rel = reduced[root.index].relation
        rel = self._compute(root, rel, [root], reduced, owner)
        checkpoint("finalize")
        return backend.finalize(rel, root.select_refs, root.distinct)

    # ------------------------------------------------------------------ #

    def _compute(
        self,
        node: QueryBlock,
        rel,
        path: List[QueryBlock],
        reduced: Dict[int, ReducedBlock],
        owner: Dict[str, int],
    ):
        """The recursive body of Algorithm 1 (compute(node, rel)).

        *rel* is whatever the backend's native intermediate is (a
        :class:`Relation` for rows, a Batch for the vector engine); the
        driver only ever hands it back to the backend.
        """
        backend = self.backend
        for child in node.children:
            checkpoint("operator")
            link = child.link
            assert link is not None
            crel = reduced[child.index]
            if self.virtual_cartesian and _subtree_uncorrelated(child):
                rel = self._apply_uncorrelated(
                    node, child, rel, path, reduced, owner
                )
                continue

            # -- way down: connect the child block ---------------------- #
            if child.correlations:
                equi = [c for c in child.correlations if c.is_equality]
                other = [c for c in child.correlations if not c.is_equality]
                residual = conjoin([c.as_expr() for c in other]) if other else None
                rel = backend.left_outer_join(
                    rel,
                    crel.relation,
                    [c.outer_ref for c in equi],
                    [c.inner_ref for c in equi],
                    residual,
                )
            else:
                rel = backend.outer_cross_join(rel, crel.relation)

            # -- recurse into the child's own subqueries ---------------- #
            rel = self._compute(child, rel, path + [child], reduced, owner)

            # -- way up: nest and apply the linking selection ------------ #
            path_indices = {b.index for b in path}
            by = [
                ref
                for ref in backend.names(rel)
                if owner.get(ref) in path_indices
            ]
            keep = _dedupe(
                ([link.inner_ref] if link.inner_ref is not None else [])
                + [crel.rid_ref]
            )
            strict = self._use_strict(path)
            pad = (
                []
                if strict
                else [r for r in by if owner.get(r) == node.index]
            )
            checkpoint("nest")
            rel = backend.nest_link(
                rel,
                by,
                keep,
                set_predicate_for(link),
                link,
                crel.rid_ref,
                strict,
                pad,
                self.nest_impl,
            )
            if link.mark is not None:
                # the mark column now rides with the current node's
                # attributes: siblings must group by it and the node's
                # pseudo-selections must pad it
                owner[link.mark] = node.index
        if node.residual is not None:
            checkpoint("operator")
            marks = {
                c.link.mark
                for c in node.children
                if c.link is not None and c.link.mark is not None
            }
            strict = self._use_strict(path)
            pad = (
                []
                if strict
                else [
                    r
                    for r in backend.names(rel)
                    if owner.get(r) == node.index and r not in marks
                ]
            )
            rel = backend.apply_residual(
                rel, node.residual, strict, pad, sorted(marks)
            )
        return rel

    def _use_strict(self, path: List[QueryBlock]) -> bool:
        """Strict σ is sound at the root, and (optionally) when every
        unfinished linking predicate above the current node is positive."""
        links_above = [b.link for b in path if b.link is not None]
        if not links_above:
            return True
        if self.strict_when_positive:
            return all(l.is_positive for l in links_above)
        return False

    # ------------------------------------------------------------------ #
    # Non-correlated subqueries: execute once, share the result.
    # ------------------------------------------------------------------ #

    def _apply_uncorrelated(
        self,
        node: QueryBlock,
        child: QueryBlock,
        rel,
        path: List[QueryBlock],
        reduced: Dict[int, ReducedBlock],
        owner: Dict[str, int],
    ):
        backend = self.backend
        link = child.link
        assert link is not None
        crel = reduced[child.index]
        sub = self._compute(
            child, crel.relation, path + [child], reduced, owner
        )
        strict = self._use_strict(path)
        pad = [
            ref
            for ref in backend.names(rel)
            if owner.get(ref) == node.index
        ]
        rel = backend.uncorrelated_link(
            rel,
            sub,
            set_predicate_for(link),
            link,
            crel.rid_ref,
            strict,
            pad,
        )
        if link.mark is not None:
            owner[link.mark] = node.index
        return rel


register(
    "nested-relational-sorted",
    description="Algorithm 1 with the sort-based physical nest (§5.1)",
    cost=cost_nested_relational_sorted,
)(lambda: NestedRelationalStrategy(nest_impl="sorted"))


def _subtree_uncorrelated(block: QueryBlock) -> bool:
    """True when no block in *block*'s subtree correlates outside of it."""
    subtree_aliases: Set[str] = set()
    for b in block.walk():
        subtree_aliases.update(b.tables.keys())
    for b in block.walk():
        for corr in b.correlations:
            outer_table = corr.outer_ref.rpartition(".")[0]
            if outer_table not in subtree_aliases:
                return False
    return True


def _attr_owner_map(reduced: Dict[int, ReducedBlock]) -> Dict[str, int]:
    """Map every qualified attribute name to the index of its block."""
    owner: Dict[str, int] = {}
    for idx, rb in reduced.items():
        for ref in rb.attr_refs:
            if ref in owner:
                raise PlanError(
                    f"attribute {ref!r} appears in blocks {owner[ref]} and {idx}"
                )
            owner[ref] = idx
    return owner


def _dedupe(refs: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for r in refs:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out
