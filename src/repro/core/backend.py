"""Execution backends for the nested relational strategies.

Algorithm 1 (:mod:`repro.core.compute`) is written against a small
*operator factory* protocol instead of concrete physical operators, so
the same driver runs on two substrates:

* :class:`RowBackend` — the tuple-at-a-time iterator engine
  (:mod:`repro.engine.operators`), the library's original path;
* :class:`repro.engine.vector.backend.VectorBackend` — the columnar
  batch engine, where every method works on
  :class:`~repro.engine.vector.batch.Batch` objects.

A backend supplies:

``reduce_all(query, db)``
    step one of Algorithm 1 — each block reduced to T_i (with its
    synthetic rid column) in the backend's native representation.
``names(rel)``
    the qualified column names of an intermediate result.
``left_outer_join`` / ``outer_cross_join``
    the way-down joins.
``nest_link``
    the way-up pair: ``nest`` by the path attributes followed by a
    strict linking selection or a NULL-padding pseudo-selection.
``uncorrelated_link``
    the virtual-Cartesian-product shortcut — the subquery result is
    shared by every outer tuple.
``finalize(rel, select_refs, distinct)``
    project to the SELECT list and return a plain
    :class:`~repro.engine.relation.Relation`.

The driver never inspects rows or columns itself, so semantics are fixed
by the shared plan and the backends can only differ in physical layout
and cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..engine.catalog import Database
from ..engine.metrics import current_metrics
from ..engine.operators import LeftOuterHashJoin, OuterCrossJoin, as_relation
from ..engine.relation import Relation
from ..engine.schema import Column, Schema
from ..engine.trace import CONTRACT_FILTERING, CONTRACT_PRESERVING, op_span
from ..engine.types import NULL
from .blocks import LinkSpec, NestedQuery
from .linking import SetPredicate
from .nest import nest, nest_sorted
from .reduce import reduce_all
from .selection import (
    _tri_value,
    linking_selection,
    mark_selection,
    pseudo_selection,
)


class RowBackend:
    """Tuple-at-a-time operator factory (the original iterator engine)."""

    kind = "row"

    # -- step one ------------------------------------------------------- #

    def reduce_all(self, query: NestedQuery, db: Database):
        return reduce_all(query, db)

    # -- introspection -------------------------------------------------- #

    def names(self, rel: Relation) -> Sequence[str]:
        return rel.schema.names

    # -- way down ------------------------------------------------------- #

    def left_outer_join(
        self,
        rel: Relation,
        child: Relation,
        outer_keys: Sequence[str],
        inner_keys: Sequence[str],
        residual,
    ) -> Relation:
        return as_relation(
            LeftOuterHashJoin(
                rel, child, list(outer_keys), list(inner_keys), residual=residual
            )
        )

    def outer_cross_join(self, rel: Relation, child: Relation) -> Relation:
        return as_relation(OuterCrossJoin(rel, child))

    # -- way up --------------------------------------------------------- #

    def nest_link(
        self,
        rel: Relation,
        by: Sequence[str],
        keep: Sequence[str],
        predicate: SetPredicate,
        link: LinkSpec,
        rid_ref: str,
        strict: bool,
        pad_refs: Sequence[str],
        nest_impl: str,
    ) -> Relation:
        nested = (
            nest_sorted(rel, by, keep)
            if nest_impl == "sorted"
            else nest(rel, by, keep)
        )
        if link.mark is not None:
            return mark_selection(
                nested,
                predicate,
                link.outer_ref,
                link.inner_ref,
                pk_ref=rid_ref,
                mark_ref=link.mark,
            )
        if strict:
            return linking_selection(
                nested,
                predicate,
                link.outer_ref,
                link.inner_ref,
                pk_ref=rid_ref,
            )
        return pseudo_selection(
            nested,
            predicate,
            link.outer_ref,
            link.inner_ref,
            pk_ref=rid_ref,
            pad_refs=list(pad_refs),
        )

    # -- virtual Cartesian product -------------------------------------- #

    def uncorrelated_link(
        self,
        rel: Relation,
        sub: Relation,
        predicate: SetPredicate,
        link: LinkSpec,
        rid_ref: str,
        strict: bool,
        pad_refs: Sequence[str],
    ) -> Relation:
        rid_pos = sub.schema.index_of(rid_ref)
        if link.inner_ref is not None:
            val_pos = sub.schema.index_of(link.inner_ref)
            members = [(row[val_pos], row[rid_pos]) for row in sub.rows]
        else:
            members = [(NULL, row[rid_pos]) for row in sub.rows]
        metrics = current_metrics()

        lhs_pos = (
            rel.schema.index_of(link.outer_ref)
            if link.outer_ref is not None
            else None
        )
        pad_positions = [rel.schema.index_of(r) for r in pad_refs]
        out_rows = []
        if link.mark is not None:
            out_schema = Schema(
                tuple(rel.schema.columns) + (Column(link.mark),)
            )
            with op_span(
                "uncorrelated-link",
                contract=CONTRACT_PRESERVING,
                pred=predicate.describe(),
                mark=link.mark,
            ) as span:
                for row in rel.rows:
                    metrics.add("linking_evals")
                    lhs = row[lhs_pos] if lhs_pos is not None else NULL
                    verdict = predicate.evaluate(lhs, members)
                    out_rows.append(row + (_tri_value(verdict),))
                if span is not None:
                    span.add("rows_in", len(rel.rows))
                    span.add("rows_out", len(out_rows))
            return Relation(out_schema, out_rows)
        with op_span(
            "uncorrelated-link",
            contract=CONTRACT_FILTERING if strict else CONTRACT_PRESERVING,
            pred=predicate.describe(),
        ) as span:
            for row in rel.rows:
                metrics.add("linking_evals")
                lhs = row[lhs_pos] if lhs_pos is not None else NULL
                if predicate.evaluate(lhs, members).is_true():
                    out_rows.append(row)
                elif not strict:
                    metrics.add("null_padded_rows")
                    padded = list(row)
                    for i in pad_positions:
                        padded[i] = NULL
                    out_rows.append(tuple(padded))
            if span is not None:
                span.add("rows_in", len(rel.rows))
                span.add("rows_out", len(out_rows))
        return Relation(rel.schema, out_rows)

    # -- disjunctive residual ------------------------------------------- #

    def apply_residual(
        self,
        rel: Relation,
        residual,
        strict: bool,
        pad_refs: Sequence[str],
        mark_refs: Sequence[str],
    ) -> Relation:
        """Apply a block's disjunctive linking residual over its marks.

        Evaluates *residual* per row (SQL truth over mark columns and
        plain predicates), then either deletes failing rows (strict σ)
        or NULL-pads *pad_refs* (pseudo σ*), and finally projects the
        consumed mark columns away.
        """
        from ..engine.expressions import EvalContext, truth

        keep_refs = [n for n in rel.schema.names if n not in set(mark_refs)]
        keep_positions = rel.schema.indices_of(keep_refs)
        out_schema = rel.schema.project(keep_refs)
        pad_positions = set(out_schema.indices_of(pad_refs))
        metrics = current_metrics()
        ctx = EvalContext.single(rel.schema, ())
        out_rows = []
        with op_span(
            "linking-residual",
            contract=CONTRACT_FILTERING if strict else CONTRACT_PRESERVING,
            pred=repr(residual),
        ) as span:
            for row in rel.rows:
                metrics.add("linking_evals")
                passed = truth(residual, ctx.with_row(rel.schema, row)).is_true()
                flat = tuple(row[i] for i in keep_positions)
                if passed:
                    out_rows.append(flat)
                elif not strict:
                    metrics.add("null_padded_rows")
                    out_rows.append(
                        tuple(
                            NULL if i in pad_positions else v
                            for i, v in enumerate(flat)
                        )
                    )
            if span is not None:
                span.add("rows_in", len(rel.rows))
                span.add("rows_out", len(out_rows))
        return Relation(out_schema, out_rows)

    # -- output --------------------------------------------------------- #

    def finalize(
        self, rel: Relation, select_refs: Sequence[str], distinct: bool
    ) -> Relation:
        out = rel.project(list(select_refs))
        if distinct:
            out = out.distinct()
        return out
