"""The paper's contribution: the extended nested relational algebra and
the nested relational approach to processing SQL subqueries."""

from .blocks import (
    Correlation,
    LINK_OPS,
    LinkSpec,
    NEGATIVE_OPS,
    NestedQuery,
    POSITIVE_OPS,
    QueryBlock,
)
from .nested import NestedRelation, NestedSchema, SubSchema
from .nest import nest, nest_sorted, unnest
from .linking import SetPredicate, evaluate_quantified
from .selection import linking_selection, pseudo_selection
from .query_tree import TreeExpression
from .reduce import ReducedBlock, reduce_all, reduce_block
from .compute import NestedRelationalStrategy, set_predicate_for
from .optimized import (
    BottomUpLinearStrategy,
    OptimizedNestedRelationalStrategy,
    PositiveRewriteStrategy,
)
from .planner import (
    available_strategies,
    choose_strategy,
    execute,
    execute_traced,
    make_strategy,
)
from .feedback import FeedbackStore
from .optimizer import CandidatePlan, PlannerDecision, choose, plan_fingerprint
from .plan import Plan, build_plan
from .stats import (
    ColumnStats,
    DbStats,
    PlanStats,
    TableStats,
    collect_stats,
    set_table_stats,
)

__all__ = [
    "Correlation",
    "LinkSpec",
    "NestedQuery",
    "QueryBlock",
    "LINK_OPS",
    "POSITIVE_OPS",
    "NEGATIVE_OPS",
    "NestedRelation",
    "NestedSchema",
    "SubSchema",
    "nest",
    "nest_sorted",
    "unnest",
    "SetPredicate",
    "evaluate_quantified",
    "linking_selection",
    "pseudo_selection",
    "TreeExpression",
    "ReducedBlock",
    "reduce_all",
    "reduce_block",
    "NestedRelationalStrategy",
    "set_predicate_for",
    "OptimizedNestedRelationalStrategy",
    "BottomUpLinearStrategy",
    "PositiveRewriteStrategy",
    "available_strategies",
    "choose_strategy",
    "execute",
    "execute_traced",
    "make_strategy",
    "FeedbackStore",
    "CandidatePlan",
    "PlannerDecision",
    "choose",
    "plan_fingerprint",
    "Plan",
    "build_plan",
    "ColumnStats",
    "TableStats",
    "DbStats",
    "PlanStats",
    "collect_stats",
    "set_table_stats",
]
