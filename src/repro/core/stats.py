"""Table statistics and cardinality estimation for the cost-based planner.

The optimizer (:mod:`repro.core.optimizer`) prices each candidate
strategy in abstract *row-ops* — rows scanned, joined and nested — and
those quantities come from here:

* :func:`collect_stats` samples every table of a
  :class:`~repro.engine.catalog.Database` **once per catalog version**
  (row counts are exact; NDV / min / max / NULL fraction come from a
  deterministic stride sample) and caches the resulting
  :class:`DbStats` in a weak per-database map;
* :func:`set_table_stats` registers persistent per-column overrides —
  the TPC-H generator seeds its *known* distributions (key NDVs, date
  ranges) this way, and tests use it to plant a deliberate mis-estimate
  for the feedback-convergence scenario;
* :func:`selectivity` walks a predicate expression tree and returns the
  estimated fraction of rows that satisfy it (equality ``1/NDV``,
  ranges by min/max interpolation, ``IS NULL`` by the NULL fraction,
  AND/OR/NOT by independence);
* :func:`link_selectivity` estimates the fraction of outer rows passing
  each of the paper's linking operators (EXISTS / IN / SOME / ALL /
  aggregate links), including the 3VL effect of NULLs on ``NOT IN``;
* :class:`PlanStats` propagates all of the above through one
  :class:`~repro.core.blocks.NestedQuery` — reduced block sizes, per
  level outer-join cardinalities, nest and semijoin work — and is the
  single argument of every strategy's ``cost`` hook.

Estimates are heuristics, not guarantees: the planner only needs the
*ordering* of candidate costs to be right often enough, and the
per-session :class:`~repro.core.feedback.FeedbackStore` replaces the
estimated block cardinalities with observed ones after each traced
execution.
"""

from __future__ import annotations

import datetime
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine.catalog import Database, Table
from ..engine.expressions import (
    And,
    Between,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..engine.schema import parse_ref
from ..engine.types import is_null
from .blocks import AGG_OP, LinkSpec, NestedQuery, QueryBlock

#: rows sampled per table for NDV/min/max/NULL-fraction estimation; the
#: stride is derived from the table size, so sampling is deterministic
SAMPLE_CAP = 2048

#: fallback selectivities when no statistics resolve for a column
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_NEQ_SEL = 0.9


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column.

    *ndv* is the estimated number of distinct non-NULL values,
    *null_frac* the fraction of NULL entries, *min_value* / *max_value*
    the observed extremes (None when the column is all-NULL or its
    values do not order).  *exact* marks seeded (not sampled) figures.
    """

    ndv: float = 1.0
    null_frac: float = 0.0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    exact: bool = False

    def merged(self, other: "ColumnStats") -> "ColumnStats":
        """This record updated with *other*'s non-default fields."""
        return replace(
            other,
            min_value=(
                other.min_value if other.min_value is not None else self.min_value
            ),
            max_value=(
                other.max_value if other.max_value is not None else self.max_value
            ),
        )


@dataclass
class TableStats:
    """Row count plus per-column statistics of one base table.

    ``columns`` is keyed by the *bare* column name (``o_orderkey``, not
    ``orders.o_orderkey``) — the qualifier is the table itself.
    """

    name: str
    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


@dataclass
class DbStats:
    """Statistics of a whole catalog, collected at one version."""

    version: int
    tables: Dict[str, TableStats] = field(default_factory=dict)

    def table(self, name: str) -> Optional[TableStats]:
        return self.tables.get(name)

    def column(self, table: str, column: str) -> Optional[ColumnStats]:
        ts = self.tables.get(table)
        return ts.column(column) if ts is not None else None


# --------------------------------------------------------------------- #
# collection
# --------------------------------------------------------------------- #

#: db -> DbStats for db.version (re-collected when the version moves)
_STATS_CACHE: "weakref.WeakKeyDictionary[Database, DbStats]" = (
    weakref.WeakKeyDictionary()
)
#: db -> [(table, row_count_override, {col: ColumnStats})]; overrides
#: are *persistent*: re-applied after every (re)collection, so an index
#: build (which bumps the catalog version) does not lose seeded figures
_OVERRIDES: "weakref.WeakKeyDictionary[Database, List[Tuple]]" = (
    weakref.WeakKeyDictionary()
)


def _comparable(value: Any) -> bool:
    return isinstance(value, (int, float, str, datetime.date)) and not isinstance(
        value, bool
    )


def _stored_table_stats(table: Table, stored: Dict[str, Any]) -> TableStats:
    """Exact statistics read off a stored table's manifest.

    Column stores (:mod:`repro.engine.colstore`) compute NDV / min / max
    / NULL fraction over the *whole* column at write time, so there is
    nothing to sample — and sampling would be the one thing that forces
    a memory-mapped column through Python rows.  Figures are marked
    ``exact`` exactly like :func:`set_table_stats` seeds.
    """
    stats = TableStats(name=table.name, row_count=len(table.relation))
    for col in table.schema.columns:
        entry = stored.get(col.name)
        if entry is None:
            stats.columns[col.name] = ColumnStats()
            continue
        stats.columns[col.name] = ColumnStats(
            ndv=float(entry.get("ndv", 1.0)),
            null_frac=float(entry.get("null_frac", 0.0)),
            min_value=entry.get("min"),
            max_value=entry.get("max"),
            exact=True,
        )
    return stats


def _collect_table(table: Table, cap: int = SAMPLE_CAP) -> TableStats:
    stored = getattr(table.relation, "stored_stats", None)
    if stored is not None:
        return _stored_table_stats(table, stored)
    rows = table.relation.rows
    n = len(rows)
    stats = TableStats(name=table.name, row_count=n)
    if n == 0:
        for col in table.schema.columns:
            stats.columns[col.name] = ColumnStats(ndv=0.0)
        return stats
    stride = max(1, n // cap)
    sample = rows[::stride]
    m = len(sample)
    for j, col in enumerate(table.schema.columns):
        nulls = 0
        distinct = set()
        lo = hi = None
        for row in sample:
            v = row[j]
            if is_null(v):
                nulls += 1
                continue
            try:
                distinct.add(v)
            except TypeError:  # pragma: no cover - unhashable value
                pass
            if _comparable(v):
                if lo is None or v < lo:
                    lo = v
                if hi is None or v > hi:
                    hi = v
        seen = len(distinct)
        non_null = m - nulls
        if stride == 1 or non_null == 0:
            ndv = float(seen)
        elif seen >= non_null:
            # every sampled value unique: assume a key-like column
            ndv = float(n)
        elif seen <= non_null / 2:
            # a value set this small is almost certainly complete
            ndv = float(seen)
        else:
            ndv = min(float(n), seen * (n / max(1, non_null)))
        stats.columns[col.name] = ColumnStats(
            ndv=ndv,
            null_frac=nulls / m,
            min_value=lo,
            max_value=hi,
        )
    return stats


def collect_stats(db: Database, refresh: bool = False) -> DbStats:
    """Statistics for *db*, collected once per ``db.version``.

    Results are cached weakly per database and invalidated when the
    catalog version moves (CREATE/DROP/mutate/index build); registered
    :func:`set_table_stats` overrides are re-applied after every
    collection.
    """
    cached = _STATS_CACHE.get(db)
    if cached is not None and cached.version == db.version and not refresh:
        return cached
    stats = DbStats(version=db.version)
    for name, table in db.tables.items():
        stats.tables[name] = _collect_table(table)
    for entry in _OVERRIDES.get(db, ()):
        _apply_override(stats, *entry)
    _STATS_CACHE[db] = stats
    return stats


def _apply_override(
    stats: DbStats,
    table: str,
    row_count: Optional[int],
    columns: Dict[str, ColumnStats],
) -> None:
    ts = stats.tables.get(table)
    if ts is None:
        return
    if row_count is not None:
        ts.row_count = row_count
    for name, cs in columns.items():
        base = ts.columns.get(name, ColumnStats())
        ts.columns[name] = base.merged(replace(cs, exact=True))


def set_table_stats(
    db: Database,
    table: str,
    row_count: Optional[int] = None,
    columns: Optional[Dict[str, ColumnStats]] = None,
) -> DbStats:
    """Register persistent statistic overrides for one table.

    The TPC-H generator seeds its known distributions this way (exact
    key NDVs, date ranges), and tests plant deliberate mis-estimates for
    the feedback loop.  Overrides survive catalog version bumps: they
    are re-applied after every re-collection.  Returns the refreshed
    :class:`DbStats`.
    """
    entry = (table, row_count, dict(columns or {}))
    _OVERRIDES.setdefault(db, []).append(entry)
    stats = collect_stats(db)
    _apply_override(stats, *entry)
    return stats


def clear_stat_overrides(db: Database) -> None:
    """Drop every override registered for *db* (test hook)."""
    _OVERRIDES.pop(db, None)
    _STATS_CACHE.pop(db, None)


# --------------------------------------------------------------------- #
# predicate selectivity
# --------------------------------------------------------------------- #

#: a resolver maps a column reference (qualified or bare) to its stats
Resolver = Callable[[str], Optional[ColumnStats]]


def block_resolver(block: QueryBlock, stats: DbStats) -> Resolver:
    """A :data:`Resolver` over one block's FROM tables.

    References are resolved alias-first (``o.o_totalprice`` with
    ``FROM orders o``), falling back to a bare-name search across the
    block's tables.
    """

    def resolve(ref: str) -> Optional[ColumnStats]:
        alias, name = parse_ref(ref)
        if alias is not None:
            table = block.tables.get(alias)
            if table is None:
                return None
            return stats.column(table, name)
        for table in block.tables.values():
            cs = stats.column(table, name)
            if cs is not None:
                return cs
        return None

    return resolve


def _as_ordinal(value: Any) -> Optional[float]:
    """Map a value onto a number for range interpolation, if possible."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, str):
        try:  # ISO dates are the common string-ordered domain
            return float(datetime.date.fromisoformat(value).toordinal())
        except ValueError:
            return None
    return None


def _range_fraction(
    op: str, value: Any, stats: Optional[ColumnStats]
) -> float:
    """Fraction of a column's domain satisfying ``col op value``."""
    if stats is None or stats.min_value is None or stats.max_value is None:
        return DEFAULT_RANGE_SEL
    lo = _as_ordinal(stats.min_value)
    hi = _as_ordinal(stats.max_value)
    v = _as_ordinal(value)
    if lo is None or hi is None or v is None or hi <= lo:
        return DEFAULT_RANGE_SEL
    below = min(1.0, max(0.0, (v - lo) / (hi - lo)))
    if op in ("<", "<="):
        frac = below
    else:  # ">", ">="
        frac = 1.0 - below
    return min(1.0, max(0.001, frac))


def _eq_sel(stats: Optional[ColumnStats]) -> float:
    if stats is None or stats.ndv <= 0:
        return DEFAULT_EQ_SEL
    return min(1.0, (1.0 - stats.null_frac) / max(stats.ndv, 1.0))


def _comparison_sel(expr: Comparison, resolve: Resolver) -> float:
    left, right = expr.left, expr.right
    # normalize literal-on-the-left
    op = expr.op
    if isinstance(left, Literal) and isinstance(right, Col):
        from ..engine.types import flip_op

        left, right, op = right, left, flip_op(op)
    if isinstance(left, Col) and isinstance(right, Literal):
        cs = resolve(left.ref)
        notnull = 1.0 - (cs.null_frac if cs is not None else 0.0)
        if op == "=":
            return _eq_sel(cs)
        if op == "<>":
            return max(0.0, notnull - _eq_sel(cs))
        return notnull * _range_fraction(op, right.value, cs)
    if isinstance(left, Col) and isinstance(right, Col):
        lcs, rcs = resolve(left.ref), resolve(right.ref)
        if op == "=":
            ndv = max(
                lcs.ndv if lcs is not None else 0.0,
                rcs.ndv if rcs is not None else 0.0,
                1.0,
            )
            return 1.0 / ndv
        if op == "<>":
            return DEFAULT_NEQ_SEL
        return DEFAULT_RANGE_SEL
    return DEFAULT_RANGE_SEL


def selectivity(expr: Optional[Expr], resolve: Resolver) -> float:
    """Estimated fraction of rows satisfying *expr* (1.0 for None).

    AND multiplies, OR applies inclusion-exclusion, NOT complements —
    the usual independence assumptions.  Unknown node shapes fall back
    to :data:`DEFAULT_RANGE_SEL`.
    """
    if expr is None:
        return 1.0
    if isinstance(expr, Literal):
        return 1.0 if expr.value is True else DEFAULT_RANGE_SEL
    if isinstance(expr, And):
        return selectivity(expr.left, resolve) * selectivity(expr.right, resolve)
    if isinstance(expr, Or):
        a = selectivity(expr.left, resolve)
        b = selectivity(expr.right, resolve)
        return min(1.0, a + b - a * b)
    if isinstance(expr, Not):
        return max(0.0, 1.0 - selectivity(expr.operand, resolve))
    if isinstance(expr, IsNull):
        frac = DEFAULT_RANGE_SEL
        if isinstance(expr.operand, Col):
            cs = resolve(expr.operand.ref)
            if cs is not None:
                frac = cs.null_frac
        return max(0.0, 1.0 - frac) if expr.negated else frac
    if isinstance(expr, Between):
        if isinstance(expr.operand, Col):
            cs = resolve(expr.operand.ref)
            low = (
                _range_fraction(">=", expr.low.value, cs)
                if isinstance(expr.low, Literal)
                else DEFAULT_RANGE_SEL
            )
            high = (
                _range_fraction("<=", expr.high.value, cs)
                if isinstance(expr.high, Literal)
                else DEFAULT_RANGE_SEL
            )
            return min(1.0, max(0.001, low + high - 1.0))
        return DEFAULT_RANGE_SEL
    if isinstance(expr, InList):
        if isinstance(expr.operand, Col):
            cs = resolve(expr.operand.ref)
            s = min(1.0, len(expr.items) * _eq_sel(cs))
        else:
            s = min(1.0, len(expr.items) * DEFAULT_EQ_SEL)
        if expr.negated:
            notnull = 1.0
            if isinstance(expr.operand, Col):
                cs = resolve(expr.operand.ref)
                if cs is not None:
                    notnull = 1.0 - cs.null_frac
            return max(0.0, notnull - s)
        return s
    if isinstance(expr, Comparison):
        return _comparison_sel(expr, resolve)
    return DEFAULT_RANGE_SEL


# --------------------------------------------------------------------- #
# linking-operator selectivity
# --------------------------------------------------------------------- #


def _match_probability(
    theta: Optional[str],
    outer: Optional[ColumnStats],
    inner: Optional[ColumnStats],
) -> float:
    """P(one outer value θ one inner value) under containment."""
    if theta == "=":
        i_ndv = inner.ndv if inner is not None else 0.0
        if i_ndv <= 0:
            return DEFAULT_EQ_SEL
        notnull = 1.0 - (outer.null_frac if outer is not None else 0.0)
        return notnull / max(i_ndv, 1.0)
    if theta == "<>":
        i_ndv = inner.ndv if inner is not None else 0.0
        return 1.0 - 1.0 / max(i_ndv, 2.0)
    return DEFAULT_RANGE_SEL


def link_selectivity(
    link: LinkSpec,
    group_size: float,
    outer: Optional[ColumnStats] = None,
    inner: Optional[ColumnStats] = None,
) -> float:
    """Estimated fraction of outer rows passing this linking operator.

    *group_size* is the expected number of inner rows nested under one
    outer row (after correlations).  The rules, documented for the
    estimator unit tests:

    * ``EXISTS`` passes when the group is non-empty: ``g / (1 + g)``
      (smooth approximation of ``P(group non-empty)``);
      ``NOT EXISTS`` is its complement.
    * ``IN`` / ``θ SOME``: per-element match probability *p* (equality:
      ``(1 - null_frac_outer) / NDV_inner``; ranges: 1/3), any-of-g:
      ``1 - (1 - p)^g``, scaled by ``P(group non-empty)``.
    * ``θ ALL``: the empty group passes, otherwise every element must
      match: ``P(empty) + P(non-empty) · p^g``.
    * ``NOT IN`` is ``<> ALL`` and additionally killed by inner NULLs —
      in 3VL one NULL element makes the whole predicate UNKNOWN unless
      a match exists — so the non-empty term is further scaled by
      ``(1 - null_frac_inner)^g``.
    * aggregate links compare one scalar per group: equality θ gets
      :data:`DEFAULT_EQ_SEL`, other thetas :data:`DEFAULT_RANGE_SEL`.
    """
    g = max(0.0, group_size)
    p_nonempty = g / (1.0 + g)
    if link.operator == "exists":
        return p_nonempty
    if link.operator == "not_exists":
        return 1.0 - p_nonempty
    if link.operator == AGG_OP:
        return DEFAULT_EQ_SEL if link.theta == "=" else DEFAULT_RANGE_SEL
    p = _match_probability(link.effective_theta, outer, inner)
    gp = min(g, 1000.0)
    if link.quantifier == "some":
        any_match = 1.0 - (1.0 - min(p, 1.0)) ** max(gp, 1.0)
        return p_nonempty * any_match
    # ALL-quantified (includes NOT IN as <> ALL)
    all_match = min(p, 1.0) ** max(gp, 1.0)
    if link.operator == "not_in" and inner is not None and inner.null_frac > 0:
        all_match *= (1.0 - inner.null_frac) ** max(gp, 1.0)
    return (1.0 - p_nonempty) + p_nonempty * all_match


# --------------------------------------------------------------------- #
# whole-query propagation
# --------------------------------------------------------------------- #


class PlanStats:
    """Cardinality estimates propagated through one nested query.

    All figures are abstract *row-ops* and row counts; they are what a
    strategy's ``cost(plan_stats)`` hook consumes.  ``overrides`` maps a
    block index to an observed reduced-block cardinality (the feedback
    loop) and wins over the estimate.

    Attributes
    ----------
    base_rows : dict   block index -> product of base-table row counts
    block_rows : dict  block index -> reduced T_i cardinality estimate
    level_rows : dict  block index -> rows after outer-joining the block
                       under its ancestor path (the paper's way down)
    link_sel : dict    block index -> linking-operator selectivity
    out_rows : float   estimated root result cardinality
    scan_work : float  rows scanned to reduce every block
    join_work : float  rows materialized by the way-down outer joins
    nest_work : float  rows regrouped by the way-up nests
    semijoin_work : float  work of the positive-rewrite semijoin chain
    bottomup_work : float  work of the bottom-up nest push-down plan
    iteration_work : float per-tuple re-evaluation work (nested iteration)
    probe_work : float     index-probe work (System A emulation)
    threads : int      effective worker count for parallel candidates
    """

    def __init__(
        self,
        query: NestedQuery,
        stats: DbStats,
        threads: int = 1,
        overrides: Optional[Dict[int, int]] = None,
        memory_limit_mb: Optional[float] = None,
    ):
        self.query = query
        self.stats = stats
        self.threads = max(1, threads)
        #: execution memory budget in bytes, None = unbounded; the
        #: vector cost hooks charge extra I/O passes for builds that
        #: will not fit (Grace spill partitioning writes + re-reads)
        self.memory_limit_bytes: Optional[float] = (
            None if memory_limit_mb is None else memory_limit_mb * 1024 * 1024
        )
        overrides = overrides or {}

        self.base_rows: Dict[int, float] = {}
        self.block_rows: Dict[int, float] = {}
        self.level_rows: Dict[int, float] = {}
        self.link_sel: Dict[int, float] = {}
        self._resolvers: Dict[int, Resolver] = {}

        for block in query.root.walk():
            resolve = block_resolver(block, stats)
            self._resolvers[block.index] = resolve
            base = 1.0
            for table in block.tables.values():
                ts = stats.table(table)
                base *= float(ts.row_count) if ts is not None else 100.0
            self.base_rows[block.index] = base
            est = base * selectivity(block.local_predicate, resolve)
            if block.index in overrides:
                est = float(overrides[block.index])
            self.block_rows[block.index] = max(0.0, est)

        root = query.root
        self.level_rows[root.index] = self.block_rows[root.index]
        self._walk_down(root)

        out = self.block_rows[root.index]
        for block in query.root.walk():
            if block.link is not None:
                out *= self.link_sel.get(block.index, 1.0)
        self.out_rows = out

        self.scan_work = sum(self.base_rows.values())
        non_root = [b for b in query.root.walk() if b.link is not None]
        self.join_work = sum(
            self.level_rows[b.index] + self.block_rows[b.index] for b in non_root
        )
        self.nest_work = sum(self.level_rows[b.index] for b in non_root)
        self.semijoin_work = sum(
            self.block_rows[self._parent_index(b)] + self.block_rows[b.index]
            for b in non_root
        )
        self.bottomup_work = sum(
            2.0 * self.block_rows[b.index]
            + self.block_rows[self._parent_index(b)]
            for b in non_root
        )
        inner_total = sum(self.block_rows[b.index] for b in non_root)
        self.iteration_work = self.block_rows[root.index] * (1.0 + inner_total)
        self.probe_work = self.block_rows[root.index] * (
            1.0 + 4.0 * len(non_root)
        )

    # ------------------------------------------------------------------ #

    def _parent_index(self, block: QueryBlock) -> int:
        parent = self.query.parent_of(block)
        return parent.index if parent is not None else self.query.root.index

    def _corr_selectivity(self, block: QueryBlock) -> float:
        sel = 1.0
        resolve = self._resolvers[block.index]
        for corr in block.correlations:
            inner = resolve(corr.inner_ref)
            outer = self._resolve_anywhere(corr.outer_ref)
            if corr.is_equality:
                ndv = max(
                    inner.ndv if inner is not None else 0.0,
                    outer.ndv if outer is not None else 0.0,
                    1.0,
                )
                sel *= 1.0 / ndv
            else:
                sel *= DEFAULT_RANGE_SEL
        return sel

    def _resolve_anywhere(self, ref: str) -> Optional[ColumnStats]:
        for resolve in self._resolvers.values():
            cs = resolve(ref)
            if cs is not None:
                return cs
        return None

    def _walk_down(self, block: QueryBlock) -> None:
        for child in block.children:
            per_outer = self.block_rows[child.index] * self._corr_selectivity(
                child
            )
            # outer join: unmatched outer rows survive NULL-padded
            self.level_rows[child.index] = self.level_rows[block.index] * max(
                1.0, per_outer
            )
            link = child.link
            if link is not None:
                resolve = self._resolvers[child.index]
                inner = (
                    resolve(link.inner_ref)
                    if link.inner_ref is not None
                    else None
                )
                outer = (
                    self._resolve_anywhere(link.outer_ref)
                    if link.outer_ref is not None
                    else None
                )
                self.link_sel[child.index] = link_selectivity(
                    link, per_outer, outer=outer, inner=inner
                )
            self._walk_down(child)

    @property
    def pipeline_work(self) -> float:
        """The nested-relational pipeline's total row-ops."""
        return self.scan_work + self.join_work + self.nest_work

    def spill_io_work(self) -> float:
        """Extra row-ops for predicted spill passes under the budget.

        When the estimated build footprint of the join/nest pipeline
        exceeds the memory budget, the spillable kernels partition the
        inputs to disk and re-read them — roughly one extra write+read
        pass over the partitioned rows per factor by which the build
        overshoots the budget (recursive partitioning caps the depth, so
        the estimate saturates).  Returns 0 when unbudgeted or fitting.
        """
        if self.memory_limit_bytes is None or self.memory_limit_bytes <= 0:
            return 0.0
        from ..engine.governor import EST_BYTES_PER_VALUE

        est_bytes = (self.join_work + self.nest_work) * EST_BYTES_PER_VALUE
        if est_bytes <= self.memory_limit_bytes:
            return 0.0
        extra_passes = min(4.0, est_bytes / self.memory_limit_bytes - 1.0)
        return extra_passes * (self.join_work + self.nest_work)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"out_rows~{self.out_rows:.1f}"]
        for i in sorted(self.block_rows):
            lines.append(
                f"T{i}: base={self.base_rows[i]:.0f} "
                f"reduced~{self.block_rows[i]:.1f} "
                f"level~{self.level_rows.get(i, 0.0):.1f} "
                f"link_sel~{self.link_sel.get(i, 1.0):.3f}"
            )
        return "\n".join(lines)
