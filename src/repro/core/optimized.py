"""Optimized nested relational evaluation (paper §4.2).

Four optimizations over Algorithm 1 are implemented:

**Single-pass nesting + pipelined linking selections** (§4.2.1, §4.2.2).
Consecutive nests in the original approach nest by a *prefix* of the
previous nesting attributes — so all of them can be performed in one
physical reordering: sort the fully joined intermediate relation once by
the block rids along the path, then compute every linking predicate in a
single scan with group-boundary detection, innermost first.  Failing
inner tuples simply contribute *dead* members (the pseudo-selection
padding happens implicitly), and the root predicate is strict.  This is
the "optimized nested relational approach" whose nest+linking time the
paper reports as roughly half the original's two-pass processing.

**Bottom-up evaluation for linear correlation** (§4.2.3).  When each
block is correlated only to its *adjacent* outer block, the query can be
evaluated bottom-up: join the two innermost blocks, nest, linking-select
— producing a small relation of qualified inner tuples — then join that
with the next block up, and so on.  Intermediate results stay small
because only qualified tuples participate in further joins.

**Nest push-down** (§4.2.4).  υ_{B},{C}(R ⋈_{A=B} S) = R ⋈ υ_{B},{C}(S)
when the nesting attribute is the (equality) join attribute: nest the
inner relation by the correlated attribute *before* the join, avoiding
the wide intermediate result.  Used inside the bottom-up evaluator.

**Positive-operator rewrite** (§4.2.5).  σ_{AθSOME{B}}(υ(R ⟕_C S)) is
equivalent to R ⋈_{C ∧ AθB} S followed by duplicate elimination on R's
key; with projection push-down this is a semijoin — the classical plan.
:class:`PositiveRewriteStrategy` applies this bottom-up when *every*
linking operator in the query is positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanError
from ..strategies import register
from ..engine.catalog import Database
from ..engine.expressions import conjoin
from ..engine.governor import checkpoint
from ..engine.metrics import current_metrics
from ..engine.operators import (
    OuterCrossJoin,
    LeftOuterHashJoin,
    SemiJoin,
    as_relation,
)
from ..engine.relation import Relation
from ..engine.trace import CONTRACT_FILTERING, op_span
from ..engine.types import NULL, is_null, row_sort_key
from .blocks import LinkSpec, NestedQuery, QueryBlock
from .compute import NestedRelationalStrategy, set_predicate_for, _subtree_uncorrelated
from .linking import SetPredicate
from .nest import nest
from .optimizer import cost_bottomup, cost_optimized, cost_positive_rewrite
from .reduce import ReducedBlock, reduce_all
from .selection import linking_selection, pseudo_selection


@register(
    "nested-relational-optimized",
    description="single-pass pipelined nest + linking selections (§4.2.1-2)",
    cost=cost_optimized,
)
class OptimizedNestedRelationalStrategy:
    """Single-pass pipelined evaluation for *linear* nested queries.

    For linear queries (at most one subquery per block) the full join is
    produced top-down exactly as in Algorithm 1, but the nest/linking
    stages are fused: one sort by the rid chain, one scan evaluating all
    linking predicates.  Tree queries fall back to Algorithm 1 with
    pipelining inside each linear spine (delegating to the original
    strategy keeps the fallback honest).
    """

    name = "nested-relational-optimized"

    def __init__(self, virtual_cartesian: bool = True):
        self.virtual_cartesian = virtual_cartesian
        self._fallback = NestedRelationalStrategy(
            virtual_cartesian=virtual_cartesian, nest_impl="sorted"
        )

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        if not query.is_linear or query.has_disjunction:
            # marked links need the residual combination step of the
            # general pipeline; the single-pass dead-member trick only
            # models conjunctive strictness
            return self._fallback.execute(query, db)
        chain = list(query.root.walk())
        reduced = reduce_all(query, db)
        joined = self._join_chain(chain, reduced)
        result_rows = _single_pass(chain, reduced, joined)
        out = Relation(joined.schema, result_rows).project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out

    def _join_chain(
        self, chain: List[QueryBlock], reduced: Dict[int, ReducedBlock]
    ) -> Relation:
        """Left-outer-join the chain top-down (the unnesting stage)."""
        rel = reduced[chain[0].index].relation
        for child in chain[1:]:
            crel = reduced[child.index]
            if child.correlations:
                equi = [c for c in child.correlations if c.is_equality]
                other = [c for c in child.correlations if not c.is_equality]
                residual = conjoin([c.as_expr() for c in other]) if other else None
                rel = as_relation(
                    LeftOuterHashJoin(
                        rel,
                        crel.relation,
                        [c.outer_ref for c in equi],
                        [c.inner_ref for c in equi],
                        residual=residual,
                    )
                )
            else:
                rel = as_relation(OuterCrossJoin(rel, crel.relation))
        return rel


def _single_pass(
    chain: List[QueryBlock],
    reduced: Dict[int, ReducedBlock],
    joined: Relation,
) -> List[tuple]:
    """Sort once by the rid chain, then evaluate all linking predicates in
    one scan (the fused nest + linking selection pipeline).

    Level l (0-based, root = 0) accumulates members for the linking
    predicate of block l+1.  When a level-l group closes, the link of
    block l+1 is evaluated for the group's block-(l) tuple; the outcome
    (dead/alive) propagates upward as a member of level l-1.
    """
    with op_span(
        "single-pass-link",
        contract=CONTRACT_FILTERING,
        levels=len(chain) - 1,
    ) as span:
        out = _single_pass_scan(chain, reduced, joined)
        if span is not None:
            span.add("rows_in", len(joined.rows))
            span.add("rows_out", len(out))
    return out


def _single_pass_scan(
    chain: List[QueryBlock],
    reduced: Dict[int, ReducedBlock],
    joined: Relation,
) -> List[tuple]:
    metrics = current_metrics()
    k = len(chain)
    if k == 1:
        return list(joined.rows)

    schema = joined.schema
    rid_pos = [schema.index_of(reduced[b.index].rid_ref) for b in chain]
    links: List[LinkSpec] = [b.link for b in chain[1:]]  # link of block l+1
    predicates = [set_predicate_for(l) for l in links]
    lhs_pos = [
        schema.index_of(l.outer_ref) if l.outer_ref is not None else None
        for l in links
    ]
    inner_pos = [
        schema.index_of(l.inner_ref) if l.inner_ref is not None else None
        for l in links
    ]

    rows = sorted(
        joined.rows,
        key=lambda r: row_sort_key(tuple(r[p] for p in rid_pos[:-1])),
    )
    metrics.add("rows_sorted", len(rows))

    out: List[tuple] = []
    # members[l]: accumulated (value, pk) pairs for the predicate of
    # block l+1, within the current level-l group.
    members: List[List[tuple]] = [[] for _ in range(k - 1)]
    current: Optional[tuple] = None  # previous row
    current_keys: List[tuple] = []

    def close_level(level: int, row: tuple) -> None:
        """Evaluate link of block level+1 for the group that just ended at
        *level*; push the outcome as a member into level-1 (or emit)."""
        metrics.add("linking_evals")
        predicate = predicates[level]
        lhs = row[lhs_pos[level]] if lhs_pos[level] is not None else NULL
        passed = predicate.evaluate(lhs, members[level]).is_true()
        members[level] = []
        block_rid = row[rid_pos[level]]
        alive = passed and not is_null(block_rid)
        if level == 0:
            if alive:
                out.append(row)
            return
        parent_link = links[level - 1]
        value = (
            row[inner_pos[level - 1]]
            if inner_pos[level - 1] is not None
            else NULL
        )
        members[level - 1].append((value, block_rid if alive else NULL))

    for n, row in enumerate(rows, 1):
        if not n % 512:
            checkpoint("single-pass")
        metrics.add("rows_nested")
        keys = [row_sort_key((row[p],)) for p in rid_pos[:-1]]
        if current is not None:
            # find the shallowest level whose group key changed
            boundary = None
            for l in range(k - 1):
                if keys[l] != current_keys[l]:
                    boundary = l
                    break
            if boundary is not None:
                for l in range(k - 2, boundary - 1, -1):
                    close_level(l, current)
        # accumulate the deepest block's tuple as a member of level k-2
        deepest_rid = row[rid_pos[-1]]
        value = (
            row[inner_pos[-1]] if inner_pos[-1] is not None else NULL
        )
        members[k - 2].append((value, deepest_rid))
        current = row
        current_keys = keys
    if current is not None:
        for l in range(k - 2, -1, -1):
            close_level(l, current)
    return out


@register(
    "nested-relational-bottomup",
    description="bottom-up evaluation with nest push-down (§4.2.3-4)",
    cost=cost_bottomup,
)
class BottomUpLinearStrategy:
    """Bottom-up evaluation for linearly correlated queries (§4.2.3).

    Requires: linear query shape *and* linear correlation (each block
    correlated only to its adjacent outer block).  Evaluation starts at
    the innermost block: nest it by its correlated attributes (push-down,
    §4.2.4, when the correlation is a pure equality; otherwise nest after
    the outer join), apply the linking selection, and join the *small*
    qualified result upward.
    """

    name = "nested-relational-bottomup"

    def __init__(self, use_pushdown: bool = True):
        self.use_pushdown = use_pushdown

    def applicable(self, query: NestedQuery) -> bool:
        return (
            query.is_linear
            and query.is_linearly_correlated()
            and not query.has_disjunction
        )

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        if not self.applicable(query):
            raise PlanError(
                "bottom-up evaluation requires a linear, linearly "
                "correlated query"
            )
        chain = list(query.root.walk())
        reduced = reduce_all(query, db)

        # Walk bottom-up.  ``carry`` is the current child-side relation of
        # qualified tuples: for the step joining block i with block i+1 it
        # holds block i+1 attributes (rid included; rows that failed
        # deeper predicates already eliminated or padded away).
        if len(chain) == 1:
            out = reduced[query.root.index].relation.project(
                query.root.select_refs
            )
            return out.distinct() if query.root.distinct else out
        carry: Optional[Relation] = None
        for parent, child in zip(reversed(chain[:-1]), reversed(chain[1:])):
            crel = reduced[child.index]
            child_rel = carry if carry is not None else crel.relation
            link = child.link
            assert link is not None
            predicate = set_predicate_for(link)
            parent_rel = reduced[parent.index].relation
            equi = [c for c in child.correlations if c.is_equality]
            other = [c for c in child.correlations if not c.is_equality]
            keep = _dedupe(
                ([link.inner_ref] if link.inner_ref is not None else [])
                + [crel.rid_ref]
            )
            if (
                self.use_pushdown
                and equi
                and not other
                and len(equi) == len(child.correlations)
            ):
                # §4.2.4: nest the child by its correlated attributes
                # before the join; probe groups from the parent side.
                rel = _pushdown_apply(
                    parent_rel,
                    child_rel,
                    [c.outer_ref for c in equi],
                    [c.inner_ref for c in equi],
                    keep,
                    predicate,
                    link,
                    crel.rid_ref,
                )
            else:
                if child.correlations:
                    joined = as_relation(
                        LeftOuterHashJoin(
                            parent_rel,
                            child_rel,
                            [c.outer_ref for c in equi],
                            [c.inner_ref for c in equi],
                            residual=conjoin([c.as_expr() for c in other])
                            if other
                            else None,
                        )
                    )
                else:
                    joined = as_relation(OuterCrossJoin(parent_rel, child_rel))
                by = [
                    r
                    for r in joined.schema.names
                    if r in set(parent_rel.schema.names)
                ]
                nested = nest(joined, by, keep)
                rel = linking_selection(
                    nested,
                    predicate,
                    link.outer_ref,
                    link.inner_ref,
                    pk_ref=crel.rid_ref,
                )
            carry = rel
        assert carry is not None
        out = carry.project(query.root.select_refs)
        if query.root.distinct:
            out = out.distinct()
        return out


def _pushdown_apply(
    parent_rel: Relation,
    child_rel: Relation,
    outer_keys: Sequence[str],
    inner_keys: Sequence[str],
    keep: Sequence[str],
    predicate: SetPredicate,
    link: LinkSpec,
    pk_ref: str,
) -> Relation:
    """Nest the child by its correlated attributes, then probe per parent
    tuple and apply the linking selection — strict, since bottom-up
    evaluation always works on the currently-outermost unfinished link."""
    with op_span(
        "nest-pushdown-link",
        kind="phase",
        contract=CONTRACT_FILTERING,
        pred=predicate.describe(),
    ) as span:
        out_rows = _pushdown_probe(
            parent_rel, child_rel, outer_keys, inner_keys, keep,
            predicate, link, pk_ref,
        )
        if span is not None:
            span.add("rows_in", len(parent_rel.rows))
            span.add("rows_out", len(out_rows))
    return Relation(parent_rel.schema, out_rows)


def _pushdown_probe(
    parent_rel: Relation,
    child_rel: Relation,
    outer_keys: Sequence[str],
    inner_keys: Sequence[str],
    keep: Sequence[str],
    predicate: SetPredicate,
    link: LinkSpec,
    pk_ref: str,
) -> List[tuple]:
    metrics = current_metrics()
    # Distinct correlations may bind the same inner column (``s.b = r.a
    # AND s.b = r.k``); nest by each inner column once, and when probing
    # require every outer value bound to that column to agree.
    unique_inner: List[str] = []
    outer_groups: List[List[str]] = []
    for o, i in zip(outer_keys, inner_keys):
        if i in unique_inner:
            outer_groups[unique_inner.index(i)].append(o)
        else:
            unique_inner.append(i)
            outer_groups.append([o])
    # The linked attribute may itself be a correlation key (e.g.
    # ``... = SOME (select s.b ... where s.b = r.a)``): it then lives in
    # the nesting attributes, not the nested set — nest demands the two
    # be disjoint — and every member of a group shares its key value.
    nest_keep = [r for r in keep if r not in unique_inner]
    nested = nest(child_rel, unique_inner, nest_keep)
    group_pos = nested.schema.index_of("_nested")
    by_positions = [nested.schema.index_of(r) for r in unique_inner]
    sub_schema = nested.schema.subschema("_nested").schema.to_flat()
    val_pos = None
    val_key_idx = None
    if link.inner_ref is not None:
        if link.inner_ref in unique_inner:
            val_key_idx = unique_inner.index(link.inner_ref)
        else:
            val_pos = sub_schema.index_of(link.inner_ref)
    pk_pos = sub_schema.index_of(pk_ref)

    from ..engine.types import row_group_key

    groups: Dict[tuple, list] = {}
    for row in nested.rows:
        key_vals = tuple(row[p] for p in by_positions)
        key = row_group_key(key_vals)
        if val_key_idx is not None:
            value_of = lambda member: key_vals[val_key_idx]
        elif val_pos is not None:
            value_of = lambda member: member[val_pos]
        else:
            value_of = lambda member: NULL
        groups[key] = [
            (value_of(member), member[pk_pos]) for member in row[group_pos]
        ]

    outer_positions = [
        [parent_rel.schema.index_of(o) for o in group] for group in outer_groups
    ]
    lhs_pos = (
        parent_rel.schema.index_of(link.outer_ref)
        if link.outer_ref is not None
        else None
    )
    out_rows = []
    for n, row in enumerate(parent_rel.rows, 1):
        if not n % 512:
            checkpoint("pushdown-probe")
        metrics.add("hash_probes")
        metrics.add("linking_evals")
        key_vals = []
        unmatched = False
        for plist in outer_positions:
            vals = [row[p] for p in plist]
            if any(is_null(v) for v in vals) or any(
                v != vals[0] for v in vals[1:]
            ):
                unmatched = True
                break
            key_vals.append(vals[0])
        if unmatched:
            members: list = []
        else:
            members = groups.get(row_group_key(tuple(key_vals)), [])
        lhs = row[lhs_pos] if lhs_pos is not None else NULL
        if predicate.evaluate(lhs, members).is_true():
            out_rows.append(row)
    return out_rows


@register(
    "nested-relational-positive-rewrite",
    description="all-positive queries collapsed into semijoin chains (§4.2.5)",
    cost=cost_positive_rewrite,
)
class PositiveRewriteStrategy:
    """Rewrite all-positive queries into (semi)join chains (§4.2.5).

    σ_{AθSOME{B}}(υ_{A},{B}(R ⟕_C S)) ≡ R ⋉_{C ∧ AθB} S.  Applied
    bottom-up: each block is semijoined with its (already reduced and
    semijoin-filtered) child, so the whole query collapses into the plan
    a classical optimizer would produce — demonstrating that the nested
    relational approach degrades gracefully to the standard one for
    positive linking operators.
    """

    name = "nested-relational-positive-rewrite"

    def applicable(self, query: NestedQuery) -> bool:
        """All links positive *and* every correlation adjacent.

        A block correlated with a non-adjacent ancestor (the paper's
        Query 3 shape) cannot be folded into a bottom-up semijoin chain:
        the semijoin discards the ancestor attributes the inner block
        needs.  Such queries keep the nested relational pipeline.
        """
        if any(
            b.link is not None and not b.link.is_positive
            for b in query.root.walk()
        ):
            # excludes negative links, aggregate links and marked
            # (disjunctive) links alike — none admit a plain semijoin
            return False

        def adjacent(block: QueryBlock, parent: QueryBlock) -> bool:
            for corr in block.correlations:
                alias = corr.outer_ref.rpartition(".")[0]
                if alias not in parent.tables:
                    return False
            return all(adjacent(child, block) for child in block.children)

        return all(
            adjacent(child, query.root)
            for child in query.root.children
        )

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        if not self.applicable(query):
            raise PlanError(
                "positive rewrite requires all linking operators positive"
            )
        reduced = reduce_all(query, db)
        out = self._filter_block(query.root, reduced)
        result = out.project(query.root.select_refs)
        if query.root.distinct:
            result = result.distinct()
        return result

    def _filter_block(
        self, block: QueryBlock, reduced: Dict[int, ReducedBlock]
    ) -> Relation:
        rel = reduced[block.index].relation
        for child in block.children:
            child_rel = self._filter_block(child, reduced)
            link = child.link
            assert link is not None
            equi = [c for c in child.correlations if c.is_equality]
            other = [c for c in child.correlations if not c.is_equality]
            residuals = [c.as_expr() for c in other]
            if link.operator not in ("exists", "not_exists"):
                residuals.append(_theta_expr(link))
            rel = as_relation(
                SemiJoin(
                    rel,
                    child_rel,
                    [c.outer_ref for c in equi],
                    [c.inner_ref for c in equi],
                    residual=conjoin(residuals) if residuals else None,
                )
            )
        return rel


def _theta_expr(link: LinkSpec):
    from ..engine.expressions import Col, Comparison

    return Comparison(link.effective_theta, Col(link.outer_ref), Col(link.inner_ref))


def _dedupe(refs: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for r in refs:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out
