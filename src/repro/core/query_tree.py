"""Tree expressions (Algorithm step 2, paper Figure 3(a)).

A :class:`TreeExpression` is the paper's intermediate structure between a
nested query and its evaluation: one node per query block (labelled T_i),
a directed edge from each block to its children labelled with the linking
predicate L_i and any correlated predicates C_ij.

Correlated predicates referencing *non-adjacent* blocks are attached to
the edge entering the correlated block when every edge above already
carries correlation labels — producing a maximal spanning query tree of
the underlying query graph, exactly as the paper prescribes.  Since SQL
correlation always points at enclosing blocks, the attributes needed to
evaluate such a predicate are guaranteed to be present in the accumulated
relation by the time the edge is crossed (this is why
:class:`~repro.core.compute.NestedRelationalStrategy` can evaluate all
C_ij of a block at its entering edge).

The class is used by ``explain``-style output, tests that pin the paper's
Figure 3, and documentation examples; the evaluator itself works off the
:class:`~repro.core.blocks.NestedQuery` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .blocks import Correlation, LinkSpec, NestedQuery, QueryBlock


@dataclass
class TreeNode:
    """A node of the tree expression, labelled T_i."""

    block: QueryBlock
    children: List["TreeEdge"] = field(default_factory=list)

    @property
    def label(self) -> str:
        tables = ", ".join(
            name if alias == name else f"{name} {alias}"
            for alias, name in self.block.tables.items()
        )
        return f"T{self.block.index}: {tables}"

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_subroot(self) -> bool:
        """A node with more than one child (paper terminology)."""
        return len(self.children) > 1


@dataclass
class TreeEdge:
    """An edge of the tree expression: linking + correlation labels."""

    child: TreeNode
    link: LinkSpec
    correlations: List[Correlation]

    @property
    def label(self) -> str:
        parts = [f"L: {self.link.describe()}"]
        for corr in self.correlations:
            parts.append(f"C: {corr.describe()}")
        return "; ".join(parts)


class TreeExpression:
    """The tree expression of a nested query."""

    def __init__(self, query: NestedQuery):
        self.query = query
        self.root = self._build(query.root)

    def _build(self, block: QueryBlock) -> TreeNode:
        node = TreeNode(block)
        for child in block.children:
            assert child.link is not None
            node.children.append(
                TreeEdge(
                    child=self._build(child),
                    link=child.link,
                    correlations=list(child.correlations),
                )
            )
        return node

    def render(self) -> str:
        """ASCII rendering matching the paper's Figure 3(a) layout."""
        lines: List[str] = []

        def visit(node: TreeNode, depth: int) -> None:
            pad = "    " * depth
            lines.append(f"{pad}{node.label}")
            for edge in node.children:
                lines.append(f"{pad}  |- {edge.label}")
                visit(edge.child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def subroots(self) -> List[TreeNode]:
        """All nodes with more than one child."""
        out = []

        def visit(node: TreeNode) -> None:
            if node.is_subroot:
                out.append(node)
            for edge in node.children:
                visit(edge.child)

        visit(self.root)
        return out

    def leaves(self) -> List[TreeNode]:
        out = []

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                out.append(node)
            for edge in node.children:
                visit(edge.child)

        visit(self.root)
        return out
