"""Linking predicates over nested relations (paper Definition 4).

A linking predicate compares an atomic attribute to a set-valued one:
``A θ SOME {B}``, ``A θ ALL {B}``, or tests set (non-)emptiness
``{B} = ∅`` / ``{B} ≠ ∅``.  Its evaluation is a *set computation* under
SQL three-valued logic — this is the paper's core observation: a
non-aggregate subquery provides, for each outer tuple, a set of values
(perhaps empty), and every SQL linking operator is a predicate over that
set:

=============  ==========================
SQL operator   linking predicate
=============  ==========================
EXISTS         {B} ≠ ∅
NOT EXISTS     {B} = ∅
A IN           A = SOME {B}
A NOT IN       A <> ALL {B}
A θ SOME/ANY   A θ SOME {B}
A θ ALL        A θ ALL {B}
=============  ==========================

**Empty-set detection.**  The pipeline materializes subquery results via
left outer joins, so "no inner tuple" appears as a row padded with NULLs.
Per the paper (Example 1) each block keeps its primary key, which is
non-null for genuine tuples; a member whose primary key is NULL is an
*empty marker* and is excluded from the set before evaluation.  This is
what distinguishes the empty set from a set containing a genuine NULL —
the distinction classical antijoin rewrites get wrong.

**Quantifier semantics (3VL).**  ``θ ALL`` is the 3VL conjunction of the
member comparisons (vacuously TRUE on the empty set); ``θ SOME`` the 3VL
disjunction (vacuously FALSE).  Comparing against a NULL member yields
UNKNOWN, so e.g. ``5 > ALL {2,3,4,NULL}`` is UNKNOWN — the example the
paper uses to show the max/antijoin rewrites are unsound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..errors import ExpressionError
from ..engine.types import (
    SqlValue,
    TriBool,
    is_null,
    sql_compare,
    tri_all,
    tri_any,
)

#: quantifiers accepted by :class:`SetPredicate`
QUANTIFIERS = ("some", "all", "exists", "not_exists", "agg")


def aggregate_value(
    func: str, values: Sequence[SqlValue], count_rows: int
) -> SqlValue:
    """One SQL aggregate over a group's *non-NULL argument values*.

    *count_rows* is the number of live tuples in the group (the
    ``COUNT(*)`` answer — it counts empty groups as 0, never NULL, which
    is exactly the zero-count behaviour the COUNT bug is about).
    """
    from ..engine.operators.aggregate import _finish

    return _finish(func, list(values), count_rows)


@dataclass(frozen=True)
class SetPredicate:
    """A compiled linking predicate, ready to evaluate group-by-group.

    ``quantifier`` ∈ {"some", "all", "exists", "not_exists", "agg"};
    *theta* is required for the quantified and aggregate forms and
    ignored for the existential ones.  Evaluation receives the linking
    value (LHS) and the group members together with their primary-key
    values.

    The ``"agg"`` form is the paper's nest-based answer to scalar
    aggregate subqueries: the nest operator already materializes the
    group, so the predicate aggregates the live members with *agg_func*
    and compares once — ``lhs θ agg({B})``.  A constant LHS (``0 =
    (SELECT COUNT(*) …)``) is carried in *const* as a 1-tuple so a NULL
    literal stays distinguishable from "use the linking value".
    """

    quantifier: str
    theta: Optional[str] = None
    agg_func: Optional[str] = None
    const: Optional[Tuple[SqlValue]] = None

    def __post_init__(self) -> None:
        if self.quantifier not in QUANTIFIERS:
            raise ExpressionError(f"unknown quantifier {self.quantifier!r}")
        if self.quantifier in ("some", "all", "agg") and self.theta is None:
            raise ExpressionError(f"quantifier {self.quantifier!r} needs a theta")
        if (self.quantifier == "agg") != (self.agg_func is not None):
            raise ExpressionError(
                "agg_func is required for (and exclusive to) 'agg' predicates"
            )

    def evaluate(
        self,
        linking_value: SqlValue,
        members: Iterable[Tuple[SqlValue, SqlValue]],
    ) -> TriBool:
        """Evaluate over ``members`` = iterable of (linked value, pk value).

        Members whose pk is NULL are empty markers and are skipped; the
        remaining values form the subquery result set for this group.
        """
        live = [value for value, pk in members if not is_null(pk)]
        if self.quantifier == "exists":
            return TriBool.from_bool(bool(live))
        if self.quantifier == "not_exists":
            return TriBool.from_bool(not live)
        assert self.theta is not None
        if self.quantifier == "agg":
            assert self.agg_func is not None
            agg = aggregate_value(
                self.agg_func,
                [v for v in live if not is_null(v)],
                len(live),
            )
            lhs = self.const[0] if self.const is not None else linking_value
            return sql_compare(self.theta, lhs, agg)
        comparisons = (sql_compare(self.theta, linking_value, v) for v in live)
        if self.quantifier == "all":
            return tri_all(comparisons)
        return tri_any(comparisons)

    @property
    def is_negative(self) -> bool:
        """Negative predicates are satisfied by the empty set."""
        return self.quantifier in ("all", "not_exists")

    def describe(self) -> str:
        if self.quantifier in ("exists", "not_exists"):
            return "{B} ≠ ∅" if self.quantifier == "exists" else "{B} = ∅"
        if self.quantifier == "agg":
            lhs = repr(self.const[0]) if self.const is not None else "A"
            return f"{lhs} {self.theta} {self.agg_func}({{B}})"
        return f"A {self.theta} {self.quantifier.upper()} {{B}}"


def evaluate_quantified(
    theta: str,
    quantifier: str,
    linking_value: SqlValue,
    values: Sequence[SqlValue],
) -> TriBool:
    """Direct quantified comparison against an explicit value set.

    Convenience used by the tuple-iteration baseline, where the subquery
    result set is computed directly (no pk markers needed).
    """
    comparisons = (sql_compare(theta, linking_value, v) for v in values)
    if quantifier == "all":
        return tri_all(comparisons)
    if quantifier == "some":
        return tri_any(comparisons)
    raise ExpressionError(f"unknown quantifier {quantifier!r}")
