"""Resource governance: deadlines, memory budgets, cooperative cancellation.

The engine's operators are pure and uninterruptible from the outside —
Algorithm 1 guarantees a correct answer only if every operator runs to
completion.  A serving layer needs the complement: *bounded* execution
that can be timed out, cancelled, or capped on memory, and whose
degraded paths still honor the pk-NULL convention and Kleene 3VL
semantics (the rewrites that *A Formalisation of SQL with Nulls* shows
are so easy to break are never re-derived here — degradation re-runs
the same plan on a slower backend, it never changes the plan).

One :class:`ResourceGovernor` governs one execution.  It carries

* a **deadline** (``timeout_ms``, armed by :meth:`start`),
* a **cooperative cancellation token** (:meth:`cancel`, thread-safe),
* a **memory budget** (``memory_limit_mb``) fed by accounting hooks in
  the hash-join builds, nest grouping and batch materialization
  (:func:`charge_batch` / :func:`charge_rows` — the same observed
  row/byte figures the :mod:`~repro.engine.metrics` counters record),
* a **degradation policy** (``degrade='sequential'`` retries a failed
  parallel execution once on the single-threaded vectorized backend).

All three limits are checked at *morsel and operator boundaries* via
:func:`checkpoint`; a breach raises the typed
:class:`~repro.errors.QueryTimeoutError` /
:class:`~repro.errors.ResourceExhaustedError` /
:class:`~repro.errors.QueryCancelledError`.  The governor is installed
as an ambient, thread-local scope (:func:`governed` /
:func:`current_governor`) exactly like metrics and tracing; the morsel
scheduler re-installs the *same* governor object in each worker thread,
so cancellation and budget accounting are shared across the pool (the
governor's mutable state is lock-protected).

Fault injection
---------------

``REPRO_FAULT`` selects a deliberate failure mode that tests, the
fuzzer and the CI fault-injection job use to exercise every degraded
path:

* ``worker_crash`` — every morsel dispatched to a *pool thread* raises
  :class:`~repro.errors.InjectedFaultError`; inline (single-threaded)
  execution is unaffected, so ``degrade='sequential'`` recovers.
* ``slow_morsel`` — every checkpoint sleeps ``REPRO_FAULT_MS``
  milliseconds (default 20) before checking, making any plan
  deliberately slow so deadline tests are deterministic.
* ``alloc_spike`` — every checkpoint under a memory-limited governor
  charges the whole budget at once, tripping
  :class:`~repro.errors.ResourceExhaustedError` on the next check.
* ``spill_io`` — every spill-partition write raises
  :class:`~repro.errors.SpillError`, exercising the spill paths'
  governed cleanup (temp files removed, typed error surfaced, the
  degradation ladder still applicable).

Spilling
--------

When a governor carries *both* a memory budget and a ``spill_dir``, the
budget stops being a hard failure at the two memory cliffs (hash-join
build, nest grouping): the spill-aware kernels ask
:meth:`ResourceGovernor.should_spill` before materializing and divert
to Grace-style disk partitions (:mod:`repro.engine.spill`) when the
estimate would breach the budget.  Without a ``spill_dir`` the budget
keeps its original error semantics unchanged.
"""

from __future__ import annotations

import itertools
import os
import shutil
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import (
    InjectedFaultError,
    InvalidArgumentError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
    SpillError,
)

#: accepted values of the ``degrade`` policy
DEGRADE_MODES = ("sequential",)

#: accepted values of the ``REPRO_FAULT`` environment variable
FAULT_MODES = ("worker_crash", "slow_morsel", "alloc_spike", "spill_io")

#: rough per-value cost of a Python-object row cell, used by the row
#: backend's accounting (the vector backend measures array bytes).
EST_BYTES_PER_VALUE = 48

#: process-wide monotonic counter naming per-execution spill workspaces;
#: combined with the pid it makes workspace names unique even when many
#: processes (and, within one, many concurrent executions) share a
#: configured ``spill_dir``.  ``itertools.count`` is atomic in CPython.
_workspace_ids = itertools.count(1)


def _positive(value, name: str, unit: str):
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidArgumentError(
            f"{name} must be a positive number of {unit}, got {value!r}"
        )
    if value <= 0:
        raise InvalidArgumentError(
            f"{name} must be > 0 ({unit}); got {value!r} — omit it (None) "
            f"to run ungoverned"
        )
    return value


def validate_degrade(degrade: Optional[str]) -> Optional[str]:
    """Normalize/validate a ``degrade`` policy value."""
    if degrade is None:
        return None
    if degrade not in DEGRADE_MODES:
        raise InvalidArgumentError(
            f"unknown degrade policy {degrade!r}; expected one of "
            f"{DEGRADE_MODES} or None"
        )
    return degrade


class ResourceGovernor:
    """Per-execution deadline + memory budget + cancellation token.

    Thread-safe: one governor is shared by the dispatching thread and
    every morsel worker of the execution it governs.  Re-usable: each
    :meth:`start` re-arms the deadline and zeroes the accounted bytes,
    so a session-level governor template can be executed repeatedly
    (the Session API builds a fresh one per call anyway).
    """

    def __init__(
        self,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
        spill_dir: Optional[str] = None,
    ):
        self.timeout_ms = _positive(timeout_ms, "timeout_ms", "milliseconds")
        limit = _positive(memory_limit_mb, "memory_limit_mb", "megabytes")
        self.memory_limit_bytes: Optional[int] = (
            None if limit is None else int(limit * 1024 * 1024)
        )
        self.degrade = validate_degrade(degrade)
        if spill_dir is not None and not isinstance(spill_dir, str):
            raise InvalidArgumentError(
                f"spill_dir must be a directory path or None, got {spill_dir!r}"
            )
        #: directory for spill partitions; setting it (together with a
        #: memory budget) turns budget breaches at the spillable
        #: operators into spills instead of errors
        self.spill_dir = spill_dir
        self._workspace: Optional[str] = None
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._deadline: Optional[float] = None
        self._reserved = 0
        self._peak = 0
        self.spilled_bytes = 0
        self.spill_count = 0
        #: (from_strategy, to_strategy, reason) degradations this
        #: governor witnessed — recorded by the planner's ladder
        self.degradations: List[Tuple[str, str, str]] = []
        if self.timeout_ms is not None:
            self.start()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ResourceGovernor":
        """(Re-)arm the deadline and zero the memory account."""
        with self._lock:
            self._deadline = (
                None
                if self.timeout_ms is None
                else time.monotonic() + self.timeout_ms / 1000.0
            )
            self._reserved = 0
            self.spilled_bytes = 0
            self.spill_count = 0
        return self

    def cancel(self) -> None:
        """Trip the cancellation token (callable from any thread)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    @property
    def peak_bytes(self) -> int:
        return self._peak

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline, or None when unbounded."""
        if self._deadline is None:
            return None
        return (self._deadline - time.monotonic()) * 1000.0

    # ------------------------------------------------------------------ #
    # the checks
    # ------------------------------------------------------------------ #

    def check(self, site: str = "operator") -> None:
        """Raise the typed governance error for any tripped limit."""
        if self._cancelled.is_set():
            raise QueryCancelledError(
                f"query cancelled (checked at {site} boundary)"
            )
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeoutError(
                f"query exceeded timeout_ms={self.timeout_ms:g} "
                f"(checked at {site} boundary)"
            )
        limit = self.memory_limit_bytes
        if limit is not None and self._reserved > limit:
            self._raise_exhausted(site)

    def charge(self, n_bytes: int, what: str = "allocation") -> None:
        """Account *n_bytes* of observed allocation; raise on breach.

        The account is cumulative over one execution — a cheap, monotone
        over-approximation of peak usage that never misses a runaway
        build (operators materialize their outputs, so sustained growth
        is exactly what the counter sees).
        """
        if n_bytes <= 0:
            return
        with self._lock:
            self._reserved += int(n_bytes)
            if self._reserved > self._peak:
                self._peak = self._reserved
        limit = self.memory_limit_bytes
        if limit is not None and self._reserved > limit:
            self._raise_exhausted(what)

    def release(self, n_bytes: int) -> None:
        """Return *n_bytes* to the budget (spilled data left the heap).

        Peak accounting is untouched — ``peak_bytes`` stays the honest
        high-water mark; only the live reservation shrinks, which is
        what lets a spilling operator process partitions one at a time
        under a budget smaller than its total input.
        """
        if n_bytes <= 0:
            return
        with self._lock:
            self._reserved = max(0, self._reserved - int(n_bytes))

    def should_spill(self, est_bytes: int) -> bool:
        """Whether a pending *est_bytes* materialization must spill.

        True only when spilling is enabled (both ``spill_dir`` and a
        memory budget are set) and the estimate would push the live
        reservation over the budget.  Callers check this *before*
        charging, so the non-spilling path's semantics are unchanged.
        """
        limit = self.memory_limit_bytes
        if self.spill_dir is None or limit is None:
            return False
        return self._reserved + int(est_bytes) > limit

    def record_spill(self, n_bytes: int) -> None:
        """Account one spill pass (bytes written to temp column files)."""
        with self._lock:
            self.spilled_bytes += int(n_bytes)
            self.spill_count += 1

    def spill_workspace(self) -> str:
        """This execution's private spill directory (created lazily).

        Concurrent executions may share one configured ``spill_dir`` (a
        server points every tenant at the same scratch volume); each
        execution gets its own ``exec-<pid>-<n>/`` subdirectory so
        partition files from different queries can never collide.  The
        planner removes the whole subtree when the execution ends
        (:meth:`cleanup_spill_workspace`), crash or not.
        """
        if self.spill_dir is None:  # pragma: no cover - callers gate on it
            raise InvalidArgumentError(
                "spill_workspace() requires a spill_dir"
            )
        with self._lock:
            if self._workspace is None:
                name = f"exec-{os.getpid()}-{next(_workspace_ids)}"
                path = os.path.join(self.spill_dir, name)
                os.makedirs(path, exist_ok=True)
                self._workspace = path
            return self._workspace

    def cleanup_spill_workspace(self) -> None:
        """Remove this execution's spill subtree (idempotent, best-effort).

        Interior spill passes already delete their own partition files;
        this sweep guarantees the shared ``spill_dir`` ends every
        execution as empty as it started even if a pass aborted between
        creating its temp directory and its ``finally``.
        """
        with self._lock:
            path, self._workspace = self._workspace, None
        if path is not None:
            shutil.rmtree(path, ignore_errors=True)

    def _raise_exhausted(self, what: str) -> None:
        limit = self.memory_limit_bytes or 0
        raise ResourceExhaustedError(
            f"memory budget exceeded at {what}: ~{self._reserved} bytes "
            f"accounted > memory_limit_mb={limit / (1024 * 1024):g}"
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def record_degradation(self, source: str, target: str, reason: str) -> None:
        self.degradations.append((source, target, reason))

    def describe_attrs(self) -> Dict[str, Any]:
        """The span attributes a governed execution is tagged with."""
        attrs: Dict[str, Any] = {}
        if self.timeout_ms is not None:
            attrs["timeout_ms"] = self.timeout_ms
        if self.memory_limit_bytes is not None:
            attrs["memory_limit_mb"] = self.memory_limit_bytes // (1024 * 1024)
        if self.degrade is not None:
            attrs["degrade"] = self.degrade
        if self.spill_dir is not None:
            attrs["spill_dir"] = self.spill_dir
        return attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.describe_attrs().items())
        return f"ResourceGovernor({inner})"


# --------------------------------------------------------------------- #
# Ambient scope (thread-local, explicitly re-installed in pool workers)
# --------------------------------------------------------------------- #

_ambient = threading.local()


def current_governor() -> Optional[ResourceGovernor]:
    """The governor of this thread's execution, or None (ungoverned)."""
    return getattr(_ambient, "governor", None)


@contextmanager
def governed(governor: Optional[ResourceGovernor]) -> Iterator[None]:
    """Install *governor* as the ambient governor for a block.

    ``None`` installs nothing, so call sites need no conditional.  The
    morsel scheduler uses this to propagate the dispatching thread's
    governor into each worker (same object — shared token and budget).
    """
    if governor is None:
        yield
        return
    previous = getattr(_ambient, "governor", None)
    _ambient.governor = governor
    try:
        yield
    finally:
        _ambient.governor = previous


# --------------------------------------------------------------------- #
# Fault injection (REPRO_FAULT)
# --------------------------------------------------------------------- #


def active_fault() -> Optional[str]:
    """The fault mode selected by ``REPRO_FAULT``, or None.

    Unknown values raise :class:`InvalidArgumentError` rather than
    silently running fault-free — a typo'd CI matrix entry must fail
    loudly, not pass vacuously.
    """
    value = os.environ.get("REPRO_FAULT", "").strip()
    if not value:
        return None
    if value not in FAULT_MODES:
        raise InvalidArgumentError(
            f"unknown REPRO_FAULT mode {value!r}; expected one of {FAULT_MODES}"
        )
    return value


def fault_sleep_seconds() -> float:
    """The ``slow_morsel`` per-checkpoint sleep (``REPRO_FAULT_MS``)."""
    env = os.environ.get("REPRO_FAULT_MS")
    if env:
        try:
            return max(0.0, float(env)) / 1000.0
        except ValueError:
            pass
    return 0.020


def maybe_spill_io_failure() -> None:
    """Raise the injected write failure when ``REPRO_FAULT=spill_io``.

    Called by the spill paths immediately before each partition write,
    so the failure lands mid-spill with temp files already on disk —
    exactly the state whose cleanup the injection is meant to prove.
    """
    if active_fault() == "spill_io":
        raise SpillError(
            "injected spill write failure (REPRO_FAULT=spill_io)"
        )


def maybe_worker_crash() -> None:
    """Raise the injected crash when ``REPRO_FAULT=worker_crash``.

    Called only from morsels actually dispatched onto a pool thread, so
    the sequential retry of ``degrade='sequential'`` never re-triggers
    it.
    """
    if active_fault() == "worker_crash":
        raise InjectedFaultError(
            "injected worker crash (REPRO_FAULT=worker_crash)"
        )


def checkpoint(site: str = "operator") -> None:
    """The cooperative boundary check every operator/morsel passes.

    Applies the active fault (sleep / allocation spike) *first*, then
    checks the ambient governor — so an injected slowdown is observed by
    the very next deadline check, keeping timeout overshoot bounded by
    one checkpoint interval.  Ungoverned, fault-free executions pay one
    ``os.environ`` lookup and one thread-local read.
    """
    fault = active_fault()
    governor = current_governor()
    if fault == "slow_morsel":
        time.sleep(fault_sleep_seconds())
    elif (
        fault == "alloc_spike"
        and governor is not None
        and governor.memory_limit_bytes is not None
    ):
        governor.charge(
            governor.memory_limit_bytes + 1,
            "injected allocation spike (REPRO_FAULT=alloc_spike)",
        )
    if governor is not None:
        governor.check(site)


# --------------------------------------------------------------------- #
# Accounting hooks (called from the kernels; no-ops when ungoverned)
# --------------------------------------------------------------------- #


def _is_mapped(arr) -> bool:
    """Whether *arr* is (a view into) a memory-mapped file."""
    import numpy as np

    seen = 0
    while arr is not None and seen < 8:
        if isinstance(arr, np.memmap):
            return True
        arr = getattr(arr, "base", None)
        seen += 1
    return False


def batch_nbytes(batch) -> int:
    """Observed *heap* bytes of a columnar :class:`~...vector.batch.Batch`.

    Memory-mapped columns (stored tables and their slices) are excluded:
    the OS pages them in and out against file storage, so counting them
    against the RAM budget would make every stored scan "exhaust" a cap
    smaller than the dataset — the exact situation the store exists for.
    """
    total = 0
    for column in batch.columns:
        # A mapped data array marks the whole vector as stored; its
        # unpacked validity mask (1 byte/row) rides along for free.
        if _is_mapped(column.data):
            continue
        total += int(getattr(column.data, "nbytes", 0))
        if not _is_mapped(column.valid):
            total += int(getattr(column.valid, "nbytes", 0))
    return total


def charge_batch(batch, what: str = "batch materialization") -> None:
    """Account a materialized batch against the ambient budget."""
    governor = current_governor()
    if governor is None or governor.memory_limit_bytes is None:
        return
    governor.charge(batch_nbytes(batch), what)


def charge_rows(n_rows: int, width: int, what: str = "build") -> None:
    """Account *n_rows* × *width* row-engine values against the budget."""
    governor = current_governor()
    if governor is None or governor.memory_limit_bytes is None:
        return
    governor.charge(n_rows * max(1, width) * EST_BYTES_PER_VALUE, what)
