"""Deterministic cost counters.

Wall-clock numbers from a pure-Python engine on arbitrary hardware do not
reproduce a 2005 paper's absolute measurements; counter *shapes* do.  Every
physical operator charges its work to the ambient :class:`Metrics` object:
rows produced, rows scanned, hash-table builds/probes, index probes, sort
operations and comparison counts.  The benchmark harness reports both wall
time and these counters so that figure shapes (who wins, where the
crossover is) are machine-independent.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


#: weights for :meth:`Metrics.weighted_cost`: an index probe costs a
#: B-tree descent plus a random page read; a row fetched by rowid costs a
#: (frequently cache-missing) page touch; everything else is charged one
#: unit of sequential/in-memory work per row.
IO_WEIGHTS: Dict[str, int] = {
    "index_probes": 2000,
    "index_rows_fetched": 50,
}


@dataclass
class Metrics:
    """Mutable counter bundle shared by the operators of one execution."""

    counters: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def total(self) -> int:
        """Sum of all counters — a crude single-number cost."""
        return sum(self.counters.values())

    def weighted_cost(self, weights: Optional[Dict[str, int]] = None) -> int:
        """Disk-era cost: counters weighted by their 2005-hardware price.

        The paper's experiments ran on a cold 1 GB database behind a
        32 MB buffer cache, where an index probe is a random I/O
        (~5 ms ≈ thousands of sequentially scanned rows) while scans,
        hash builds and in-memory predicate work are cheap per row.
        :data:`IO_WEIGHTS` encodes that ratio so figure *shapes* (who
        wins, how slopes grow) reproduce the paper even though this
        engine runs entirely in RAM, where random probes are nearly
        free.  All unlisted counters weigh 1.
        """
        weights = IO_WEIGHTS if weights is None else weights
        return sum(
            value * weights.get(name, 1) for name, value in self.counters.items()
        )

    def merged(self, other: "Metrics") -> "Metrics":
        out = Metrics(dict(self.counters))
        for k, v in other.counters.items():
            out.add(k, v)
        return out

    def invariant_violations(
        self, result_cardinality: Optional[int] = None
    ) -> List[str]:
        """Sanity-check the counter bundle, returning violation messages.

        Every counter must be non-negative (operators only ever *add*
        work).  When *result_cardinality* is given it is checked against
        the ``rows_produced`` counter the planner charges once per
        finished execution — the fuzzer runs every strategy under a fresh
        :func:`collect` scope and uses this to catch strategies that
        drop or duplicate result rows relative to what they report.
        """
        violations = []
        for name, value in sorted(self.counters.items()):
            if value < 0:
                violations.append(f"counter {name!r} is negative ({value})")
        if result_cardinality is not None:
            produced = self.get("rows_produced")
            if produced != result_cardinality:
                violations.append(
                    f"rows_produced={produced} but the result has "
                    f"{result_cardinality} row(s)"
                )
        return violations

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Metrics({inner})"


# A module-level default makes simple call sites (tests, examples) clean
# while the harness installs a fresh Metrics per measured run.  The
# *installed* scope is thread-local: morsel workers of the parallel
# executor each :func:`collect` into their own bundle (merged by the
# scheduler afterwards) without racing the main thread's counters.
_default = Metrics()
_ambient = threading.local()


def current_metrics() -> Metrics:
    """The ambient metrics object operators charge to.

    Thread-local: a scope installed by :func:`collect` is visible only to
    the installing thread; other threads fall back to the process-wide
    default bundle.
    """
    current = getattr(_ambient, "current", None)
    return _default if current is None else current


@contextmanager
def collect() -> Iterator[Metrics]:
    """Run a block with a fresh ambient :class:`Metrics`, yielding it.

    >>> with collect() as m:
    ...     pass  # run operators
    >>> m.get("rows_out") >= 0
    True
    """
    previous = getattr(_ambient, "current", None)
    fresh = Metrics()
    _ambient.current = fresh
    try:
        yield fresh
    finally:
        _ambient.current = previous


@dataclass
class TimedResult:
    """A value paired with its wall-clock duration and metrics."""

    value: object
    seconds: float
    metrics: Metrics


def timed(fn, *args, **kwargs) -> TimedResult:
    """Run *fn* under a fresh metrics scope, timing it."""
    with collect() as m:
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
    return TimedResult(value=value, seconds=elapsed, metrics=m)
