"""Flat relational engine substrate.

Everything the nested relational core and the baseline strategies stand
on: the SQL value model with three-valued logic (:mod:`.types`), schemas
(:mod:`.schema`), materialized relations (:mod:`.relation`), expressions
(:mod:`.expressions`), physical operators (:mod:`.operators`), indexes
(:mod:`.index`), the catalog (:mod:`.catalog`) and cost instrumentation
(:mod:`.metrics`).
"""

from .types import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    SqlValue,
    TriBool,
    is_null,
    sql_compare,
    tri_all,
    tri_any,
)
from .schema import Column, Schema, parse_ref
from .relation import Relation, Row
from .expressions import (
    And,
    Arith,
    Between,
    Col,
    Comparison,
    EvalContext,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    cmp,
    conjoin,
    eq,
    split_conjuncts,
    truth,
)
from .catalog import Database, Table
from .index import HashIndex, SortedIndex
from .metrics import Metrics, collect, current_metrics, timed
from .trace import (
    Span,
    Trace,
    Tracer,
    current_tracer,
    reconcile_with_metrics,
    render_trace,
    trace_invariant_violations,
    tracing,
    validate_trace_dict,
)

__all__ = [
    "NULL",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "SqlValue",
    "TriBool",
    "is_null",
    "sql_compare",
    "tri_all",
    "tri_any",
    "Column",
    "Schema",
    "parse_ref",
    "Relation",
    "Row",
    "Expr",
    "Col",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "IsNull",
    "Between",
    "InList",
    "Arith",
    "EvalContext",
    "eq",
    "cmp",
    "conjoin",
    "split_conjuncts",
    "truth",
    "Database",
    "Table",
    "HashIndex",
    "SortedIndex",
    "Metrics",
    "collect",
    "current_metrics",
    "timed",
    "Span",
    "Trace",
    "Tracer",
    "current_tracer",
    "reconcile_with_metrics",
    "render_trace",
    "trace_invariant_violations",
    "tracing",
    "validate_trace_dict",
]
