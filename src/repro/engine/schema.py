"""Flat relational schemas.

A :class:`Schema` is an ordered list of :class:`Column` objects.  Columns
carry an optional table qualifier so that schemas produced by joins can
disambiguate ``R.A`` from ``S.A``.  Attribute resolution accepts either a
qualified name (``"R.A"``) or a bare name (``"A"``) when unambiguous —
the same rule SQL uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A named, optionally table-qualified attribute.

    ``not_null`` records a NOT NULL constraint; the baseline strategies use
    it to decide whether an antijoin rewrite of ``ALL`` / ``NOT IN`` is
    sound (the paper shows "System A" switching plans on exactly this bit).
    """

    name: str
    table: Optional[str] = None
    not_null: bool = False

    @property
    def qualified(self) -> str:
        """Fully qualified name, e.g. ``"orders.o_orderkey"``."""
        return f"{self.table}.{self.name}" if self.table else self.name

    def renamed_table(self, table: Optional[str]) -> "Column":
        """A copy of this column under a different table qualifier."""
        return replace(self, table=table)

    def __repr__(self) -> str:
        return f"Column({self.qualified!r})"


def parse_ref(ref: str) -> Tuple[Optional[str], str]:
    """Split an attribute reference into ``(table_or_None, column)``."""
    if "." in ref:
        table, _, name = ref.rpartition(".")
        return table or None, name
    return None, ref


class Schema:
    """An ordered collection of columns with name-based resolution.

    Schemas are immutable; operations like :meth:`concat` and
    :meth:`project` return new schemas.
    """

    __slots__ = ("columns", "_by_qualified", "_by_name")

    def __init__(self, columns: Iterable[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_qualified: Dict[str, int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for i, col in enumerate(self.columns):
            if col.qualified in self._by_qualified:
                raise SchemaError(f"duplicate column {col.qualified!r} in schema")
            self._by_qualified[col.qualified] = i
            self._by_name.setdefault(col.name, []).append(i)

    @staticmethod
    def of(*names: str, table: Optional[str] = None) -> "Schema":
        """Convenience constructor from bare column names."""
        return Schema(Column(n, table=table) for n in names)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return f"Schema({', '.join(c.qualified for c in self.columns)})"

    @property
    def names(self) -> Tuple[str, ...]:
        """Qualified names of all columns, in order."""
        return tuple(c.qualified for c in self.columns)

    def index_of(self, ref: str) -> int:
        """Resolve *ref* (qualified or bare) to a column position.

        Raises :class:`SchemaError` if the reference is unknown or, for a
        bare name, ambiguous.
        """
        if ref in self._by_qualified:
            return self._by_qualified[ref]
        table, name = parse_ref(ref)
        if table is None:
            hits = self._by_name.get(name, [])
            if len(hits) == 1:
                return hits[0]
            if not hits:
                raise SchemaError(f"unknown column {ref!r} in {self!r}")
            raise SchemaError(f"ambiguous column {ref!r} in {self!r}")
        raise SchemaError(f"unknown column {ref!r} in {self!r}")

    def has(self, ref: str) -> bool:
        """Whether *ref* resolves (unambiguously) in this schema."""
        try:
            self.index_of(ref)
            return True
        except SchemaError:
            return False

    def column(self, ref: str) -> Column:
        """Resolve *ref* to its :class:`Column`."""
        return self.columns[self.index_of(ref)]

    def indices_of(self, refs: Sequence[str]) -> Tuple[int, ...]:
        """Resolve a sequence of references to positions, preserving order."""
        return tuple(self.index_of(r) for r in refs)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation (e.g. a join) of two row layouts."""
        return Schema(self.columns + other.columns)

    def project(self, refs: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to *refs*."""
        return Schema(self.columns[self.index_of(r)] for r in refs)

    def rename_table(self, table: str) -> "Schema":
        """All columns re-qualified under *table* (SQL alias semantics)."""
        return Schema(c.renamed_table(table) for c in self.columns)
