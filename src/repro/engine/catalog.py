"""The database catalog: named tables, keys, constraints, indexes.

A :class:`Database` is the unit the SQL front-end and the strategies run
against.  Besides rows, it records the metadata the paper's experiments
turn on:

* **primary keys** — the nested relational approach keeps each block's
  primary key through outer joins and uses "PK is NULL" to recognise an
  empty subquery result (paper Section 3, Example 1);
* **NOT NULL constraints** — the emulated commercial optimizer only uses
  the antijoin rewrite for ``ALL`` / ``NOT IN`` when the linked attribute
  is declared NOT NULL (paper Section 5.2, Query 1 discussion);
* **indexes** — nested-iteration plans probe them instead of scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from .index import HashIndex, SortedIndex
from .relation import Relation, Row
from .schema import Column, Schema


@dataclass
class Table:
    """A named base relation plus its constraints and indexes."""

    name: str
    relation: Relation
    primary_key: Optional[str] = None
    hash_indexes: Dict[Tuple[str, ...], HashIndex] = field(default_factory=dict)
    sorted_indexes: Dict[str, SortedIndex] = field(default_factory=dict)

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def not_null(self, ref: str) -> bool:
        """Whether column *ref* carries a NOT NULL constraint."""
        return self.schema.column(ref).not_null

    def hash_index_on(self, refs: Sequence[str]) -> Optional[HashIndex]:
        return self.hash_indexes.get(tuple(refs))

    def any_hash_index_covering(
        self, refs: Sequence[str]
    ) -> Optional[Tuple[HashIndex, Tuple[str, ...]]]:
        """An index whose key is a subset of *refs*, preferring wider keys.

        Mirrors the paper's observation that System A picks the combined
        ``(l_partkey, l_suppkey)`` index when both columns are constrained
        and falls back to a single-column index otherwise.
        """
        best: Optional[Tuple[HashIndex, Tuple[str, ...]]] = None
        ref_set = set(refs)
        for key, idx in self.hash_indexes.items():
            if set(key) <= ref_set:
                if best is None or len(key) > len(best[1]):
                    best = (idx, key)
        return best


class Database:
    """A collection of named tables.

    Every catalog mutation (table creation/removal, index builds) bumps
    :attr:`version`, which session-level caches use to invalidate plans
    and reduced-relation builds keyed against the old catalog.
    """

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {}
        self.version = 0

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Row] = (),
        primary_key: Optional[str] = None,
    ) -> Table:
        """Create and register a table.

        Columns are re-qualified under the table name so that joins over
        multiple tables resolve references unambiguously.
        """
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        qualified = [c.renamed_table(name) for c in columns]
        schema = Schema(qualified)
        if primary_key is not None and not schema.has(primary_key):
            raise CatalogError(f"primary key {primary_key!r} not in schema")
        table = Table(name=name, relation=Relation(schema, rows), primary_key=primary_key)
        self.tables[name] = table
        self.version += 1
        return table

    def attach_table(
        self,
        name: str,
        relation: Relation,
        primary_key: Optional[str] = None,
    ) -> Table:
        """Register a pre-built relation (e.g. a stored columnar table).

        Unlike :meth:`create_table` this takes the relation as-is: its
        schema must already be qualified under *name*.  Stored tables use
        this path so their memory-mapped columns are never copied through
        the row constructor.
        """
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        for c in relation.schema.columns:
            if c.table != name:
                raise CatalogError(
                    f"attached relation column {c.qualified!r} is not "
                    f"qualified under table {name!r}"
                )
        if primary_key is not None and not relation.schema.has(primary_key):
            raise CatalogError(f"primary key {primary_key!r} not in schema")
        table = Table(name=name, relation=relation, primary_key=primary_key)
        self.tables[name] = table
        self.version += 1
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        del self.tables[name]
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def relation(self, name: str) -> Relation:
        return self.table(name).relation

    def mutate_table(
        self,
        name: str,
        rows: Optional[Iterable[Row]] = None,
        mutator=None,
    ) -> Table:
        """Mutate a table's rows *through the catalog*.

        Either pass *rows* (wholesale replacement) or a *mutator*
        callable receiving the :class:`Table` to edit in place.  Both
        ways, the catalog then rebuilds the table's indexes, drops its
        cached columnar image and bumps :attr:`version` — so every
        session-level cache (compiled plans, strategy routes, reduced
        relations) keyed against the old contents is invalidated.

        This is the sanctioned write path.  Editing
        ``table.relation.rows`` directly leaves :attr:`version`
        unchanged; the reduce and batch caches still *detect* such edits
        via a cheap fingerprint probe, but indexes go silently stale —
        don't do that.
        """
        table = self.table(name)
        if rows is not None and mutator is not None:
            raise CatalogError("pass either rows or mutator, not both")
        if rows is not None:
            table.relation = Relation(table.schema, rows)
        elif mutator is not None:
            mutator(table)
        table.hash_indexes = {
            key: HashIndex(table.relation, key) for key in table.hash_indexes
        }
        table.sorted_indexes = {
            ref: SortedIndex(table.relation, ref) for ref in table.sorted_indexes
        }
        from .vector.batch import invalidate_table_batch

        invalidate_table_batch(table)
        self.version += 1
        return table

    def create_hash_index(self, table_name: str, refs: Sequence[str]) -> HashIndex:
        """Build (or return an existing) equality index on *refs*."""
        table = self.table(table_name)
        key = tuple(refs)
        if key not in table.hash_indexes:
            table.hash_indexes[key] = HashIndex(table.relation, refs)
            self.version += 1
        return table.hash_indexes[key]

    def create_sorted_index(self, table_name: str, ref: str) -> SortedIndex:
        """Build (or return an existing) range index on *ref*."""
        table = self.table(table_name)
        if ref not in table.sorted_indexes:
            table.sorted_indexes[ref] = SortedIndex(table.relation, ref)
            self.version += 1
        return table.sorted_indexes[ref]

    def summary(self) -> str:
        """Human-readable inventory (used by examples)."""
        lines = []
        for name, table in sorted(self.tables.items()):
            cols = ", ".join(c.name for c in table.schema.columns)
            lines.append(
                f"{name}({cols}) rows={len(table.relation)}"
                + (f" pk={table.primary_key}" if table.primary_key else "")
            )
        return "\n".join(lines)
