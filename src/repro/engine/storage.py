"""Flat-file persistence: save/load a :class:`Database` as CSV.

One ``<table>.csv`` per table plus a ``_catalog.csv`` recording column
order, NOT NULL flags, primary keys and declared indexes.  The format is
deliberately boring: it round-trips the value model (ints, floats,
strings, dates-as-ISO-strings, NULL) and nothing else, so generated
TPC-H instances and test fixtures can be shared between runs and
inspected with ordinary tools.

Encoding rules: NULL is the empty field; strings that could be mistaken
for other types (numeric strings, the empty string) are prefixed with
``s:``; everything else round-trips through its literal form.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Tuple

from ..errors import CatalogError
from .catalog import Database
from .schema import Column
from .types import NULL, SqlValue, is_null

_CATALOG_FILE = "_catalog.csv"
_STRING_PREFIX = "s:"


def _encode(value: SqlValue) -> str:
    if is_null(value):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    assert isinstance(value, str), f"unsupported storage type {type(value)}"
    return _STRING_PREFIX + value


def _decode(text: str) -> SqlValue:
    if text == "":
        return NULL
    if text.startswith(_STRING_PREFIX):
        return text[len(_STRING_PREFIX):]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise CatalogError(f"malformed storage field {text!r}")


def save_database(db: Database, directory: str) -> None:
    """Write every table (and the catalog metadata) under *directory*."""
    os.makedirs(directory, exist_ok=True)
    catalog_rows: List[List[str]] = []
    for name, table in sorted(db.tables.items()):
        path = os.path.join(directory, f"{name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([c.name for c in table.schema.columns])
            for row in table.relation.rows:
                writer.writerow([_encode(v) for v in row])
        for position, column in enumerate(table.schema.columns):
            catalog_rows.append(
                [
                    "column",
                    name,
                    str(position),
                    column.name,
                    "1" if column.not_null else "0",
                ]
            )
        if table.primary_key is not None:
            catalog_rows.append(["pk", name, table.primary_key, "", ""])
        for key in table.hash_indexes:
            catalog_rows.append(["hash_index", name, "|".join(key), "", ""])
        for ref in table.sorted_indexes:
            catalog_rows.append(["sorted_index", name, ref, "", ""])
    with open(os.path.join(directory, _CATALOG_FILE), "w", newline="") as handle:
        csv.writer(handle).writerows(catalog_rows)


def load_database(directory: str) -> Database:
    """Rebuild a database saved by :func:`save_database` (indexes included)."""
    catalog_path = os.path.join(directory, _CATALOG_FILE)
    if not os.path.exists(catalog_path):
        raise CatalogError(f"no {_CATALOG_FILE} in {directory!r}")
    columns: Dict[str, List[Tuple[int, Column]]] = {}
    primary_keys: Dict[str, str] = {}
    hash_indexes: List[Tuple[str, List[str]]] = []
    sorted_indexes: List[Tuple[str, str]] = []
    with open(catalog_path, newline="") as handle:
        for record in csv.reader(handle):
            kind, table = record[0], record[1]
            if kind == "column":
                position = int(record[2])
                columns.setdefault(table, []).append(
                    (position, Column(record[3], not_null=record[4] == "1"))
                )
            elif kind == "pk":
                primary_keys[table] = record[2]
            elif kind == "hash_index":
                hash_indexes.append((table, record[2].split("|")))
            elif kind == "sorted_index":
                sorted_indexes.append((table, record[2]))
            else:
                raise CatalogError(f"unknown catalog record kind {kind!r}")

    db = Database()
    for table, cols in sorted(columns.items()):
        ordered = [c for _pos, c in sorted(cols, key=lambda pair: pair[0])]
        path = os.path.join(directory, f"{table}.csv")
        rows = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header != [c.name for c in ordered]:
                raise CatalogError(
                    f"{table}.csv header {header} does not match catalog"
                )
            for record in reader:
                rows.append(tuple(_decode(field) for field in record))
        db.create_table(
            table, ordered, rows, primary_key=primary_keys.get(table)
        )
    for table, refs in hash_indexes:
        db.create_hash_index(table, refs)
    for table, ref in sorted_indexes:
        db.create_sorted_index(table, ref)
    return db
