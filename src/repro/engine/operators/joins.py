"""Join family: hash joins, outer joins, semijoins, antijoins.

The nested relational approach needs exactly one join flavour — the
(left outer) hash join — for correlation handling; the baselines
additionally use semijoin/antijoin (classical unnesting of positive /
``NOT EXISTS`` linking operators) and index nested-loop joins (the
"System A" nested-iteration plans).

All equi-joins hash on the equality columns and apply any residual
predicate (e.g. the non-equi half of ``T.K = R.C AND T.L <> S.I``) on the
candidate pairs.  A join with no equality conjunct degrades to a
nested-loop scan, which the planner charges accordingly.

NULL join keys never match (SQL semantics); for *outer* joins, left rows
with NULL keys still appear once, padded with NULLs on the right.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...errors import ExecutionError
from ..expressions import EvalContext, Expr, truth
from ..index import HashIndex
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..schema import Schema
from ..types import NULL, is_null, row_group_key
from ..trace import CONTRACT_EXPANDING, CONTRACT_FILTERING
from .base import Operator, as_operator, as_relation


class JoinSpec:
    """Shared machinery: resolve key columns, build/probe, residual check."""

    def __init__(
        self,
        left,
        right,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Optional[Expr] = None,
        outer_ctx: Optional[EvalContext] = None,
    ):
        if len(left_keys) != len(right_keys):
            raise ExecutionError("left/right key lists must have equal length")
        self.left = as_operator(left)
        self.right = as_relation(right)
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.outer_ctx = outer_ctx or EvalContext()
        self.left_idx = self.left.schema.indices_of(self.left_keys)
        self.right_idx = self.right.schema.indices_of(self.right_keys)
        self.combined = self.left.schema.concat(self.right.schema)

    def build(self) -> Dict[tuple, List[Row]]:
        """Hash the right input on its key columns (NULL keys skipped)."""
        from ..governor import charge_rows, checkpoint

        checkpoint("hash-build")
        charge_rows(
            len(self.right.rows), len(self.right.schema), "hash-join build"
        )
        metrics = current_metrics()
        table: Dict[tuple, List[Row]] = {}
        for n, row in enumerate(self.right.rows, 1):
            if not n % 2048:
                checkpoint("hash-build")
            metrics.add("hash_build_rows")
            key_vals = tuple(row[i] for i in self.right_idx)
            if any(is_null(v) for v in key_vals):
                continue
            table.setdefault(row_group_key(key_vals), []).append(row)
        return table

    def right_rows(self) -> List[Row]:
        return self.right.rows

    def matches(self, table: Dict[tuple, List[Row]], left_row: Row) -> List[Row]:
        """Right rows matching *left_row* on keys and residual predicate."""
        metrics = current_metrics()
        if self.left_idx:
            key_vals = tuple(left_row[i] for i in self.left_idx)
            metrics.add("hash_probes")
            if any(is_null(v) for v in key_vals):
                return []
            candidates = table.get(row_group_key(key_vals), [])
        else:
            candidates = self.right.rows
            metrics.add("rows_scanned", len(candidates))
        if self.residual is None:
            return candidates
        out = []
        base_ctx = self.outer_ctx.push(self.combined, ())
        for right_row in candidates:
            metrics.add("predicate_evals")
            ctx = base_ctx.with_row(self.combined, left_row + right_row)
            if truth(self.residual, ctx).is_true():
                out.append(right_row)
        return out


class _HashJoinBase(Operator):
    """Shared trace hooks for the hash-join family."""

    spec: JoinSpec

    def trace_attrs(self):
        if not self.spec.left_keys:
            return {}
        on = ", ".join(
            f"{l}={r}" for l, r in zip(self.spec.left_keys, self.spec.right_keys)
        )
        return {"on": on}

    def _note_build(self, table) -> None:
        """Record the hash-table build size on the open span."""
        span = self._span
        if span is not None:
            span.set("hash_table_keys", len(table))


class HashJoin(_HashJoinBase):
    """Inner equi-join with optional residual predicate."""

    def __init__(self, left, right, left_keys, right_keys,
                 residual: Optional[Expr] = None,
                 outer_ctx: Optional[EvalContext] = None):
        self.spec = JoinSpec(left, right, left_keys, right_keys, residual, outer_ctx)
        self.schema = self.spec.combined

    def _iterate(self) -> Iterator[Row]:
        table = self.spec.build()
        self._note_build(table)
        for left_row in self._input(self.spec.left):
            for right_row in self.spec.matches(table, left_row):
                self._emit()
                yield left_row + right_row


class LeftOuterHashJoin(_HashJoinBase):
    """Left outer equi-join; unmatched left rows padded with NULLs.

    This is the workhorse of the nested relational approach: outer joins
    connect each subquery block to its outer block while *keeping* outer
    tuples whose subquery result is empty — the padded primary key of the
    inner block is how emptiness is later recognised.
    """

    trace_contract = CONTRACT_EXPANDING

    def __init__(self, left, right, left_keys, right_keys,
                 residual: Optional[Expr] = None,
                 outer_ctx: Optional[EvalContext] = None):
        self.spec = JoinSpec(left, right, left_keys, right_keys, residual, outer_ctx)
        self.schema = self.spec.combined
        self._pad = (NULL,) * len(self.spec.right.schema)

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        table = self.spec.build()
        self._note_build(table)
        for left_row in self._input(self.spec.left):
            matched = self.spec.matches(table, left_row)
            if matched:
                for right_row in matched:
                    self._emit()
                    yield left_row + right_row
            else:
                metrics.add("null_padded_rows")
                self._emit()
                yield left_row + self._pad


class SemiJoin(_HashJoinBase):
    """Left rows with at least one qualifying right match (EXISTS/IN)."""

    trace_contract = CONTRACT_FILTERING

    def __init__(self, left, right, left_keys, right_keys,
                 residual: Optional[Expr] = None,
                 outer_ctx: Optional[EvalContext] = None):
        self.spec = JoinSpec(left, right, left_keys, right_keys, residual, outer_ctx)
        self.schema = self.spec.left.schema

    def _iterate(self) -> Iterator[Row]:
        table = self.spec.build()
        self._note_build(table)
        for left_row in self._input(self.spec.left):
            if self.spec.matches(table, left_row):
                self._emit()
                yield left_row


class AntiJoin(_HashJoinBase):
    """Left rows with no qualifying right match (NOT EXISTS).

    Note: using an antijoin to evaluate ``NOT IN`` / ``ALL`` linking
    predicates is only sound when the linked attribute cannot be NULL;
    that soundness check lives in the *planner*, not here — this operator
    implements plain "no match survives".
    """

    trace_contract = CONTRACT_FILTERING

    def __init__(self, left, right, left_keys, right_keys,
                 residual: Optional[Expr] = None,
                 outer_ctx: Optional[EvalContext] = None):
        self.spec = JoinSpec(left, right, left_keys, right_keys, residual, outer_ctx)
        self.schema = self.spec.left.schema

    def _iterate(self) -> Iterator[Row]:
        table = self.spec.build()
        self._note_build(table)
        for left_row in self._input(self.spec.left):
            if not self.spec.matches(table, left_row):
                self._emit()
                yield left_row


class CrossJoin(Operator):
    """Cartesian product (the paper's "virtual Cartesian product" for
    non-correlated subqueries is implemented without this, but the operator
    exists for completeness and for the classical-transformation baseline).
    """

    def __init__(self, left, right):
        self.left = as_operator(left)
        self.right = as_relation(right)
        self.schema = self.left.schema.concat(self.right.schema)

    def _iterate(self) -> Iterator[Row]:
        right_rows = self.right.rows
        for left_row in self._input(self.left):
            for right_row in right_rows:
                self._emit()
                yield left_row + right_row


class OuterCrossJoin(Operator):
    """Cartesian product that pads (instead of dropping) left rows when
    the right input is empty.

    The subquery pipelines connect an *uncorrelated* block with this
    operator: an empty subquery result must not erase the outer tuples —
    a padded row (NULL rid) marks the empty set, which negative linking
    predicates then satisfy.  With a non-empty right input it behaves
    exactly like :class:`CrossJoin`.
    """

    trace_contract = CONTRACT_EXPANDING

    def __init__(self, left, right):
        self.left = as_operator(left)
        self.right = as_relation(right)
        self.schema = self.left.schema.concat(self.right.schema)
        self._pad = (NULL,) * len(self.right.schema)

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        right_rows = self.right.rows
        for left_row in self._input(self.left):
            if not right_rows:
                metrics.add("null_padded_rows")
                self._emit()
                yield left_row + self._pad
                continue
            for right_row in right_rows:
                self._emit()
                yield left_row + right_row


class NestedLoopJoin(Operator):
    """General theta-join by nested loops (used when no equi-conjunct
    exists, and by the System A emulation when it scans instead of probing).
    """

    def __init__(self, left, right, predicate: Optional[Expr] = None,
                 outer_ctx: Optional[EvalContext] = None, outer: bool = False):
        self.left = as_operator(left)
        self.right = as_relation(right)
        self.predicate = predicate
        self.outer_ctx = outer_ctx or EvalContext()
        self.outer = outer
        if outer:
            self.trace_contract = CONTRACT_EXPANDING
        self.schema = self.left.schema.concat(self.right.schema)
        self._pad = (NULL,) * len(self.right.schema)

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        base_ctx = self.outer_ctx.push(self.schema, ())
        for left_row in self._input(self.left):
            matched = False
            for right_row in self.right.rows:
                metrics.add("rows_scanned")
                combined = left_row + right_row
                if self.predicate is not None:
                    metrics.add("predicate_evals")
                    ctx = base_ctx.with_row(self.schema, combined)
                    if not truth(self.predicate, ctx).is_true():
                        continue
                matched = True
                self._emit()
                yield combined
            if self.outer and not matched:
                metrics.add("null_padded_rows")
                self._emit()
                yield left_row + self._pad


class IndexNestedLoopJoin(Operator):
    """Nested loop join probing a prebuilt hash index on the inner side.

    This is the access path the paper's System A uses during nested
    iteration ("lineitem is accessed by index rowid").  The index covers a
    subset of the equi-join columns; the remaining conjuncts and any
    residual predicate are applied to fetched rows.
    """

    def __init__(
        self,
        left,
        index: HashIndex,
        left_probe_keys: Sequence[str],
        residual: Optional[Expr] = None,
        outer_ctx: Optional[EvalContext] = None,
        outer: bool = False,
    ):
        self.left = as_operator(left)
        self.index = index
        self.left_probe_idx = self.left.schema.indices_of(left_probe_keys)
        self.residual = residual
        self.outer_ctx = outer_ctx or EvalContext()
        self.outer = outer
        if outer:
            self.trace_contract = CONTRACT_EXPANDING
        self.inner_schema = index.relation.schema
        self.schema = self.left.schema.concat(self.inner_schema)
        self._pad = (NULL,) * len(self.inner_schema)

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        base_ctx = self.outer_ctx.push(self.schema, ())
        for left_row in self._input(self.left):
            probe = tuple(left_row[i] for i in self.left_probe_idx)
            matched = False
            for inner_row in self.index.probe(probe):
                combined = left_row + inner_row
                if self.residual is not None:
                    metrics.add("predicate_evals")
                    ctx = base_ctx.with_row(self.schema, combined)
                    if not truth(self.residual, ctx).is_true():
                        continue
                matched = True
                self._emit()
                yield combined
            if self.outer and not matched:
                metrics.add("null_padded_rows")
                self._emit()
                yield left_row + self._pad
