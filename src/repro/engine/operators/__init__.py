"""Physical operators of the flat relational engine."""

from .base import Operator, RelationSource, as_operator, as_relation
from .basic import Distinct, Filter, Limit, Map, Project, Rename, Sort
from .joins import (
    AntiJoin,
    CrossJoin,
    OuterCrossJoin,
    HashJoin,
    IndexNestedLoopJoin,
    JoinSpec,
    LeftOuterHashJoin,
    NestedLoopJoin,
    SemiJoin,
)
from .aggregate import AggSpec, GroupAggregate, scalar_aggregate
from .set_ops import Difference, Intersect, Union

__all__ = [
    "Operator",
    "RelationSource",
    "as_operator",
    "as_relation",
    "Filter",
    "Project",
    "Map",
    "Distinct",
    "Limit",
    "Rename",
    "Sort",
    "HashJoin",
    "LeftOuterHashJoin",
    "SemiJoin",
    "AntiJoin",
    "CrossJoin",
    "OuterCrossJoin",
    "NestedLoopJoin",
    "IndexNestedLoopJoin",
    "JoinSpec",
    "AggSpec",
    "GroupAggregate",
    "scalar_aggregate",
    "Union",
    "Intersect",
    "Difference",
]
