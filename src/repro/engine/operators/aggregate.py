"""Grouping and aggregation.

The nested relational approach itself does not need aggregates — that is
its selling point for non-aggregate subqueries — but two baselines do:

* Kim-style / MD-join-style rewrites express non-aggregate subqueries as
  COUNT comparisons (paper Section 2 discusses [1, 6]);
* the Boolean-aggregate approach of [2] applies a condition tuple-wise and
  aggregates the truth values with AND/OR.

Aggregates follow SQL semantics: NULLs are ignored by COUNT(col), SUM,
MIN, MAX, AVG; ``COUNT(*)`` counts rows; aggregates over an empty group
return NULL (except COUNT, which returns 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ...errors import ExecutionError
from ..expressions import EvalContext, Expr, truth
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..trace import CONTRACT_FILTERING, op_span
from ..schema import Column, Schema
from ..types import FALSE, NULL, TRUE, UNKNOWN, SqlValue, TriBool, is_null, row_group_key


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column: ``func(arg) AS name``.

    *func* is one of ``count``, ``count_star``, ``sum``, ``min``, ``max``,
    ``avg``, ``bool_and``, ``bool_or``.  For ``bool_and``/``bool_or`` the
    argument is a predicate expression evaluated under 3VL — these two
    implement the Boolean aggregates of the [2] baseline.
    """

    func: str
    arg: Optional[str] = None  # column ref; None for count_star
    predicate: Optional[Expr] = None  # for bool_and / bool_or
    name: str = "agg"


def _finish(func: str, values: List[SqlValue], count_rows: int):
    if func == "count_star":
        return count_rows
    if func == "count":
        return len(values)
    if not values:
        return NULL
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {func!r}")


def _tri_to_value(t: TriBool) -> SqlValue:
    if t is TRUE:
        return True
    if t is FALSE:
        return False
    return NULL


class GroupAggregate:
    """Hash-based GROUP BY with a list of :class:`AggSpec` outputs.

    Produces a :class:`Relation` with the group-by columns followed by one
    column per aggregate.
    """

    def __init__(
        self,
        source: Relation,
        group_refs: Sequence[str],
        aggs: Sequence[AggSpec],
        outer_ctx: Optional[EvalContext] = None,
    ):
        self.source = source
        self.group_refs = list(group_refs)
        self.aggs = list(aggs)
        self.outer_ctx = outer_ctx or EvalContext()

    def run(self) -> Relation:
        with op_span(
            "GroupAggregate",
            contract=CONTRACT_FILTERING,
            by=",".join(self.group_refs) or "()",
            aggs=",".join(a.func for a in self.aggs),
        ) as span:
            result = self._run()
            if span is not None:
                span.add("rows_in", len(self.source.rows))
                span.add("rows_out", len(result.rows))
        return result

    def _run(self) -> Relation:
        metrics = current_metrics()
        schema = self.source.schema
        group_idx = schema.indices_of(self.group_refs)
        arg_idx = [
            schema.index_of(a.arg) if a.arg is not None else None for a in self.aggs
        ]
        groups: Dict[tuple, list] = {}
        order: List[tuple] = []
        reps: Dict[tuple, Row] = {}
        for row in self.source.rows:
            metrics.add("rows_scanned")
            key = row_group_key(tuple(row[i] for i in group_idx))
            if key not in groups:
                groups[key] = []
                order.append(key)
                reps[key] = row
            groups[key].append(row)

        out_columns = [schema.columns[i] for i in group_idx] + [
            Column(a.name) for a in self.aggs
        ]
        out_rows: List[Row] = []
        base_ctx = self.outer_ctx.push(schema, ())
        for key in order:
            rows = groups[key]
            rep = reps[key]
            prefix = tuple(rep[i] for i in group_idx)
            agg_values: List[SqlValue] = []
            for spec, ai in zip(self.aggs, arg_idx):
                if spec.func in ("bool_and", "bool_or"):
                    if spec.predicate is None:
                        raise ExecutionError(f"{spec.func} needs a predicate")
                    outcome = TRUE if spec.func == "bool_and" else FALSE
                    for row in rows:
                        ctx = base_ctx.with_row(schema, row)
                        t = truth(spec.predicate, ctx)
                        outcome = (outcome & t) if spec.func == "bool_and" else (outcome | t)
                    agg_values.append(_tri_to_value(outcome))
                elif spec.func == "count_star":
                    agg_values.append(len(rows))
                else:
                    values = [
                        row[ai] for row in rows if ai is not None and not is_null(row[ai])
                    ]
                    agg_values.append(_finish(spec.func, values, len(rows)))
            out_rows.append(prefix + tuple(agg_values))
        return Relation(Schema(out_columns), out_rows)


def scalar_aggregate(
    source: Relation, spec: AggSpec, outer_ctx: Optional[EvalContext] = None
) -> SqlValue:
    """Aggregate an entire relation to a single value (no grouping)."""
    agg = GroupAggregate(source, [], [spec], outer_ctx=outer_ctx)
    result = agg.run()
    if not result.rows:
        # No input rows at all: COUNT -> 0, others -> NULL.
        return 0 if spec.func in ("count", "count_star") else NULL
    return result.rows[0][0]
